"""Tests for the review store and the incremental review crawler."""

import pytest

from repro.playstore.reviews import Review, ReviewCrawler, ReviewStore


@pytest.fixture()
def store():
    return ReviewStore()


class TestReviewStore:
    def test_post_and_query(self, store):
        store.post_review("com.app.a", "gid1", 5, 100.0)
        store.post_review("com.app.a", "gid2", 4, 200.0)
        reviews = store.reviews_for_app("com.app.a")
        assert [r.google_id for r in reviews] == ["gid1", "gid2"]

    def test_one_live_review_per_account_per_app(self, store):
        store.post_review("com.app.a", "gid1", 5, 100.0)
        store.post_review("com.app.a", "gid1", 1, 500.0)  # replaces
        reviews = store.reviews_for_app("com.app.a")
        assert len(reviews) == 1
        assert reviews[0].rating == 1
        assert reviews[0].timestamp == 500.0

    def test_same_account_many_apps(self, store):
        for i in range(5):
            store.post_review(f"com.app.{i}", "gid1", 5, float(i))
        assert store.apps_reviewed_by("gid1") == {f"com.app.{i}" for i in range(5)}

    def test_time_ordering_maintained(self, store):
        store.post_review("com.app.a", "g1", 5, 300.0)
        store.post_review("com.app.a", "g2", 5, 100.0)
        store.post_review("com.app.a", "g3", 5, 200.0)
        timestamps = [r.timestamp for r in store.reviews_for_app("com.app.a")]
        assert timestamps == sorted(timestamps)

    def test_recent_reviews_newest_first(self, store):
        for i in range(10):
            store.post_review("com.app.a", f"g{i}", 5, float(i))
        recent = store.recent_reviews("com.app.a", 3)
        assert [r.timestamp for r in recent] == [9.0, 8.0, 7.0]

    def test_delete_review(self, store):
        store.post_review("com.app.a", "g1", 5, 1.0)
        assert store.delete_review("com.app.a", "g1")
        assert store.review_count("com.app.a") == 0
        assert not store.delete_review("com.app.a", "g1")

    def test_invalid_rating_rejected(self, store):
        with pytest.raises(ValueError):
            store.post_review("com.app.a", "g1", 6, 1.0)
        with pytest.raises(ValueError):
            store.post_review("com.app.a", "g1", 0, 1.0)

    def test_total_reviews(self, store):
        store.post_review("a", "g1", 5, 1.0)
        store.post_review("b", "g1", 5, 2.0)
        store.post_review("b", "g2", 5, 3.0)
        assert store.total_reviews() == 3

    def test_has_reviewed(self, store):
        store.post_review("a", "g1", 5, 1.0)
        assert store.has_reviewed("g1", "a")
        assert not store.has_reviewed("g1", "b")


class TestReviewCrawler:
    def test_first_crawl_collects_everything_under_cap(self, store):
        for i in range(20):
            store.post_review("app", f"g{i}", 5, float(i))
        crawler = ReviewCrawler(store)
        crawler.track_app("app")
        new = crawler.crawl_app("app")
        assert len(new) == 20
        assert len(crawler.collected("app")) == 20

    def test_first_crawl_cap_enforced(self, store):
        for i in range(30):
            store.post_review("app", f"g{i}", 5, float(i))
        crawler = ReviewCrawler(store, first_crawl_cap=10)
        new = crawler.crawl_app("app")
        assert len(new) == 10
        # The cap keeps the *most recent* reviews.
        assert min(r.timestamp for r in new) == 20.0

    def test_incremental_crawl_stops_at_seen(self, store):
        for i in range(10):
            store.post_review("app", f"g{i}", 5, float(i))
        crawler = ReviewCrawler(store)
        crawler.crawl_app("app")
        for i in range(10, 14):
            store.post_review("app", f"g{i}", 5, float(i))
        new = crawler.crawl_app("app")
        assert len(new) == 4
        assert {r.google_id for r in new} == {"g10", "g11", "g12", "g13"}

    def test_crawl_round_covers_tracked_apps(self, store):
        for app in ("a", "b"):
            for i in range(3):
                store.post_review(app, f"g{i}", 5, float(i))
        crawler = ReviewCrawler(store)
        crawler.track_app("a")
        crawler.track_app("b")
        assert crawler.crawl_round() == 6
        assert crawler.stats.crawl_rounds == 1

    def test_collected_sorted_oldest_first(self, store):
        for i in range(6):
            store.post_review("app", f"g{i}", 5, float(i))
        crawler = ReviewCrawler(store)
        crawler.crawl_app("app")
        timestamps = [r.timestamp for r in crawler.collected("app")]
        assert timestamps == sorted(timestamps)

    def test_no_duplicates_across_rounds(self, store):
        for i in range(5):
            store.post_review("app", f"g{i}", 5, float(i))
        crawler = ReviewCrawler(store)
        crawler.track_app("app")
        crawler.crawl_round()
        crawler.crawl_round()
        ids = [r.review_id for r in crawler.collected("app")]
        assert len(ids) == len(set(ids)) == 5

    def test_track_idempotent(self, store):
        crawler = ReviewCrawler(store)
        crawler.track_app("a")
        crawler.track_app("a")
        assert crawler.stats.apps_crawled == 1


class TestReviewDataclass:
    def test_ordering_by_timestamp(self):
        early = Review(1.0, 2, "a", "g", 5)
        late = Review(2.0, 1, "a", "g", 5)
        assert early < late
