"""Prior-work baseline detectors that organic ASO workers evade (§1, §10).

The paper motivates RacketStore by noting that existing detectors key on
*lockstep behaviour* (groups of accounts reviewing the same apps
together, e.g. CopyCatch [Beutel et al. 2013], EVILCOHORT
[Stringhini et al. 2015]) or *review bursts* (temporal spikes, e.g.
Fei et al. 2013, BIRDNEST), and that "organic workers ... use their
personal devices to conceal ASO work among everyday activities",
evading them.  To quantify that claim we implement both families as
account-level detectors over the public review stream (no device
telemetry — exactly the data prior work had), and compare their recall
on organic vs dedicated workers against the RacketStore pipeline.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..playstore.reviews import ReviewStore
from ..simulation.clock import SECONDS_PER_DAY

__all__ = [
    "LockstepDetector",
    "BurstDetector",
    "BaselineVerdict",
    "evaluate_baseline_on_devices",
]


@dataclass(frozen=True)
class BaselineVerdict:
    """Per-account verdict from a baseline detector."""

    google_id: str
    score: float
    flagged: bool


class LockstepDetector:
    """Co-review lockstep detection over (account, app) bipartite data.

    Two accounts are *lockstep-linked* when they reviewed at least
    ``min_common_apps`` common apps with review times within
    ``time_window_days`` of each other on each app.  Accounts belonging
    to a linked group of at least ``min_group_size`` are flagged — the
    CopyCatch-style near-bipartite-clique signal.
    """

    def __init__(
        self,
        min_common_apps: int = 3,
        time_window_days: float = 7.0,
        min_group_size: int = 3,
    ) -> None:
        self.min_common_apps = min_common_apps
        self.time_window_days = time_window_days
        self.min_group_size = min_group_size

    def _links(self, store: ReviewStore, accounts: list[str]) -> dict[str, set[str]]:
        window = self.time_window_days * SECONDS_PER_DAY
        # account -> {app -> timestamp}
        footprints = {
            account: {
                review.app_package: review.timestamp
                for review in store.reviews_by_google_id(account)
            }
            for account in accounts
        }
        # Invert: app -> accounts, to avoid the full O(n^2) over unrelated
        # accounts.
        by_app: dict[str, list[str]] = defaultdict(list)
        for account, apps in footprints.items():
            for app in apps:
                by_app[app].append(account)

        pair_common: dict[tuple[str, str], int] = defaultdict(int)
        for app, reviewers in by_app.items():
            reviewers = sorted(reviewers)
            for i in range(len(reviewers)):
                for j in range(i + 1, len(reviewers)):
                    a, b = reviewers[i], reviewers[j]
                    if abs(footprints[a][app] - footprints[b][app]) <= window:
                        pair_common[(a, b)] += 1

        links: dict[str, set[str]] = defaultdict(set)
        for (a, b), common in pair_common.items():
            if common >= self.min_common_apps:
                links[a].add(b)
                links[b].add(a)
        return links

    def detect(self, store: ReviewStore, accounts: list[str]) -> list[BaselineVerdict]:
        """Flag accounts in lockstep groups of sufficient size."""
        links = self._links(store, accounts)
        # Connected components over the lockstep graph.
        component: dict[str, int] = {}
        next_id = 0
        for account in accounts:
            if account in component:
                continue
            stack, members = [account], []
            component[account] = next_id
            while stack:
                node = stack.pop()
                members.append(node)
                for neighbour in links.get(node, ()):
                    if neighbour not in component:
                        component[neighbour] = next_id
                        stack.append(neighbour)
            next_id += 1
        sizes = defaultdict(int)
        for account in accounts:
            sizes[component[account]] += 1
        return [
            BaselineVerdict(
                google_id=account,
                score=float(sizes[component[account]]),
                flagged=sizes[component[account]] >= self.min_group_size
                and bool(links.get(account)),
            )
            for account in accounts
        ]


class BurstDetector:
    """Review-burst detection (temporal-spike family).

    An account is flagged when its review stream contains a window of
    ``window_days`` days holding at least ``min_burst_reviews`` reviews,
    with a rating skew above ``min_positive_fraction`` (promotion bursts
    are 4-5 star) — the Fei-et-al./BIRDNEST-style signal.
    """

    def __init__(
        self,
        window_days: float = 3.0,
        min_burst_reviews: int = 5,
        min_positive_fraction: float = 0.8,
    ) -> None:
        self.window_days = window_days
        self.min_burst_reviews = min_burst_reviews
        self.min_positive_fraction = min_positive_fraction

    def account_score(self, store: ReviewStore, google_id: str) -> float:
        """Max reviews in any sliding window (rating-skew gated)."""
        reviews = store.reviews_by_google_id(google_id)
        if not reviews:
            return 0.0
        times = np.array([r.timestamp for r in reviews])
        ratings = np.array([r.rating for r in reviews])
        window = self.window_days * SECONDS_PER_DAY
        best = 0.0
        start = 0
        for end in range(len(times)):
            while times[end] - times[start] > window:
                start += 1
            count = end - start + 1
            if count >= self.min_burst_reviews:
                positive = np.mean(ratings[start : end + 1] >= 4)
                if positive >= self.min_positive_fraction:
                    best = max(best, float(count))
        return best

    def detect(self, store: ReviewStore, accounts: list[str]) -> list[BaselineVerdict]:
        out = []
        for account in accounts:
            score = self.account_score(store, account)
            out.append(
                BaselineVerdict(
                    google_id=account,
                    score=score,
                    flagged=score >= self.min_burst_reviews,
                )
            )
        return out


def evaluate_baseline_on_devices(
    detector,
    store: ReviewStore,
    observations,
) -> dict[str, float]:
    """Device-level recall of an account-level baseline detector.

    A device counts as detected when any of its registered accounts is
    flagged.  Returns recall split by worker kind (the paper's claim:
    baselines catch dedicated devices but miss organic ones) and the
    false-positive rate on regular devices.
    """
    all_accounts = sorted({gid for obs in observations for gid in obs.google_ids})
    verdicts = {v.google_id: v.flagged for v in detector.detect(store, all_accounts)}

    detected = {"organic_worker": 0, "dedicated_worker": 0, "regular": 0}
    totals = {"organic_worker": 0, "dedicated_worker": 0, "regular": 0}
    for obs in observations:
        kind = obs.participant.persona.kind
        totals[kind] += 1
        if any(verdicts.get(gid, False) for gid in obs.google_ids):
            detected[kind] += 1

    def rate(kind: str) -> float:
        return detected[kind] / totals[kind] if totals[kind] else 0.0

    worker_total = totals["organic_worker"] + totals["dedicated_worker"]
    worker_detected = detected["organic_worker"] + detected["dedicated_worker"]
    return {
        "recall_organic": rate("organic_worker"),
        "recall_dedicated": rate("dedicated_worker"),
        "recall_workers": worker_detected / worker_total if worker_total else 0.0,
        "fpr_regular": rate("regular"),
    }
