"""Tests for FaultSpec / FaultPlan: validation, seeding, day windows."""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec


class TestFaultSpec:
    def test_defaults_disabled(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert spec.active_on(0) and spec.active_on(99)

    @pytest.mark.parametrize("probability", [-0.1, 1.1, 2.0])
    def test_probability_validated(self, probability):
        with pytest.raises(ValueError):
            FaultSpec(probability=probability)

    def test_days_normalised_to_int_tuple(self):
        spec = FaultSpec(0.5, days=[1, 3.0])
        assert spec.days == (1, 3)
        assert spec.active_on(1) and spec.active_on(3)
        assert not spec.active_on(2)

    def test_fires_requires_explicit_rng(self):
        with pytest.raises(ValueError, match="explicit rng"):
            FaultSpec(0.5).fires(None, 0)

    def test_disabled_spec_never_fires_and_draws_nothing(self):
        rng = np.random.default_rng(0)
        assert not FaultSpec(0.0).fires(rng, 0)
        # No draw was consumed: the stream matches a fresh generator.
        assert float(rng.random()) == float(np.random.default_rng(0).random())

    def test_certain_spec_fires_without_consuming_a_draw(self):
        rng = np.random.default_rng(0)
        assert FaultSpec(1.0).fires(rng, 0)
        assert float(rng.random()) == float(np.random.default_rng(0).random())

    def test_out_of_window_day_draws_nothing(self):
        rng = np.random.default_rng(0)
        assert not FaultSpec(0.9, days=(2,)).fires(rng, 1)
        assert float(rng.random()) == float(np.random.default_rng(0).random())

    def test_firing_sequence_is_seeded(self):
        spec = FaultSpec(0.5)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        sequence_a = [spec.fires(rng_a, 0) for _ in range(64)]
        sequence_b = [spec.fires(rng_b, 0) for _ in range(64)]
        assert sequence_a == sequence_b
        assert any(sequence_a) and not all(sequence_a)


class TestFaultPlan:
    def test_defaults_are_clean(self):
        plan = FaultPlan()
        assert not plan.any_enabled
        assert plan.describe() == "clean"

    def test_any_enabled_and_describe(self):
        plan = FaultPlan(
            transport_loss=FaultSpec(0.2),
            overload=FaultSpec(1.0, days=(1, 2)),
        )
        assert plan.any_enabled
        described = plan.describe()
        assert "transport_loss=0.2" in described
        assert "overload=1@days(1, 2)" in described

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(overload_retry_after_s=0.0)
        with pytest.raises(ValueError):
            FaultPlan(retry_budget=-1)
        with pytest.raises(ValueError):
            FaultPlan(dedup_window=0)
