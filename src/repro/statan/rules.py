"""Rule base class and registry.

Every rule is a singleton registered by id.  A rule receives the parsed
:class:`~repro.statan.engine.ModuleContext` and yields findings; it
never does I/O.  Severity is advisory (the gate fails on any
non-baselined finding regardless), but reporters surface it so readers
can triage errors before warnings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .findings import SEVERITY_ERROR, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import ModuleContext

__all__ = ["Rule", "register", "all_rules", "rule_ids", "get_rule"]


class Rule:
    """One statan check.  Subclasses set ``id``/``severity``/``summary``
    and implement :meth:`check`."""

    id: str = ""
    severity: str = SEVERITY_ERROR
    summary: str = ""

    def check(self, ctx: "ModuleContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=ctx.snippet(getattr(node, "lineno", 1)),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]
