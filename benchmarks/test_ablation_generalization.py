"""Ablation: cross-cohort generalization.

§9 (Discussion): "the relatively small and biased data ... may lead to
reduced applicability to data from other ASO workers and regular
users."  This bench quantifies the concern inside the simulation: train
the full pipeline on one cohort, deploy the frozen models on an
independently seeded cohort, and measure the transfer gap.
"""

import numpy as np

from repro.core import DetectionPipeline, build_observations
from repro.core.device_features import device_feature_vector
from repro.experiments.common import ExperimentReport
from repro.ml.metrics import classification_report
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def test_ablation_cross_cohort(benchmark, workbench, pipeline_result, emit):
    # Frozen models from the session's default cohort.
    app_model = pipeline_result.app_model
    device_model = pipeline_result.device_model

    # A fresh, independently seeded small cohort ("other workers").
    deploy_config = SimulationConfig.small().scaled(
        seed=SimulationConfig.small().seed + 77_777
    )
    deploy_data = run_study(deploy_config)
    observations = build_observations(
        deploy_data, deploy_data.eligible_participants(min_days=2)
    )

    suspiciousness = DetectionPipeline.score_devices(
        deploy_data, observations, app_model
    )
    X = np.vstack(
        [
            device_feature_vector(obs, suspiciousness.get(obs.install_id, 0.0))
            for obs in observations
        ]
    )
    y = np.array([int(obs.is_worker) for obs in observations])
    y_pred = device_model.predict(X)
    report_metrics = classification_report(y, y_pred)

    in_sample = pipeline_result.device_evaluation.results["XGB"]
    benchmark.pedantic(device_model.predict, args=(X,), rounds=1, iterations=1)
    emit(
        ExperimentReport(
            "ablation_generalization",
            "Frozen pipeline deployed on an unseen cohort (§9 concern)",
            lines=[
                render_table(
                    ["evaluation", "precision", "recall", "F1"],
                    [
                        ("in-cohort CV", in_sample.precision, in_sample.recall, in_sample.f1),
                        ("cross-cohort deploy", report_metrics.precision,
                         report_metrics.recall, report_metrics.f1),
                    ],
                ),
                f"deploy cohort: {int(y.sum())} worker / {int((1 - y).sum())} "
                "regular devices, different seed, never seen in training",
            ],
            metrics={
                "deploy_f1": report_metrics.f1,
                "deploy_precision": report_metrics.precision,
                "in_sample_f1": in_sample.f1,
            },
        )
    )
    # The features are behavioural, not identity-bound: the frozen model
    # must transfer with only a modest gap.
    assert report_metrics.f1 >= 0.85
    assert report_metrics.precision >= 0.85
