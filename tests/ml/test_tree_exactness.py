"""Exactness checks: the vectorised CART split search against a
brute-force reference on small random datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import (
    DecisionTreeClassifier,
    _best_split_classification,
    _best_split_regression,
    _gini,
)


def brute_force_best_gini_split(X, y, n_classes):
    """O(n^2 d) reference: evaluate every midpoint of every feature."""
    n = len(y)
    parent_counts = np.bincount(y, minlength=n_classes).astype(float)
    parent_impurity = _gini(parent_counts)
    best = (-1, 0.0, 0.0)
    for feature in range(X.shape[1]):
        values = np.unique(X[:, feature])
        for a, b in zip(values, values[1:]):
            threshold = (a + b) / 2.0
            left = y[X[:, feature] <= threshold]
            right = y[X[:, feature] > threshold]
            if len(left) == 0 or len(right) == 0:
                continue
            gini_left = _gini(np.bincount(left, minlength=n_classes).astype(float))
            gini_right = _gini(np.bincount(right, minlength=n_classes).astype(float))
            weighted = (len(left) * gini_left + len(right) * gini_right) / n
            gain = n * (parent_impurity - weighted)
            if gain > best[2] + 1e-12:
                best = (feature, threshold, gain)
    return best


class TestSplitExactness:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(6, 30), st.integers(1, 3))
    def test_classification_split_matches_brute_force(self, seed, n, d):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (n, d)).round(1)  # rounding creates ties
        y = rng.integers(0, 2, n)
        onehot = np.zeros((n, 2), dtype=np.float64)
        onehot[np.arange(n), y] = 1.0
        fast = _best_split_classification(
            X, onehot, np.arange(d), min_samples_leaf=1
        )
        slow = brute_force_best_gini_split(X, y, 2)
        assert fast[2] == pytest.approx(slow[2], abs=1e-9)
        if slow[0] >= 0:
            # Equal-gain ties may pick different features; the gains match.
            left_fast = np.sum(X[:, fast[0]] <= fast[1])
            assert 0 < left_fast < n

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(6, 25))
    def test_regression_split_reduces_sse(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (n, 2))
        y = rng.normal(0, 1, n)
        feature, threshold, gain = _best_split_regression(
            X, y, np.arange(2), min_samples_leaf=1
        )
        if feature < 0:
            return
        mask = X[:, feature] <= threshold
        parent_sse = np.sum((y - y.mean()) ** 2)
        child_sse = np.sum((y[mask] - y[mask].mean()) ** 2) + np.sum(
            (y[~mask] - y[~mask].mean()) ** 2
        )
        assert gain == pytest.approx(parent_sse - child_sse, abs=1e-8)
        assert gain >= -1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_min_samples_leaf_never_violated(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (40, 3))
        y = rng.integers(0, 2, 40)
        tree = DecisionTreeClassifier(min_samples_leaf=7).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 7 or node is tree.root_
                return
            check(node.left)
            check(node.right)

        check(tree.root_)
