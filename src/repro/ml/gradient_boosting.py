"""Extreme-gradient-boosting classifier ("XGB" in Tables 1 and 2).

This is a from-scratch implementation of the XGBoost *algorithm* for
binary classification: additive regression trees fit to the first- and
second-order gradients of the logistic loss, with the regularised
second-order split gain

    gain = 1/2 * [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma

and leaf weights ``w = -G / (H + lambda)`` (Chen & Guestrin, KDD 2016).
XGB is the best-performing algorithm in both of the paper's tables, so
this module is the one that must reproduce the headline F1 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_random_state, check_X_y

__all__ = ["GradientBoostingClassifier"]


@dataclass
class _BoostNode:
    weight: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_BoostNode"] = None
    right: Optional["_BoostNode"] = None
    gain: float = 0.0
    cover: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _BoostTree:
    """A single regression tree over (gradient, hessian) targets."""

    def __init__(
        self,
        max_depth: int,
        min_child_weight: float,
        reg_lambda: float,
        gamma: float,
        colsample: float,
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.colsample = colsample
        self.rng = rng
        self.feature_gains: np.ndarray | None = None

    def fit(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> "_BoostTree":
        self.n_features_ = X.shape[1]
        self.feature_gains = np.zeros(self.n_features_, dtype=np.float64)
        self.root_ = self._grow(X, grad, hess, depth=0)
        return self

    def _leaf_weight(self, g_sum: float, h_sum: float) -> float:
        return -g_sum / (h_sum + self.reg_lambda)

    def _grow(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray, depth: int) -> _BoostNode:
        g_sum = float(grad.sum())
        h_sum = float(hess.sum())
        node = _BoostNode(weight=self._leaf_weight(g_sum, h_sum), cover=h_sum)
        if depth >= self.max_depth or X.shape[0] < 2:
            return node

        k = max(1, int(self.colsample * self.n_features_))
        if k < self.n_features_:
            feature_ids = self.rng.choice(self.n_features_, size=k, replace=False)
        else:
            feature_ids = np.arange(self.n_features_)

        parent_score = g_sum**2 / (h_sum + self.reg_lambda)
        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for feature in feature_ids:
            order = np.argsort(X[:, feature], kind="mergesort")
            values = X[order, feature]
            g_csum = np.cumsum(grad[order])
            h_csum = np.cumsum(hess[order])

            positions = np.nonzero(values[1:] != values[:-1])[0]
            if positions.size == 0:
                continue
            g_left = g_csum[positions]
            h_left = h_csum[positions]
            g_right = g_sum - g_left
            h_right = h_sum - h_left
            valid = (h_left >= self.min_child_weight) & (h_right >= self.min_child_weight)
            if not valid.any():
                continue
            gains = 0.5 * (
                g_left**2 / (h_left + self.reg_lambda)
                + g_right**2 / (h_right + self.reg_lambda)
                - parent_score
            ) - self.gamma
            gains[~valid] = -np.inf
            i = int(np.argmax(gains))
            if gains[i] > best_gain + 1e-12:
                best_gain = float(gains[i])
                best_feature = int(feature)
                pos = positions[i]
                best_threshold = float((values[pos] + values[pos + 1]) / 2.0)

        if best_feature < 0:
            return node

        mask = X[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.gain = best_gain
        self.feature_gains[best_feature] += best_gain
        node.left = self._grow(X[mask], grad[mask], hess[mask], depth + 1)
        node.right = self._grow(X[~mask], grad[~mask], hess[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.float64)
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.weight
        return out


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Binary XGBoost-style classifier on the logistic loss.

    Parameters
    ----------
    n_estimators, learning_rate, max_depth:
        The usual boosting controls.
    reg_lambda, gamma, min_child_weight:
        XGBoost regularisation: L2 on leaf weights, per-split penalty,
        and minimum hessian mass per child.
    subsample, colsample_bytree:
        Stochastic row/column sampling per boosting round.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1.0,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        base_score: float = 0.5,
        random_state: int | None = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.colsample_bytree = colsample_bytree
        self.base_score = base_score
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) == 1:
            # Degenerate training set: constant prediction.
            self._constant_class = True
            self.trees_: list[_BoostTree] = []
            self.base_margin_ = 50.0  # sigmoid ~ 1 for the single class
            return self
        if len(self.classes_) != 2:
            raise ValueError("GradientBoostingClassifier is binary-only")
        self._constant_class = False
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        target = encoded.astype(np.float64)

        p0 = np.clip(self.base_score, 1e-6, 1.0 - 1e-6)
        self.base_margin_ = float(np.log(p0 / (1.0 - p0)))
        margin = np.full(n, self.base_margin_, dtype=np.float64)

        self.trees_ = []
        self.train_losses_: list[float] = []
        for _ in range(self.n_estimators):
            p = _sigmoid(margin)
            grad = p - target
            hess = p * (1.0 - p)

            if self.subsample < 1.0:
                rows = rng.random(n) < self.subsample
                if not rows.any():
                    rows[rng.integers(0, n)] = True
            else:
                rows = np.ones(n, dtype=bool)

            tree = _BoostTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                colsample=self.colsample_bytree,
                rng=rng,
            )
            tree.fit(X[rows], grad[rows], hess[rows])
            self.trees_.append(tree)
            margin += self.learning_rate * tree.predict(X)

            p = np.clip(_sigmoid(margin), 1e-12, 1 - 1e-12)
            loss = float(-np.mean(target * np.log(p) + (1 - target) * np.log(1 - p)))
            self.train_losses_.append(loss)
        return self

    def decision_function(self, X) -> np.ndarray:
        X = check_array(X)
        margin = np.full(X.shape[0], self.base_margin_, dtype=np.float64)
        for tree in self.trees_:
            margin += self.learning_rate * tree.predict(X)
        return margin

    def predict_proba(self, X) -> np.ndarray:
        if self._constant_class:
            X = check_array(X)
            return np.ones((X.shape[0], 1), dtype=np.float64)
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    @property
    def feature_importances_(self) -> np.ndarray:
        """Total split gain per feature, normalised (XGBoost 'gain')."""
        if not self.trees_:
            raise RuntimeError("model has no trees (constant class?)")
        total = np.zeros(self.trees_[0].n_features_, dtype=np.float64)
        for tree in self.trees_:
            total += tree.feature_gains
        s = total.sum()
        return total / s if s else total
