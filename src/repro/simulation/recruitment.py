"""Recruitment funnel model (§4).

The paper recruited workers from 16 Facebook ASO groups and regular
users via Instagram ads (136,022 impressions → 61,748 users reached →
2,471 clicks → 614 confirmation emails → 233 installs).  This module
models the funnel as a chain of binomial stages so the §5 dataset-
overview bench can report a simulated funnel next to the paper's, and
so repeat-install behaviour (workers reinstalling to collect the $1
bounty again — Appendix A) has a quantified source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .calibration import RECRUITMENT

__all__ = ["FunnelStage", "RecruitmentFunnel", "simulate_funnel", "sample_country"]


def sample_country(rng: np.random.Generator, is_worker: bool) -> str:
    """Draw a participant country from the §4 distribution.

    Paper: Pakistan (W 364 / R 56), India (W 57 / R 153), Bangladesh
    (W 143 / R 5), USA (W 8 / R 2), plus a small remainder.  IP-based
    geolocation is approximate, so the server records this as the
    *apparent* country.
    """
    column = 0 if is_worker else 1
    countries = list(RECRUITMENT.COUNTRIES)
    weights = np.array(
        [RECRUITMENT.COUNTRIES[c][column] for c in countries], dtype=float
    )
    # "other countries from Africa, Asia, South America and Europe (15)".
    countries.append("OTHER")
    weights = np.append(weights, 15.0 * weights.sum() / 788.0)
    return str(rng.choice(countries, p=weights / weights.sum()))


@dataclass(frozen=True)
class FunnelStage:
    name: str
    count: int


@dataclass(frozen=True)
class RecruitmentFunnel:
    """Outcome of one simulated recruitment drive."""

    stages: tuple[FunnelStage, ...]

    def count(self, name: str) -> int:
        for stage in self.stages:
            if stage.name == name:
                return stage.count
        raise KeyError(name)

    def conversion(self, from_stage: str, to_stage: str) -> float:
        upstream = self.count(from_stage)
        return self.count(to_stage) / upstream if upstream else 0.0


def simulate_funnel(
    rng: np.random.Generator,
    impressions: int = RECRUITMENT.ADS_SHOWN,
) -> RecruitmentFunnel:
    """Simulate the Instagram recruitment funnel.

    Stage probabilities are the paper's observed conversion rates, so
    at the paper's impression volume the funnel reproduces §4's counts
    in expectation; at other volumes it scales proportionally.
    """
    p_reach = RECRUITMENT.ADS_REACHED / RECRUITMENT.ADS_SHOWN
    p_click = RECRUITMENT.ADS_CLICKED / RECRUITMENT.ADS_REACHED
    p_consent = RECRUITMENT.REGULAR_EMAILED / RECRUITMENT.ADS_CLICKED
    p_install = RECRUITMENT.REGULAR_INSTALLS / RECRUITMENT.REGULAR_EMAILED

    reached = int(rng.binomial(impressions, p_reach))
    clicked = int(rng.binomial(reached, p_click))
    consented = int(rng.binomial(clicked, p_consent))
    installed = int(rng.binomial(consented, p_install))
    return RecruitmentFunnel(
        stages=(
            FunnelStage("impressions", impressions),
            FunnelStage("reached", reached),
            FunnelStage("clicked", clicked),
            FunnelStage("consented", consented),
            FunnelStage("installed", installed),
        )
    )
