"""Timer context manager and registry snapshot/merge round-trip."""

import pytest

from repro import obs
from repro.obs import MetricsRegistry, NullRegistry, Timer


class TestTimer:
    def test_elapsed_recorded(self):
        with obs.timer() as timed:
            sum(range(1000))
        assert timed.elapsed >= 0.0

    def test_observes_into_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("block_seconds")
        with Timer(hist):
            pass
        assert hist.count == 1
        assert hist.sum >= 0.0

    def test_observes_on_exception(self):
        registry = MetricsRegistry()
        hist = registry.histogram("block_seconds")
        with pytest.raises(RuntimeError):
            with Timer(hist):
                raise RuntimeError("boom")
        assert hist.count == 1

    def test_without_histogram_is_pure_stopwatch(self):
        timer = obs.timer()
        assert timer.histogram is None
        with timer:
            pass
        assert timer.elapsed >= 0.0


class TestSnapshotMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs_total", {"kind": "fit"}).inc(3)
        registry.gauge("queue_depth").set(7)
        registry.histogram("latency_seconds").observe(0.25)
        registry.histogram("latency_seconds").observe(1.5)
        return registry

    def test_roundtrip_into_empty_registry(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.value("jobs_total", {"kind": "fit"}) == 3
        assert target.value("queue_depth") == 7
        hist = target.histogram("latency_seconds")
        assert hist.count == 2
        assert hist.sum == pytest.approx(1.75)

    def test_merge_accumulates(self):
        target = self._populated()
        target.merge(self._populated().snapshot())
        assert target.value("jobs_total", {"kind": "fit"}) == 6
        assert target.histogram("latency_seconds").count == 4
        # Gauges take the snapshot value (last-write-wins), not a sum.
        assert target.value("queue_depth") == 7

    def test_merge_order_independent_totals(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        one, two = MetricsRegistry(), MetricsRegistry()
        one.counter("c").inc(1)
        two.counter("c").inc(2)
        a.merge(one.snapshot())
        a.merge(two.snapshot())
        b.merge(two.snapshot())
        b.merge(one.snapshot())
        assert a.value("c") == b.value("c") == 3

    def test_bucket_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(5.0, 10.0))
        with pytest.raises(ValueError, match="bucket"):
            target.merge(source.snapshot())

    def test_snapshot_is_picklable_primitives(self):
        import pickle

        snapshot = self._populated().snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        assert null.snapshot() == {"families": {}, "series": []}
        null.merge(self._populated().snapshot())  # must not touch singletons
        assert null.counter("anything").value == 0.0
        assert null.histogram("anything").count == 0
