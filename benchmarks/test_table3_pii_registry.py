"""Bench: Table 3 — the PII governance registry."""

from repro.experiments import run_experiment
from repro.platform.models import PII_REGISTRY


def test_table3_pii_registry(benchmark, workbench, emit):
    benchmark(lambda: [entry.pii for entry in PII_REGISTRY])
    report = emit(run_experiment("table3", workbench))
    assert report.metrics["registry_entries"] == 6
