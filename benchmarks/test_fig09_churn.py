"""Bench: Figure 9 app churn (daily installs vs uninstalls)."""

from repro.analysis import compute_churn
from repro.experiments import run_experiment


def test_fig09_churn(benchmark, workbench, emit):
    benchmark(compute_churn, workbench.observations)
    report = emit(run_experiment("fig09", workbench))
    # Workers install ~4x more apps per day (paper: 15.94 vs 3.88).
    assert report.metrics["worker_installs_mean"] >= 2 * report.metrics["regular_installs_mean"]
    assert report.metrics["installs_significant"] == 1.0
    assert report.metrics["uninstalls_significant"] == 1.0
