"""Snapshot schema and PII registry for the RacketStore platform.

§3 defines two snapshot families: *slow* (every 2 minutes: identifiers,
registered accounts, save-mode status, stopped apps) and *fast* (every
5 seconds: identifiers, foreground app, screen/battery status, and
install/uninstall deltas).  Because consecutive snapshots are almost
always identical, the wire format here is run-length encoded: one
``*SnapshotRun`` record stands for every periodic snapshot taken while
the captured state was constant.  ``n_snapshots`` recovers exact counts,
so the §6.1 engagement statistics are unaffected.

Table 3's PII inventory is reproduced as :data:`PII_REGISTRY`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any

__all__ = [
    "SlowSnapshotRun",
    "FastSnapshotRun",
    "AppChangeEvent",
    "InstalledAppInfo",
    "InitialSnapshot",
    "PIIEntry",
    "PII_REGISTRY",
    "record_to_dict",
    "record_from_dict",
]


def _run_count(start: float, end: float, period: float) -> int:
    """Number of periodic samples in [start, end) at ``period`` spacing
    (at least one: the sample at ``start``)."""
    if end < start:
        raise ValueError(f"run ends before it starts ({end} < {start})")
    return 1 + int(math.floor(max(end - start, 0.0) / period))


@dataclass(frozen=True, slots=True)
class SlowSnapshotRun:
    """RLE run of slow (2-minute) snapshots with constant state."""

    install_id: str
    participant_id: str
    android_id: str | None
    start: float
    end: float
    period: float
    #: (service, identifier) pairs; empty tuple when GET_ACCOUNTS denied.
    accounts: tuple[tuple[str, str], ...]
    save_mode: bool
    stopped_apps: tuple[str, ...]
    accounts_permission: bool = True

    @property
    def n_snapshots(self) -> int:
        return _run_count(self.start, self.end, self.period)


@dataclass(frozen=True, slots=True)
class FastSnapshotRun:
    """RLE run of fast (5-second) snapshots with constant state."""

    install_id: str
    participant_id: str
    start: float
    end: float
    period: float
    foreground: str | None
    screen_on: bool
    battery: float
    usage_permission: bool = True

    @property
    def n_snapshots(self) -> int:
        return _run_count(self.start, self.end, self.period)


@dataclass(frozen=True, slots=True)
class AppChangeEvent:
    """Install/uninstall delta between consecutive installed-app sets."""

    install_id: str
    participant_id: str
    timestamp: float
    action: str  # "install" | "uninstall"
    package: str
    install_time: float | None = None
    apk_hash: str | None = None
    n_granted: int = 0
    n_denied: int = 0
    n_normal_permissions: int = 0
    n_dangerous_permissions: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("install", "uninstall"):
            raise ValueError(f"unknown app-change action {self.action!r}")


@dataclass(frozen=True, slots=True)
class InstalledAppInfo:
    """Per-app metadata in the initial snapshot (§3 initial collector)."""

    package: str
    install_time: float
    last_update_time: float
    apk_hash: str
    n_granted: int
    n_denied: int
    n_normal_permissions: int
    n_dangerous_permissions: int
    stopped: bool
    preinstalled: bool


@dataclass(frozen=True, slots=True)
class InitialSnapshot:
    """First report after sign-in: device info + full installed-app list."""

    install_id: str
    participant_id: str
    android_id: str | None
    api_level: int
    model: str
    manufacturer: str
    timestamp: float
    installed_apps: tuple[InstalledAppInfo, ...]


@dataclass(frozen=True)
class PIIEntry:
    """One row of Table 3 (PII / collector / reasons / deletion)."""

    pii: str
    collector: str
    reason: str
    deletion: str


#: Table 3 of the paper, verbatim.
PII_REGISTRY: tuple[PIIEntry, ...] = (
    PIIEntry("Accounts", "RacketStore", "Classification", "After use"),
    PIIEntry("Accounts", "RacketStore", "Review collection", "After use"),
    PIIEntry("Email", "Website", "Recruitment", "After use"),
    PIIEntry("IP address", "Backend", "Statistics", "Not stored"),
    PIIEntry("Device ID", "RacketStore", "Snap. fingerprint", "After use"),
    PIIEntry("Payment Info", "Author", "Payment", "Not stored"),
)


_RECORD_TYPES = {
    "slow_run": SlowSnapshotRun,
    "fast_run": FastSnapshotRun,
    "app_change": AppChangeEvent,
    "initial": InitialSnapshot,
}
_TYPE_NAMES = {cls: name for name, cls in _RECORD_TYPES.items()}


def record_to_dict(record: Any) -> dict:
    """Serialise a snapshot record to a JSON-compatible dict with a type tag."""
    cls = type(record)
    if cls not in _TYPE_NAMES:
        raise TypeError(f"not a snapshot record: {cls.__name__}")
    payload = asdict(record)
    if cls is InitialSnapshot:
        payload["installed_apps"] = [asdict(a) if not isinstance(a, dict) else a
                                     for a in record.installed_apps]
    payload["_type"] = _TYPE_NAMES[cls]
    return payload


def record_from_dict(payload: dict) -> Any:
    """Inverse of :func:`record_to_dict`."""
    payload = dict(payload)
    type_name = payload.pop("_type", None)
    if type_name not in _RECORD_TYPES:
        raise ValueError(f"unknown record type {type_name!r}")
    cls = _RECORD_TYPES[type_name]
    if cls is InitialSnapshot:
        payload["installed_apps"] = tuple(
            InstalledAppInfo(**a) for a in payload["installed_apps"]
        )
    if cls is SlowSnapshotRun:
        payload["accounts"] = tuple(tuple(pair) for pair in payload["accounts"])
        payload["stopped_apps"] = tuple(payload["stopped_apps"])
    return cls(**payload)
