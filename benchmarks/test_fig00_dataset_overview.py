"""Bench: §4-§5 dataset overview (recruitment funnel, Appendix-A coalescing)."""

from repro.experiments import run_experiment


def test_fig00_dataset_overview(benchmark, workbench, emit):
    report = benchmark.pedantic(
        lambda: run_experiment("fig00", workbench), rounds=1, iterations=1
    )
    emit(report)
    # Coalescing must fold the repeat installs back into unique devices.
    assert report.metrics["installs"] > report.metrics["unique_devices"]
    assert report.metrics["snapshots"] > 100_000
