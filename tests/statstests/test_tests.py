"""Cross-checks of the from-scratch statistical tests against scipy,
plus edge-case behaviour."""

import numpy as np
import pytest
import scipy.stats as ss
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statstests import (
    compare_groups,
    fligner_killeen,
    kruskal_wallis,
    ks_2samp,
    mann_whitney_u,
    one_way_anova,
    shapiro_wilk,
)


@pytest.fixture()
def samples(rng):
    return rng.lognormal(1.0, 1.0, 250), rng.lognormal(1.4, 1.2, 200)


class TestAgainstScipy:
    def test_ks_statistic_exact(self, samples):
        a, b = samples
        mine, ref = ks_2samp(a, b), ss.ks_2samp(a, b)
        assert mine.statistic == pytest.approx(ref.statistic, abs=1e-12)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=0.05)

    def test_anova_matches(self, samples):
        a, b = samples
        mine, ref = one_way_anova(a, b), ss.f_oneway(a, b)
        assert mine.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_anova_three_groups(self, rng):
        groups = [rng.normal(i * 0.3, 1.0, 80) for i in range(3)]
        mine, ref = one_way_anova(*groups), ss.f_oneway(*groups)
        assert mine.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_kruskal_matches_with_ties(self, rng):
        a = rng.integers(0, 15, 120).astype(float)  # heavy ties
        b = rng.integers(3, 20, 100).astype(float)
        mine, ref = kruskal_wallis(a, b), ss.kruskal(a, b)
        assert mine.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_fligner_matches(self, samples):
        a, b = samples
        mine, ref = fligner_killeen(a, b), ss.fligner(a, b)
        assert mine.statistic == pytest.approx(ref.statistic, rel=1e-6)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-4)

    def test_shapiro_matches_nonnormal(self, samples):
        a, _ = samples
        mine, ref = shapiro_wilk(a), ss.shapiro(a)
        assert mine.statistic == pytest.approx(ref.statistic, abs=1e-6)
        # Both reject decisively.
        assert mine.pvalue < 1e-6 and ref.pvalue < 1e-6

    def test_shapiro_matches_normal(self, rng):
        g = rng.normal(0, 1, 300)
        mine, ref = shapiro_wilk(g), ss.shapiro(g)
        assert mine.statistic == pytest.approx(ref.statistic, abs=1e-6)
        assert mine.pvalue == pytest.approx(ref.pvalue, abs=0.02)

    def test_mann_whitney_matches(self, samples):
        a, b = samples
        mine = mann_whitney_u(a, b)
        ref = ss.mannwhitneyu(a, b)
        assert mine.statistic == pytest.approx(ref.statistic)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_ks_agrees_with_scipy(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, 40 + seed % 60)
        b = rng.normal(rng.uniform(0, 1), 1, 35 + seed % 40)
        mine, ref = ks_2samp(a, b), ss.ks_2samp(a, b)
        assert mine.statistic == pytest.approx(ref.statistic, abs=1e-12)


class TestBehaviour:
    def test_identical_samples_not_significant(self, rng):
        a = rng.normal(0, 1, 100)
        assert not ks_2samp(a, a).significant()
        assert not one_way_anova(a, a.copy()).significant()
        assert not kruskal_wallis(a, a.copy()).significant()

    def test_shifted_samples_significant(self, rng):
        a = rng.normal(0, 1, 200)
        b = rng.normal(2, 1, 200)
        assert ks_2samp(a, b).significant()
        assert one_way_anova(a, b).significant()
        assert kruskal_wallis(a, b).significant()

    def test_anova_requires_two_groups(self, rng):
        with pytest.raises(ValueError):
            one_way_anova(rng.normal(0, 1, 10))

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_2samp([], [1.0, 2.0])

    def test_nonfinite_values_dropped(self):
        result = ks_2samp([1.0, 2.0, np.nan, np.inf, 3.0], [1.1, 2.1, 3.1])
        assert np.isfinite(result.statistic)

    def test_shapiro_minimum_n(self):
        with pytest.raises(ValueError):
            shapiro_wilk([1.0, 2.0, 3.0])

    def test_shapiro_constant_sample(self):
        result = shapiro_wilk([2.0] * 20)
        assert result.pvalue == 1.0

    def test_pvalues_in_unit_interval(self, rng):
        for _ in range(5):
            a = rng.exponential(1, 50)
            b = rng.exponential(1.2, 60)
            for result in (
                ks_2samp(a, b),
                one_way_anova(a, b),
                kruskal_wallis(a, b),
                fligner_killeen(a, b),
                shapiro_wilk(a),
                mann_whitney_u(a, b),
            ):
                assert 0.0 <= result.pvalue <= 1.0


class TestCompareGroups:
    def test_battery_structure(self, samples):
        a, b = samples
        battery = compare_groups("feature_x", a, b)
        assert battery.feature == "feature_x"
        assert battery.all_significant()
        assert battery.distribution_tests_significant()

    def test_paper_pattern_installed_apps(self, rng):
        """Same means, different shapes: KS rejects, ANOVA does not —
        the paper's installed-apps pattern (Fig 6 left)."""
        a = rng.normal(65, 5, 400)
        spread = np.concatenate([rng.normal(55, 2, 200), rng.normal(75, 2, 200)])
        battery = compare_groups("installed", a, spread)
        assert battery.ks.significant()
        assert not battery.anova.significant()
        assert not battery.all_significant()
        assert battery.distribution_tests_significant() == battery.kruskal.significant()
