"""The determinism-under-parallelism contract (DESIGN.md §8).

Every assertion here is exact (``==`` / ``array_equal``), never
approximate: the contract is *byte-identical* outputs at any worker
count, not statistically similar ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.experiments import Workbench, run_experiment, run_many
from repro.ml import RandomForestClassifier, cross_validate
from repro.ml.model_selection import train_test_split
from repro.ml.tree import DecisionTreeClassifier
from repro.parallel import spawn_seeds
from repro.simulation import SimulationConfig


@pytest.fixture(scope="module")
def dataset():
    data_seed, label_seed = spawn_seeds(2024, 2)
    rng = np.random.default_rng(data_seed)
    X = rng.normal(size=(120, 6))
    y = np.random.default_rng(label_seed).permutation(
        (np.arange(120) % 3 == 0).astype(np.int64)
    )
    X[:, :2] += 1.2 * y[:, None]
    return X, y


class TestCrossValidationDeterminism:
    def test_summary_identical_across_worker_counts(self, dataset):
        X, y = dataset
        kwargs = dict(n_splits=5, n_repeats=2, random_state=7)
        serial = cross_validate(
            DecisionTreeClassifier(max_depth=4, random_state=0), X, y,
            n_jobs=1, **kwargs,
        )
        parallel = cross_validate(
            DecisionTreeClassifier(max_depth=4, random_state=0), X, y,
            n_jobs=4, **kwargs,
        )
        assert serial.summary() == parallel.summary()

    def test_resampled_folds_identical(self, dataset):
        X, y = dataset
        kwargs = dict(n_splits=4, resample="smote", random_state=11)
        serial = cross_validate(
            DecisionTreeClassifier(max_depth=3, random_state=1), X, y,
            n_jobs=1, **kwargs,
        )
        parallel = cross_validate(
            DecisionTreeClassifier(max_depth=3, random_state=1), X, y,
            n_jobs=3, **kwargs,
        )
        assert serial.summary() == parallel.summary()

    def test_fold_metrics_survive_fanout(self, dataset):
        X, y = dataset
        obs.configure(metrics=True, tracing=False, registry=obs.MetricsRegistry())
        try:
            cross_validate(
                DecisionTreeClassifier(max_depth=3, random_state=1), X, y,
                n_splits=4, random_state=3, name="DT", n_jobs=2,
            )
            fit_hist = obs.histogram("ml_fit_seconds", {"model": "DT"})
            assert fit_hist.count == 4
            assert obs.counter("ml_folds_total", {"model": "DT"}).value == 4
        finally:
            obs.reset()


class TestForestDeterminism:
    def test_importances_and_oob_identical(self, dataset):
        X, y = dataset
        serial = RandomForestClassifier(n_estimators=20, random_state=5, n_jobs=1).fit(X, y)
        parallel = RandomForestClassifier(n_estimators=20, random_state=5, n_jobs=4).fit(X, y)
        assert np.array_equal(serial.feature_importances_, parallel.feature_importances_)
        assert serial.oob_score() == parallel.oob_score()
        assert np.array_equal(serial.predict(X), parallel.predict(X))

    def test_forest_unchanged_by_n_jobs_attribute(self, dataset):
        # n_jobs must be a pure execution knob: the fitted trees match
        # the historical serial construction draw for draw.
        X, y = dataset
        baseline = RandomForestClassifier(n_estimators=8, random_state=9).fit(X, y)
        parallel = RandomForestClassifier(n_estimators=8, random_state=9, n_jobs=2).fit(X, y)
        for a, b in zip(baseline.estimators_, parallel.estimators_):
            assert a.get_n_nodes() == b.get_n_nodes()
            assert np.array_equal(a.feature_importances_, b.feature_importances_)


class TestExperimentDeterminism:
    def test_reports_identical_across_worker_counts(self):
        ids = ["fig04", "fig07", "fig09"]
        serial_bench = Workbench(SimulationConfig.small())
        serial = [run_experiment(eid, serial_bench) for eid in ids]
        parallel = run_many(ids, Workbench(SimulationConfig.small()), n_jobs=2)
        for s, p in zip(serial, parallel):
            assert s.experiment_id == p.experiment_id
            assert s.render() == p.render()
            assert s.metrics == p.metrics

    def test_run_many_rejects_unknown_ids(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_many(["fig04", "nope"], Workbench(SimulationConfig.small()))


class TestTrainTestSplitGuard:
    def test_two_sample_class_keeps_a_training_sample(self):
        # Regression: test_size=0.8 on a 2-sample class used to round to
        # k=2 and consume the class whole, leaving the training split
        # without it.
        X = np.arange(24, dtype=np.float64).reshape(12, 2)
        y = np.array([0] * 10 + [1] * 2)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.8, random_state=0
        )
        assert (y_train == 1).sum() >= 1
        assert (y_train == 0).sum() >= 1
        assert len(y_train) + len(y_test) == 12

    def test_every_seed_preserves_all_classes(self):
        X = np.arange(20, dtype=np.float64).reshape(10, 2)
        y = np.array([0] * 8 + [1] * 2)
        for seed in range(10):
            _, _, y_train, _ = train_test_split(X, y, test_size=0.5, random_state=seed)
            assert set(np.unique(y_train)) == {0, 1}
