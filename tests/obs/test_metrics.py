"""Counter/gauge/histogram semantics and the export round-trip."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    parse_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("events_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.value("x") == 2.0

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("x", {"kind": "fast"}).inc()
        registry.counter("x", {"kind": "slow"}).inc(3)
        assert registry.value("x", {"kind": "fast"}) == 1.0
        assert registry.value("x", {"kind": "slow"}) == 3.0
        assert registry.value("x") == 0.0  # unlabeled series never created

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", {"a": "1", "b": "2"}).inc()
        assert registry.value("x", {"b": "2", "a": "1"}) == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistogram:
    def test_counts_sum_mean(self):
        h = MetricsRegistry().histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.mean == pytest.approx(56.05 / 5)

    def test_cumulative_buckets(self):
        h = MetricsRegistry().histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 3
        assert cumulative[10.0] == 4
        assert cumulative[math.inf] == 5

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: le="1.0" includes 1.0.
        h = MetricsRegistry().histogram("latency", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert dict(h.cumulative_buckets())[1.0] == 1

    def test_quantile_interpolates(self):
        h = MetricsRegistry().histogram("latency", buckets=(1.0, 2.0, 4.0))
        for v in (0.5,) * 50 + (3.0,) * 50:
            h.observe(v)
        assert 0.0 < h.quantile(0.25) <= 1.0
        assert 2.0 < h.quantile(0.9) <= 4.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_to_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", {"k": "v"}).inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        doc = registry.to_json()
        assert doc["counters"] == {'c_total{k="v"}': 2.0}
        assert doc["gauges"] == {"g": 1.5}
        hist = doc["histograms"]["h"]
        assert hist["count"] == 1 and hist["sum"] == 0.5
        assert hist["buckets"]["+Inf"] == 1

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("records_total", help="records stored").inc(41)
        registry.counter("records_total", {"kind": "fast"}).inc(7)
        registry.gauge("queue_depth").set(3)
        h = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE records_total counter" in text
        assert "# HELP records_total records stored" in text
        assert "# TYPE latency_seconds histogram" in text

        samples = parse_prometheus(text)
        assert samples["records_total"] == 41
        assert samples['records_total{kind="fast"}'] == 7
        assert samples["queue_depth"] == 3
        assert samples['latency_seconds_bucket{le="0.1"}'] == 1
        assert samples['latency_seconds_bucket{le="1"}'] == 2
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 2
        assert samples["latency_seconds_sum"] == pytest.approx(0.55)
        assert samples["latency_seconds_count"] == 2

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert MetricsRegistry().to_json() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestNullRegistry:
    def test_discards_everything(self):
        registry = NullRegistry()
        registry.counter("x").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.value("x") == 0.0
        assert registry.to_json() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert registry.render_prometheus() == ""

    def test_null_series_read_as_zero(self):
        registry = NullRegistry()
        c = registry.counter("x")
        c.inc(10)
        assert c.value == 0.0
        h = registry.histogram("h")
        h.observe(3.0)
        assert h.count == 0
