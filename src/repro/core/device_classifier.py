"""Device classifier (§8.2): detecting worker-controlled devices.

Table 2's algorithm suite (XGB, RF, SVM, KNN, LVQ), 10-fold CV with
SMOTE oversampling of the minority class, plus the Figure 14 Gini
importances.  Precision is the prioritised metric ("a low precision
would lead the app market to take wrong actions against many regular
devices").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..ml import (
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearSVC,
    LVQClassifier,
    RandomForestClassifier,
    cross_validate,
)
from ..ml.model_selection import CrossValidationResult
from ..ml.preprocessing import SimpleImputer
from .datasets import DeviceDataset

__all__ = [
    "DEVICE_ALGORITHMS",
    "DeviceClassifierEvaluation",
    "DeviceClassifier",
    "evaluate_device_algorithms",
]


def DEVICE_ALGORITHMS(random_state: int = 0) -> dict[str, object]:
    """The Table 2 algorithm suite (KNN uses K=5 per the paper)."""
    return {
        "XGB": GradientBoostingClassifier(
            n_estimators=120, max_depth=3, learning_rate=0.15, random_state=random_state
        ),
        "RF": RandomForestClassifier(n_estimators=120, random_state=random_state),
        "SVM": LinearSVC(C=1.0, epochs=40, random_state=random_state),
        "KNN": KNeighborsClassifier(n_neighbors=5),
        "LVQ": LVQClassifier(prototypes_per_class=5, epochs=25, random_state=random_state),
    }


@dataclass
class DeviceClassifierEvaluation:
    """Table 2 + Figure 14 in object form."""

    results: dict[str, CrossValidationResult]
    feature_importances: dict[str, float]
    n_worker: int
    n_regular: int
    sampling: str = "smote"

    def table_rows(self) -> list[tuple[str, float, float, float]]:
        rows = [
            (name, r.precision, r.recall, r.f1) for name, r in self.results.items()
        ]
        return sorted(rows, key=lambda row: -row[3])

    def best_algorithm(self) -> str:
        return self.table_rows()[0][0]

    def top_features(self, k: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(self.feature_importances.items(), key=lambda kv: -kv[1])
        return ranked[:k]


def evaluate_device_algorithms(
    dataset: DeviceDataset,
    n_splits: int = 10,
    n_repeats: int = 1,
    resample: str | None = "smote",
    random_state: int = 0,
    algorithms: dict[str, object] | None = None,
    n_jobs: int | None = None,
) -> DeviceClassifierEvaluation:
    """Run the §8.2 protocol (10-fold CV, SMOTE by default).

    ``n_jobs`` fans the CV folds (and the importance forest's trees) out
    across worker processes without changing any reported number.
    """
    algorithms = algorithms or DEVICE_ALGORITHMS(random_state)
    results: dict[str, CrossValidationResult] = {}
    for name, estimator in algorithms.items():
        with obs.trace(f"ml.cv.device.{name}"):
            results[name] = cross_validate(
                estimator,
                dataset.X,
                dataset.y,
                n_splits=n_splits,
                n_repeats=n_repeats,
                resample=resample,
                random_state=random_state,
                name=name,
                n_jobs=n_jobs,
            )

    with obs.trace("ml.importances.device"):
        forest = RandomForestClassifier(
            n_estimators=150, random_state=random_state, n_jobs=n_jobs
        )
        forest.fit(dataset.X, dataset.y)
    importances = dict(zip(dataset.feature_names, forest.feature_importances_))

    return DeviceClassifierEvaluation(
        results=results,
        feature_importances=importances,
        n_worker=dataset.n_worker,
        n_regular=dataset.n_regular,
        sampling=resample or "none",
    )


class DeviceClassifier:
    """Deployable worker-device detector (XGB, the Table 2 winner)."""

    def __init__(self, random_state: int = 0) -> None:
        self._imputer = SimpleImputer(strategy="median")
        self._model = GradientBoostingClassifier(
            n_estimators=120, max_depth=3, learning_rate=0.15, random_state=random_state
        )
        self.feature_names: tuple[str, ...] = ()

    def fit(self, dataset: DeviceDataset) -> "DeviceClassifier":
        X = self._imputer.fit_transform(dataset.X)
        self._model.fit(X, dataset.y)
        self.feature_names = dataset.feature_names
        return self

    def predict(self, X) -> np.ndarray:
        return self._model.predict(self._imputer.transform(np.atleast_2d(X)))

    def predict_proba(self, X) -> np.ndarray:
        return self._model.predict_proba(self._imputer.transform(np.atleast_2d(X)))
