"""HTTP-style API for the RacketStore web app (§3, Figure 3).

The paper's server exposes the sign-in component, the snapshot
collector engine and the internal dashboard over HTTP(S).  This module
reproduces that interface as a framework-free request router: plain
:class:`ApiRequest`/:class:`ApiResponse` values, path routing with
parameters, participant-code authentication for uploads, and an
IP-side-channel note — the backend records the request's apparent
country for the §4 recruitment statistics but never stores the address
itself (Table 3: "IP address / Backend / Statistics / Not stored").
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Callable

from .dashboard import Dashboard
from .errors import Throttled, UploadError
from .server import RacketStoreServer

__all__ = ["ApiRequest", "ApiResponse", "RacketStoreApi"]


@dataclass(frozen=True)
class ApiRequest:
    """One request: method, path, JSON body, and transport metadata."""

    method: str
    path: str
    body: dict | None = None
    #: Apparent origin country (derived from the connection; the
    #: address itself is never persisted — Table 3).
    ip_country: str | None = None


@dataclass(frozen=True)
class ApiResponse:
    status: int
    body: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


_Handler = Callable[[ApiRequest, dict], ApiResponse]


def _error(status: int, message: str) -> ApiResponse:
    return ApiResponse(status, {"error": message})


class RacketStoreApi:
    """Router + handlers over a :class:`RacketStoreServer`.

    Routes
    ------
    ``POST /signin``                 validate a participant code, register the install
    ``POST /snapshots/{kind}``       upload one compressed chunk (base64 body)
    ``GET  /dashboard/overview``     fleet monitoring numbers
    ``GET  /dashboard/installs/{id}`` per-install health
    ``GET  /dashboard/validation``   consistency-check results
    ``GET  /stats``                  ingest statistics
    """

    def __init__(self, server: RacketStoreServer) -> None:
        self._server = server
        self._dashboard = Dashboard(server)
        #: country -> request count (the only trace of request origins).
        self.country_counts: dict[str, int] = {}
        self._routes: list[tuple[str, list[str], _Handler]] = []
        self._route("POST", "/signin", self._handle_signin)
        self._route("POST", "/snapshots/{kind}", self._handle_upload)
        self._route("GET", "/dashboard/overview", self._handle_overview)
        self._route("GET", "/dashboard/installs/{install_id}", self._handle_install)
        self._route("GET", "/dashboard/validation", self._handle_validation)
        self._route("GET", "/stats", self._handle_stats)

    # -- routing -----------------------------------------------------------
    def _route(self, method: str, pattern: str, handler: _Handler) -> None:
        self._routes.append((method, pattern.strip("/").split("/"), handler))

    def handle(self, request: ApiRequest) -> ApiResponse:
        """Dispatch one request; never raises for malformed input."""
        if request.ip_country:
            self.country_counts[request.ip_country] = (
                self.country_counts.get(request.ip_country, 0) + 1
            )
        segments = request.path.strip("/").split("/")
        path_exists = False
        for method, pattern, handler in self._routes:
            params = self._match(pattern, segments)
            if params is None:
                continue
            path_exists = True
            if method != request.method:
                continue
            try:
                return handler(request, params)
            except Exception as error:  # defensive: a handler bug is a 500
                return _error(500, f"internal error: {type(error).__name__}")
        if path_exists:
            return _error(405, "method not allowed")
        return _error(404, "no such route")

    @staticmethod
    def _match(pattern: list[str], segments: list[str]) -> dict | None:
        if len(pattern) != len(segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(pattern, segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params

    # -- handlers ------------------------------------------------------------
    def _handle_signin(self, request: ApiRequest, _params: dict) -> ApiResponse:
        body = request.body or {}
        required = {"participant_id", "install_id"}
        if not required <= set(body):
            return _error(400, f"missing fields: {sorted(required - set(body))}")
        if not self._server.is_valid_participant(body["participant_id"]):
            # The §3 guarantee: nothing is collected without a valid code.
            return _error(403, "unknown participant id")
        self._server.register_install(
            participant_id=body["participant_id"],
            install_id=body["install_id"],
            android_id=body.get("android_id"),
            timestamp=float(body.get("timestamp", 0.0)),
        )
        return ApiResponse(200, {"registered": body["install_id"]})

    def _handle_upload(self, request: ApiRequest, params: dict) -> ApiResponse:
        kind = params["kind"]
        if kind not in ("fast", "slow"):
            return _error(400, f"unknown snapshot kind {kind!r}")
        body = request.body or {}
        if "chunk_b64" not in body:
            return _error(400, "missing chunk_b64")
        try:
            data = base64.b64decode(body["chunk_b64"], validate=True)
        except Exception:
            return _error(400, "chunk_b64 is not valid base64")
        try:
            ack = self._server.receive_chunk(kind, data)
        except Throttled as error:
            return ApiResponse(
                429,
                {
                    "error": "server overloaded; retry later",
                    "retry_after": error.retry_after,
                },
            )
        except UploadError:
            # Server-side receive failure (e.g. injected crash/rejection
            # during chaos runs): no ack exists, the client must retry.
            return _error(503, "chunk not stored; retry")
        # The hash acknowledgement the app's buffer verifies (§3).
        return ApiResponse(200, {"sha256": ack})

    def _handle_overview(self, _request: ApiRequest, _params: dict) -> ApiResponse:
        return ApiResponse(200, self._dashboard.overview())

    def _handle_install(self, _request: ApiRequest, params: dict) -> ApiResponse:
        health = self._dashboard.install_health(params["install_id"])
        if health is None:
            return _error(404, "unknown install")
        return ApiResponse(
            200,
            {
                "install_id": health.install_id,
                "snapshots_per_day": health.snapshots_per_day,
                "active_days": health.active_days,
                "healthy": health.healthy,
                "reported_accounts": health.reported_accounts,
                "reported_usage": health.reported_usage,
            },
        )

    def _handle_validation(self, _request: ApiRequest, _params: dict) -> ApiResponse:
        issues = self._dashboard.validate()
        return ApiResponse(
            200,
            {
                "issues": [
                    {"install_id": i.install_id, "check": i.check, "detail": i.detail}
                    for i in issues
                ]
            },
        )

    def _handle_stats(self, _request: ApiRequest, _params: dict) -> ApiResponse:
        stats = self._server.stats
        return ApiResponse(
            200,
            {
                "chunks_received": stats.chunks_received,
                "bytes_received": stats.bytes_received,
                "records_inserted": stats.records_inserted,
                "malformed_chunks": stats.malformed_chunks,
                "malformed_records": stats.malformed_records,
                "duplicate_chunks": stats.duplicate_chunks,
                "chunk_rollbacks": stats.chunk_rollbacks,
                "requests_by_country": dict(self.country_counts),
            },
        )
