"""Bench: Figure 5 registered accounts (Gmail / types / non-Gmail)."""

from repro.analysis import compute_accounts
from repro.experiments import run_experiment
from repro.simulation.calibration import ACCOUNTS


def test_fig05_accounts(benchmark, workbench, emit):
    benchmark(compute_accounts, workbench.observations)
    report = emit(run_experiment("fig05", workbench))
    # Shape: worker Gmail median within 50% of the paper's 21; regular
    # median at the paper's 2; contrast significant.
    assert report.metrics["worker_gmail_median"] >= ACCOUNTS.WORKER_GMAIL_MEDIAN * 0.5
    assert report.metrics["regular_gmail_median"] <= 4
    assert report.metrics["gmail_significant"] == 1.0
