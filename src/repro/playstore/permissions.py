"""Android permission model used by the catalog and the §6.3/§7.1 features.

Android splits permissions into *normal* (install-time, auto-granted) and
*dangerous* (runtime, user-granted) protection levels.  Figure 11 plots
dangerous vs total permissions per app; features (8) and (9) of §7.1
count requested/granted/denied permissions.  The constants below are the
real Android permission names so simulated apps look like real manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DANGEROUS_PERMISSIONS",
    "NORMAL_PERMISSIONS",
    "RACKETSTORE_RUNTIME_PERMISSIONS",
    "RACKETSTORE_INSTALL_PERMISSIONS",
    "PermissionProfile",
    "sample_permission_profile",
]

#: Runtime ("dangerous") permissions, per the Android documentation.
DANGEROUS_PERMISSIONS: tuple[str, ...] = (
    "android.permission.READ_CALENDAR",
    "android.permission.WRITE_CALENDAR",
    "android.permission.CAMERA",
    "android.permission.READ_CONTACTS",
    "android.permission.WRITE_CONTACTS",
    "android.permission.GET_ACCOUNTS",
    "android.permission.ACCESS_FINE_LOCATION",
    "android.permission.ACCESS_COARSE_LOCATION",
    "android.permission.RECORD_AUDIO",
    "android.permission.READ_PHONE_STATE",
    "android.permission.CALL_PHONE",
    "android.permission.READ_CALL_LOG",
    "android.permission.WRITE_CALL_LOG",
    "android.permission.ADD_VOICEMAIL",
    "android.permission.USE_SIP",
    "android.permission.PROCESS_OUTGOING_CALLS",
    "android.permission.BODY_SENSORS",
    "android.permission.SEND_SMS",
    "android.permission.RECEIVE_SMS",
    "android.permission.READ_SMS",
    "android.permission.RECEIVE_WAP_PUSH",
    "android.permission.RECEIVE_MMS",
    "android.permission.READ_EXTERNAL_STORAGE",
    "android.permission.WRITE_EXTERNAL_STORAGE",
)

#: A representative set of install-time ("normal") permissions.
NORMAL_PERMISSIONS: tuple[str, ...] = (
    "android.permission.INTERNET",
    "android.permission.ACCESS_NETWORK_STATE",
    "android.permission.ACCESS_WIFI_STATE",
    "android.permission.BLUETOOTH",
    "android.permission.BLUETOOTH_ADMIN",
    "android.permission.VIBRATE",
    "android.permission.WAKE_LOCK",
    "android.permission.RECEIVE_BOOT_COMPLETED",
    "android.permission.FOREGROUND_SERVICE",
    "android.permission.NFC",
    "android.permission.SET_WALLPAPER",
    "android.permission.REQUEST_INSTALL_PACKAGES",
    "android.permission.CHANGE_WIFI_STATE",
    "android.permission.CHANGE_NETWORK_STATE",
    "android.permission.EXPAND_STATUS_BAR",
    "android.permission.GET_PACKAGE_SIZE",
    "android.permission.KILL_BACKGROUND_PROCESSES",
    "android.permission.READ_SYNC_SETTINGS",
    "android.permission.USE_FINGERPRINT",
    "com.google.android.c2dm.permission.RECEIVE",
)

#: The two runtime permissions the RacketStore app asks for (§3).
RACKETSTORE_RUNTIME_PERMISSIONS: tuple[str, ...] = (
    "android.permission.PACKAGE_USAGE_STATS",
    "android.permission.GET_ACCOUNTS",
)

#: Install-time permissions RacketStore uses (§3).
RACKETSTORE_INSTALL_PERMISSIONS: tuple[str, ...] = (
    "android.permission.GET_TASKS",
    "android.permission.RECEIVE_BOOT_COMPLETED",
    "android.permission.INTERNET",
    "android.permission.ACCESS_NETWORK_STATE",
    "android.permission.WAKE_LOCK",
)


@dataclass(frozen=True)
class PermissionProfile:
    """The permissions an app's manifest requests."""

    normal: tuple[str, ...] = field(default_factory=tuple)
    dangerous: tuple[str, ...] = field(default_factory=tuple)

    @property
    def total(self) -> int:
        return len(self.normal) + len(self.dangerous)

    @property
    def n_dangerous(self) -> int:
        return len(self.dangerous)

    @property
    def dangerous_ratio(self) -> float:
        return self.n_dangerous / self.total if self.total else 0.0

    def all_permissions(self) -> tuple[str, ...]:
        return self.normal + self.dangerous


def sample_permission_profile(
    rng: np.random.Generator,
    aggressive: bool = False,
) -> PermissionProfile:
    """Draw a manifest permission set.

    Figure 11 shows that "most installed apps share a similar permission
    profile across all device types", with a tail of worker-exclusive
    apps requesting many dangerous permissions.  ``aggressive`` selects
    that tail (used for a fraction of promoted/malware apps).
    """
    if aggressive:
        n_dangerous = int(rng.integers(6, len(DANGEROUS_PERMISSIONS) + 1))
        n_normal = int(rng.integers(5, len(NORMAL_PERMISSIONS) + 1))
    else:
        # Typical apps: a handful of normal permissions, 0-6 dangerous.
        n_dangerous = int(np.clip(rng.poisson(2.2), 0, 8))
        n_normal = int(np.clip(rng.poisson(4.5), 1, 12))
    dangerous = tuple(
        sorted(rng.choice(DANGEROUS_PERMISSIONS, size=n_dangerous, replace=False))
    )
    normal = tuple(sorted(rng.choice(NORMAL_PERMISSIONS, size=n_normal, replace=False)))
    return PermissionProfile(normal=normal, dangerous=dangerous)
