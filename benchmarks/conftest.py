"""Benchmark fixtures: one paper-calibrated study + pipeline per session.

Every bench regenerates one table/figure of the paper, printing a
paper-vs-measured report (bypassing pytest capture so `pytest
benchmarks/ --benchmark-only | tee ...` records them) and timing the
representative computation with pytest-benchmark.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.core import DetectionPipeline
from repro.experiments import ExperimentReport, Workbench
from repro.simulation import SimulationConfig

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    """The paper-calibrated cohort: 178 worker + 88 regular devices."""
    return Workbench(SimulationConfig(), DetectionPipeline(n_splits=10))


@pytest.fixture(scope="session")
def observations(workbench):
    return workbench.observations


@pytest.fixture(scope="session")
def pipeline_result(workbench):
    """Warm the (expensive) pipeline cache once for all classifier benches."""
    return workbench.pipeline_result


@pytest.fixture(scope="session")
def emit():
    """Write a report to benchmarks/reports/ and to the real stdout."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _emit(report: ExperimentReport) -> ExperimentReport:
        text = report.render()
        (REPORT_DIR / f"{report.experiment_id}.txt").write_text(text + "\n")
        sys.__stdout__.write("\n" + text + "\n")
        sys.__stdout__.flush()
        return report

    return _emit
