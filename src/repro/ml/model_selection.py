"""Cross-validation machinery matching the paper's protocol.

Both tables use 10-fold cross-validation; Table 1 repeats it 5 times
("repeated 10-fold cross-validation (n=5)").  Resampling (SMOTE /
over / under) is applied *inside* each fold, to the training split
only, so no synthetic point ever leaks into validation.

Fold jobs are independent, so ``cross_validate`` fans them out across
worker processes when ``n_jobs > 1``.  Determinism contract (DESIGN.md
§8): every fold's train/test indices and resampling seed are derived
*before* any fan-out, in the exact order the serial loop has always
drawn them, and fold reports are collected by submission index — the
same ``random_state`` yields byte-identical results at any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from .. import obs
from ..parallel import draw_seeds, parallel_map
from .base import check_random_state, check_X_y, clone
from .metrics import ClassificationReport, classification_report
from .sampling import RESAMPLERS

__all__ = [
    "StratifiedKFold",
    "train_test_split",
    "CrossValidationResult",
    "cross_validate",
]


def _stratified_fold_of(
    y: np.ndarray, n_splits: int, shuffle: bool, rng: np.random.Generator
) -> np.ndarray:
    """Per-sample fold assignment: per-class round-robin after an
    optional per-class shuffle, preserving class ratios in every fold.

    Operates on an already-validated label vector so repeated splits
    (e.g. one per CV repeat) never re-validate the feature matrix.
    """
    n = y.shape[0]
    fold_of = np.empty(n, dtype=np.int64)
    for label in np.unique(y):
        members = np.nonzero(y == label)[0]
        if shuffle:
            members = rng.permutation(members)
        if members.size < n_splits:
            raise ValueError(
                f"class {label!r} has {members.size} samples, fewer than "
                f"n_splits={n_splits}"
            )
        fold_of[members] = np.arange(members.size) % n_splits
    return fold_of


class StratifiedKFold:
    """Stratified k-fold splitter: per-class round-robin assignment after
    a per-class shuffle, preserving class ratios in every fold."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, random_state: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        fold_of = _stratified_fold_of(y, self.n_splits, self.shuffle, rng)
        for fold in range(self.n_splits):
            test = np.nonzero(fold_of == fold)[0]
            train = np.nonzero(fold_of != fold)[0]
            yield train, test


def train_test_split(
    X,
    y,
    test_size: float = 0.2,
    stratify: bool = True,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stratified (by default) train/test partition.

    Every class keeps at least one training sample: ``test_size``
    rounding can otherwise consume a tiny class whole (e.g. 2 samples at
    ``test_size=0.8`` rounds to 2), which would hand the estimator a
    training set missing a class.
    """
    X, y = check_X_y(X, y)
    rng = check_random_state(random_state)
    n = y.shape[0]
    test_mask = np.zeros(n, dtype=bool)
    if stratify:
        for label in np.unique(y):
            members = rng.permutation(np.nonzero(y == label)[0])
            k = min(max(1, int(round(test_size * members.size))), members.size - 1)
            test_mask[members[:k]] = True
    else:
        members = rng.permutation(n)
        k = min(max(1, int(round(test_size * n))), n - 1)
        test_mask[members[:k]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


@dataclass
class CrossValidationResult:
    """Aggregated metrics over all CV folds (and repeats)."""

    fold_reports: list[ClassificationReport] = field(default_factory=list)

    def _mean(self, attr: str) -> float:
        return float(np.mean([getattr(r, attr) for r in self.fold_reports]))

    def _std(self, attr: str) -> float:
        return float(np.std([getattr(r, attr) for r in self.fold_reports]))

    @property
    def precision(self) -> float:
        return self._mean("precision")

    @property
    def recall(self) -> float:
        return self._mean("recall")

    @property
    def f1(self) -> float:
        return self._mean("f1")

    @property
    def accuracy(self) -> float:
        return self._mean("accuracy")

    @property
    def auc(self) -> float:
        return self._mean("auc")

    @property
    def false_positive_rate(self) -> float:
        return self._mean("false_positive_rate")

    def summary(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
            "auc": self.auc,
            "fpr": self.false_positive_rate,
            "f1_std": self._std("f1"),
            "n_folds": float(len(self.fold_reports)),
        }


def _run_fold(
    estimator,
    X: np.ndarray,
    y: np.ndarray,
    train: np.ndarray,
    test: np.ndarray,
    resample: Callable | None,
    resample_seed: int | None,
    pos_label,
    model_name: str,
) -> ClassificationReport:
    """Fit/score one pre-drawn CV fold (runs in-process or in a worker)."""
    X_train, y_train = X[train], y[train]
    if resample is not None:
        X_train, y_train = resample(X_train, y_train, random_state=resample_seed)
    model = clone(estimator)
    fit_timer = obs.histogram(
        "ml_fit_seconds", {"model": model_name}, help="per-fold fit wall time"
    )
    predict_timer = obs.histogram(
        "ml_predict_seconds", {"model": model_name}, help="per-fold predict wall time"
    )
    with obs.timer(fit_timer):
        model.fit(X_train, y_train)
    with obs.timer(predict_timer):
        y_pred = model.predict(X[test])
    obs.counter("ml_folds_total", {"model": model_name}).inc()
    y_score = None
    if hasattr(model, "predict_proba"):
        proba = model.predict_proba(X[test])
        if proba.shape[1] == 2:
            positive_col = int(np.nonzero(model.classes_ == pos_label)[0][0]) if pos_label in model.classes_ else 1
            y_score = proba[:, positive_col]
    return classification_report(y[test], y_pred, y_score, pos_label=pos_label)


def cross_validate(
    estimator,
    X,
    y,
    n_splits: int = 10,
    n_repeats: int = 1,
    resample: str | Callable | None = None,
    pos_label=1,
    random_state: int | None = None,
    name: str | None = None,
    n_jobs: int | None = None,
) -> CrossValidationResult:
    """Repeated stratified k-fold CV with in-fold resampling.

    Parameters
    ----------
    estimator:
        Unfitted estimator; cloned per fold.
    resample:
        ``None``/``"none"``, ``"smote"``, ``"oversample"``,
        ``"undersample"``, or a callable ``(X, y, random_state) -> (X, y)``
        applied to each training split.
    name:
        Label for the per-fold ``ml_fit_seconds``/``ml_predict_seconds``
        timing metrics (defaults to the estimator's class name).
    n_jobs:
        Fold-level worker processes (``None`` → ``REPRO_N_JOBS`` → 1;
        ``<= 0`` → all cores).  Results are bit-identical at any worker
        count; the estimator and any ``resample`` callable must be
        picklable when ``n_jobs > 1``.
    """
    X, y = check_X_y(X, y)
    if isinstance(resample, str):
        resample = RESAMPLERS[resample]
    rng = check_random_state(random_state)
    model_name = name or type(estimator).__name__

    # Derive every fold's indices and seed *before* any fan-out, in the
    # exact order the serial loop draws them: per repeat, one split seed,
    # then (with resampling) one resample seed per fold.  X and y are
    # validated exactly once above; fold index arrays are reused instead
    # of re-running check_X_y per split.
    jobs: list[tuple] = []
    for _repeat in range(n_repeats):
        (seed,) = draw_seeds(rng, 1)
        fold_of = _stratified_fold_of(
            y, n_splits, shuffle=True, rng=check_random_state(seed)
        )
        for fold in range(n_splits):
            test = np.nonzero(fold_of == fold)[0]
            train = np.nonzero(fold_of != fold)[0]
            resample_seed = draw_seeds(rng, 1)[0] if resample is not None else None
            jobs.append(
                (estimator, X, y, train, test, resample, resample_seed,
                 pos_label, model_name)
            )

    result = CrossValidationResult()
    result.fold_reports.extend(parallel_map(_run_fold, jobs, n_jobs=n_jobs))
    return result
