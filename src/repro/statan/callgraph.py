"""Approximate static call graph over the indexed project.

One directed edge per (caller function, callee function) pair the
resolver can see, with the first call site kept for reporting.  The
resolver follows, in order of confidence:

1. **Locals** — calls to nested ``def``s of the current function;
2. **Module scope** — bare names bound by a module-level ``def`` in the
   same module;
3. **Imports** — names resolved through the module's import-alias table
   and matched against the symbol table by dotted suffix;
4. **Self dispatch** — ``self.m()`` against the enclosing class, then
   one level of base classes;
5. **Typed locals** — ``x = SomeClass(...)`` / ``x: SomeClass`` followed
   by ``x.m()``;
6. **By-name method dispatch** — any remaining ``obj.m()`` connects to
   *every* indexed method named ``m`` (deliberate over-approximation so
   taint survives duck typing; precision notes in DESIGN.md §10).

Known-unsound (documented, fixture-tested): callables stored in
containers (``table["k"]()``), ``getattr`` dispatch, decorators that
swap the wrapped function for another callable, and ``*args``
forwarding.  These produce *no* edge — the taint pass under-approximates
there rather than guessing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .symbols import ClassInfo, FunctionInfo, SymbolTable

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .engine import ModuleContext

__all__ = ["CallSite", "CallGraph"]


class CallSite:
    """First observed call expression for one caller→callee edge."""

    __slots__ = ("caller", "callee", "line", "col")

    def __init__(self, caller: str, callee: str, line: int, col: int) -> None:
        self.caller = caller
        self.callee = callee
        self.line = line
        self.col = col


def _body_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s or
    classes (those are separate symbols); lambda bodies stay with the
    enclosing function."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class CallGraph:
    """Adjacency over function qualnames, plus reverse edges for taint."""

    def __init__(self) -> None:
        #: caller -> {callee -> CallSite}
        self.edges: dict[str, dict[str, CallSite]] = {}
        self.reverse: dict[str, set[str]] = {}
        self.n_edges = 0

    # -- construction -------------------------------------------------------
    @classmethod
    def build(
        cls, symbols: SymbolTable, modules: dict[str, "ModuleContext"]
    ) -> "CallGraph":
        graph = cls()
        for info in symbols.iter_functions():
            ctx = modules.get(info.path)
            if ctx is None:
                continue
            graph._add_function(symbols, ctx, info)
        return graph

    def _add_edge(self, caller: str, callee: str, node: ast.AST) -> None:
        sites = self.edges.setdefault(caller, {})
        if callee not in sites:
            sites[callee] = CallSite(
                caller,
                callee,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
            )
            self.reverse.setdefault(callee, set()).add(caller)
            self.n_edges += 1

    def _add_function(
        self, symbols: SymbolTable, ctx: "ModuleContext", info: FunctionInfo
    ) -> None:
        local_types = self._infer_local_types(symbols, ctx, info)
        for node in _body_walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in self._resolve_call(symbols, ctx, info, node, local_types):
                self._add_edge(info.qualname, callee, node)

    def _infer_local_types(
        self, symbols: SymbolTable, ctx: "ModuleContext", info: FunctionInfo
    ) -> dict[str, ClassInfo]:
        """Map local variable names to indexed classes where obvious:
        ``x = SomeClass(...)`` and ``x: SomeClass`` (parameter or
        annotated assignment)."""
        types: dict[str, ClassInfo] = {}

        def class_for(expr: ast.AST | None) -> ClassInfo | None:
            if expr is None:
                return None
            if isinstance(expr, ast.Name):
                resolved = ctx.imports.get(expr.id, expr.id)
                return symbols.resolve_class(ctx.module, resolved)
            if isinstance(expr, ast.Attribute):
                resolved = ctx.resolve(expr)
                if resolved is None:
                    return None
                return symbols.resolve_class(ctx.module, resolved.split(".")[-1])
            return None

        args = info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            klass = class_for(arg.annotation)
            if klass is not None:
                types[arg.arg] = klass
        for node in _body_walk(info.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                klass = class_for(node.value.func)
                if klass is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = klass
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                klass = class_for(node.annotation)
                if klass is not None:
                    types[node.target.id] = klass
        return types

    def _resolve_call(
        self,
        symbols: SymbolTable,
        ctx: "ModuleContext",
        info: FunctionInfo,
        call: ast.Call,
        local_types: dict[str, ClassInfo],
    ) -> list[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(symbols, ctx, info, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(symbols, ctx, info, func, local_types)
        return []

    def _resolve_name_call(
        self, symbols: SymbolTable, ctx: "ModuleContext", info: FunctionInfo, name: str
    ) -> list[str]:
        nested = f"{info.qualname}.<locals>.{name}"
        if nested in symbols.functions:
            return [nested]
        local = symbols.module_functions.get((ctx.module, name))
        if local:
            return [local]
        local_class = symbols.module_classes.get((ctx.module, name))
        if local_class:
            init = symbols.classes[local_class].methods.get("__init__")
            return [init] if init else []
        imported = ctx.imports.get(name)
        if imported:
            return symbols.resolve_dotted(imported)
        return []

    def _resolve_attribute_call(
        self,
        symbols: SymbolTable,
        ctx: "ModuleContext",
        info: FunctionInfo,
        func: ast.Attribute,
        local_types: dict[str, ClassInfo],
    ) -> list[str]:
        # self.m() -> own class, then one level of bases.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and info.class_name is not None
        ):
            own = symbols.resolve_class(ctx.module, info.class_name)
            if own is not None:
                method = symbols.method_on(own, func.attr)
                if method:
                    return [method]
        # x.m() where x was constructed/annotated from an indexed class.
        if isinstance(func.value, ast.Name):
            klass = local_types.get(func.value.id)
            if klass is not None:
                method = symbols.method_on(klass, func.attr)
                if method:
                    return [method]
        # helpers.jitter() / pkg.Class.method() through the import table.
        resolved = ctx.resolve(func)
        if resolved:
            hits = symbols.resolve_dotted(resolved)
            if hits:
                return hits
        # Fall back to by-name dispatch across every indexed method.
        return list(symbols.methods_by_name.get(func.attr, ()))

    # -- queries ------------------------------------------------------------
    def callees(self, caller: str) -> list[CallSite]:
        sites = self.edges.get(caller, {})
        return [sites[callee] for callee in sorted(sites)]

    def reachable_from(self, sinks: set[str]) -> dict[str, str]:
        """Reverse reachability: function -> witness next hop toward a
        sink (sinks map to themselves).  Deterministic: sinks and
        adjacency are processed in sorted order, first assignment wins.
        """
        witness: dict[str, str] = {q: q for q in sorted(sinks)}
        frontier = sorted(sinks)
        while frontier:
            next_frontier: list[str] = []
            for callee in frontier:
                for caller in sorted(self.reverse.get(callee, ())):
                    if caller not in witness:
                        witness[caller] = callee
                        next_frontier.append(caller)
            frontier = sorted(next_frontier)
        return witness

    def chain(self, start: str, witness: dict[str, str]) -> list[str]:
        """Follow witness hops from ``start`` to the sink it reaches."""
        path = [start]
        seen = {start}
        current = start
        while witness.get(current, current) != current:
            current = witness[current]
            if current in seen:  # pragma: no cover - cycle safety
                break
            seen.add(current)
            path.append(current)
        return path
