"""Tests for permutation importance and grid search."""

import numpy as np
import pytest

from repro.ml import KNeighborsClassifier, LogisticRegression, RandomForestClassifier
from repro.ml.inspection import permutation_importance
from repro.ml.tuning import grid_search


class TestPermutationImportance:
    def test_signal_feature_ranked_first(self, rng):
        signal = rng.normal(0, 1, 400)
        noise = rng.normal(0, 1, (400, 3))
        X = np.column_stack([noise[:, 0], signal, noise[:, 1:]])
        y = (signal > 0).astype(int)
        model = RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=3, random_state=0)
        assert int(np.argmax(result.importances_mean)) == 1

    def test_noise_features_near_zero(self, rng):
        signal = rng.normal(0, 1, 300)
        X = np.column_stack([signal, rng.normal(0, 1, 300)])
        y = (signal > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=5, random_state=0)
        assert abs(result.importances_mean[1]) < 0.1
        assert result.importances_mean[0] > 0.2

    def test_ranking_helper(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=2, random_state=0)
        ranking = result.ranking([f"f{i}" for i in range(X.shape[1])])
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_baseline_score_recorded(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        result = permutation_importance(model, X, y, random_state=0)
        assert 0.9 <= result.baseline_score <= 1.0

    def test_custom_scorer(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        result = permutation_importance(
            model, X, y,
            scorer=lambda m, X_, y_: float(np.mean(m.predict(X_) == y_)),
            n_repeats=2, random_state=0,
        )
        assert result.importances_mean.shape == (X.shape[1],)


class TestGridSearch:
    def test_knn_k_sweep_structure(self, blobs):
        """The paper's 'KNN achieved best performance for K = 5' sweep."""
        X, y = blobs
        result = grid_search(
            KNeighborsClassifier(),
            {"n_neighbors": [1, 5, 25]},
            X, y, n_splits=4, random_state=0,
        )
        assert len(result.entries) == 3
        f1s = [cv.f1 for _, cv in result.entries]
        assert f1s == sorted(f1s, reverse=True)
        assert result.best_params["n_neighbors"] in (1, 5, 25)

    def test_multi_parameter_grid(self, blobs):
        X, y = blobs
        result = grid_search(
            LogisticRegression(),
            {"C": [0.1, 1.0], "max_iter": [20, 100]},
            X, y, n_splits=3, random_state=0,
        )
        assert len(result.entries) == 4
        assert set(result.best_params) == {"C", "max_iter"}

    def test_best_result_matches_best_params(self, blobs):
        X, y = blobs
        result = grid_search(
            LogisticRegression(), {"C": [0.01, 10.0]}, X, y, n_splits=3, random_state=0
        )
        assert result.best_result.f1 == max(cv.f1 for _, cv in result.entries)

    def test_table_rendering(self, blobs):
        X, y = blobs
        result = grid_search(
            LogisticRegression(), {"C": [1.0]}, X, y, n_splits=3, random_state=0
        )
        table = result.table()
        assert table[0][0] == "C=1.0"
