"""Random Forest classifier (bagged CART trees with feature subsampling).

Used for the "RF" rows of Tables 1 and 2, and — because the paper measures
variable importance by *mean decrease in Gini* [Breiman 2001] — as the
importance estimator behind Figures 13 and 14.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_random_state, check_X_y
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap-aggregated CART trees.

    Parameters mirror the usual conventions: ``n_estimators`` trees, each
    fit on a bootstrap sample with ``max_features`` features considered
    per split (default ``"sqrt"``).  ``feature_importances_`` averages the
    per-tree mean decrease in Gini, matching the measure in Figs. 13/14.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)
        n = X.shape[0]

        self.estimators_: list[DecisionTreeClassifier] = []
        self._oob_votes = np.zeros((n, len(self.classes_)), dtype=np.float64)
        self._oob_counts = np.zeros(n, dtype=np.int64)
        self._oob_truth = encoded
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            # Fit on encoded labels so every tree shares the class space
            # even if a bootstrap sample misses a class.
            tree.fit(X[sample], encoded[sample], sample_classes=len(self.classes_))
            self.estimators_.append(tree)
            if self.bootstrap:
                oob = np.setdiff1d(np.arange(n), np.unique(sample))
                if oob.size:
                    self._oob_votes[oob] += tree.predict_proba(X[oob])
                    self._oob_counts[oob] += 1
        return self

    def predict_proba(self, X) -> np.ndarray:
        X = check_array(X)
        proba = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for tree in self.estimators_:
            proba += tree.predict_proba(X)
        return proba / len(self.estimators_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Forest-averaged mean decrease in Gini, normalised to sum to 1."""
        total = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.estimators_:
            total += tree.feature_importances_
        total /= len(self.estimators_)
        s = total.sum()
        return total / s if s else total

    def oob_score(self) -> float:
        """Out-of-bag accuracy over samples that were left out at least once."""
        seen = self._oob_counts > 0
        if not seen.any():
            raise RuntimeError("no out-of-bag samples; was bootstrap=False?")
        votes = np.argmax(self._oob_votes[seen], axis=1)
        return float(np.mean(votes == self._oob_truth[seen]))
