"""Keyword-search rank model for the simulated Play Store.

§2 of the paper: "Some of the factors with most impact on search rank
are the number of installs and reviews, and the aggregate rating of the
app" and developers "need to achieve top-5 rank in keyword searches".
This module scores apps on those factors so the simulation (and the
evasion-cost example) can quantify what an ASO campaign buys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .catalog import App, Catalog

__all__ = ["RankWeights", "SearchRankModel", "RankedApp"]


@dataclass(frozen=True)
class RankWeights:
    """Relative weight of each ranking factor (log-scaled counts)."""

    installs: float = 1.0
    reviews: float = 0.8
    rating: float = 1.5
    relevance: float = 2.0


@dataclass(frozen=True)
class RankedApp:
    package: str
    score: float
    rank: int


class SearchRankModel:
    """Deterministic search scoring over the catalog.

    ``score = w_i * log1p(installs) + w_r * log1p(reviews)
            + w_s * rating + w_k * keyword_relevance``

    Keyword relevance is a crude token match on title/package — enough
    to make campaigns for a target keyword move an app up its result
    list, which is the effect ASO buys.
    """

    def __init__(self, catalog: Catalog, weights: RankWeights | None = None) -> None:
        self._catalog = catalog
        self.weights = weights or RankWeights()
        # keyword -> (catalog version, relevance array over hosted apps).
        # Relevance depends only on static listing text, so entries stay
        # valid until the catalog mutates.
        self._relevance_cache: dict[str, tuple[int, np.ndarray]] = {}

    def score(self, app: App, keyword: str | None = None) -> float:
        w = self.weights
        base = (
            w.installs * math.log1p(max(app.install_count, 0))
            + w.reviews * math.log1p(max(app.review_count, 0))
            + w.rating * app.aggregate_rating
        )
        if keyword:
            base += w.relevance * self._relevance(app, keyword)
        return base

    @staticmethod
    def _relevance(app: App, keyword: str) -> float:
        keyword = keyword.lower()
        title_tokens = app.title.lower().split()
        if keyword in title_tokens:
            return 2.0
        if keyword in app.title.lower() or keyword in app.package.lower():
            return 1.0
        if keyword == app.category.lower():
            return 0.5
        return 0.0

    def search(self, keyword: str, top: int = 10) -> list[RankedApp]:
        """Top-``top`` Play-hosted apps for a keyword query."""
        scored = [
            (self.score(app, keyword), app.package)
            for app in self._catalog.hosted_on_play()
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [
            RankedApp(package=package, score=score, rank=i + 1)
            for i, (score, package) in enumerate(scored[:top])
        ]

    def rank_of(self, package: str, keyword: str) -> int:
        """1-based rank of ``package`` among all Play apps for a keyword."""
        target = self._catalog.get(package)
        target_key = (-self.score(target, keyword), package)
        better = 0
        for app in self._catalog.hosted_on_play():
            key = (-self.score(app, keyword), app.package)
            if key < target_key:
                better += 1
        return better + 1

    def _relevance_array(self, keyword: str, hosted: list[App]) -> np.ndarray:
        version = getattr(self._catalog, "version", None)
        cached = self._relevance_cache.get(keyword)
        if cached is not None and version is not None and cached[0] == version:
            return cached[1]
        relevance = np.fromiter(
            (self._relevance(app, keyword) for app in hosted),
            dtype=np.float64,
            count=len(hosted),
        )
        if version is not None:
            self._relevance_cache[keyword] = (version, relevance)
        return relevance

    def ranks_for(
        self,
        pairs: list[tuple[str, str]],
        boosts: dict[str, tuple[int, int]] | None = None,
    ) -> dict[tuple[str, str], int]:
        """Ranks for many (package, keyword) pairs in one catalog pass.

        Equivalent to calling :meth:`rank_of` per pair (same float
        expression term order, same ``(-score, package)`` tie-break)
        but one vectorized score pass per distinct keyword, which is
        what lets the rank tracker sample every campaign daily.

        ``boosts`` overlays per-package (extra installs, extra reviews)
        on top of the catalog counts — the commit phase's view of what
        ASO delivery has added so far without mutating the catalog.
        """
        hosted = self._catalog.hosted_on_play()
        if not hosted or not pairs:
            return {}
        w = self.weights
        packages = np.array([app.package for app in hosted])
        installs = np.fromiter(
            (max(app.install_count, 0) for app in hosted), np.float64, len(hosted)
        )
        reviews = np.fromiter(
            (max(app.review_count, 0) for app in hosted), np.float64, len(hosted)
        )
        rating = np.fromiter(
            (app.aggregate_rating for app in hosted), np.float64, len(hosted)
        )
        if boosts:
            index = {app.package: i for i, app in enumerate(hosted)}
            for package in sorted(boosts):
                i = index.get(package)
                if i is None:
                    continue
                extra_installs, extra_reviews = boosts[package]
                installs[i] += extra_installs
                reviews[i] += extra_reviews
        base = (
            w.installs * np.log1p(installs)
            + w.reviews * np.log1p(reviews)
            + w.rating * rating
        )
        position = {app.package: i for i, app in enumerate(hosted)}
        by_keyword: dict[str, list[str]] = {}
        for package, keyword in pairs:
            by_keyword.setdefault(keyword, []).append(package)
        out: dict[tuple[str, str], int] = {}
        for keyword in sorted(by_keyword):
            scores = base + w.relevance * self._relevance_array(keyword, hosted)
            for package in by_keyword[keyword]:
                i = position[package]
                target = scores[i]
                better = int(np.count_nonzero(scores > target))
                ties_before = int(
                    np.count_nonzero((scores == target) & (packages < package))
                )
                out[(package, keyword)] = better + ties_before + 1
        return out
