"""Bench: Figure 15 — app suspiciousness vs reviewed apps; the organic /
promotion-only worker-device split."""

import numpy as np

from repro.core.pipeline import DetectionPipeline
from repro.experiments import run_experiment


def test_fig15_suspiciousness(benchmark, workbench, pipeline_result, emit):
    worker_obs = [o for o in pipeline_result.observations if o.is_worker][:20]
    benchmark.pedantic(
        DetectionPipeline.score_devices,
        args=(workbench.data, worker_obs, pipeline_result.app_model),
        rounds=1,
        iterations=1,
    )
    report = emit(run_experiment("fig15", workbench))
    total = report.metrics["organic"] + report.metrics["dedicated"]
    # Paper: 123/178 = 69.1% organic-indicative, 55 promotion-only.
    assert 0.5 <= report.metrics["organic_fraction"] <= 0.9
    assert report.metrics["dedicated"] >= 0.1 * total
    # Even low-suspiciousness (novice) workers get detected.
    assert report.metrics["workers_detected_fraction"] >= 0.9
