"""Upload-path error signals shared by buffer, server and fault plane.

This is a leaf module: both :mod:`repro.platform.buffer` (the client
retry loop) and :mod:`repro.faults` (the injection plane) need the same
exception taxonomy, and neither may import the other.
"""

from __future__ import annotations

__all__ = ["Throttled", "UploadError"]


class UploadError(Exception):
    """A chunk upload failed server-side before an acknowledgement was
    produced.  The client keeps the chunk queued and retransmits; the
    server's dedup window makes the retransmission safe."""


class Throttled(UploadError):
    """Server-directed backpressure (HTTP 429 semantics).

    The client must open its circuit breaker and retry no sooner than
    ``retry_after`` seconds of virtual time from now.
    """

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"throttled; retry after {retry_after:g}s")
        self.retry_after = float(retry_after)
