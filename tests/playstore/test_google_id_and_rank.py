"""Tests for the Google-ID crawler and the search-rank model."""

import numpy as np
import pytest

from repro.playstore.catalog import Catalog
from repro.playstore.google_id import GmailDirectory, GoogleIdCrawler
from repro.playstore.rank import RankWeights, SearchRankModel


class TestGmailDirectory:
    def test_register_and_resolve(self):
        directory = GmailDirectory()
        gid = directory.register("worker1@gmail.com")
        assert directory.resolve("worker1@gmail.com") == gid
        assert len(gid) == 21 and gid.isdigit()

    def test_register_idempotent(self):
        directory = GmailDirectory()
        a = directory.register("x@gmail.com")
        b = directory.register("x@gmail.com")
        assert a == b and len(directory) == 1

    def test_distinct_emails_distinct_ids(self):
        directory = GmailDirectory()
        ids = {directory.register(f"user{i}@gmail.com") for i in range(100)}
        assert len(ids) == 100

    def test_non_gmail_rejected(self):
        with pytest.raises(ValueError):
            GmailDirectory().register("user@yahoo.com")

    def test_suspension_hides_account(self):
        directory = GmailDirectory()
        directory.register("bad@gmail.com")
        directory.suspend("bad@gmail.com")
        assert directory.resolve("bad@gmail.com") is None
        assert directory.is_suspended("bad@gmail.com")

    def test_suspend_unknown_raises(self):
        with pytest.raises(KeyError):
            GmailDirectory().suspend("ghost@gmail.com")


class TestGoogleIdCrawler:
    def test_lookup_hit_and_miss(self):
        directory = GmailDirectory()
        directory.register("a@gmail.com")
        crawler = GoogleIdCrawler(directory)
        assert crawler.lookup("a@gmail.com") is not None
        assert crawler.lookup("nobody@gmail.com") is None
        assert crawler.stats.hits == 1 and crawler.stats.misses == 1

    def test_cache_avoids_repeat_requests(self):
        directory = GmailDirectory()
        directory.register("a@gmail.com")
        crawler = GoogleIdCrawler(directory)
        crawler.lookup("a@gmail.com")
        crawler.lookup("a@gmail.com")
        assert crawler.stats.requests == 1
        assert crawler.stats.cached == 1

    def test_lookup_many_filters_failures(self):
        directory = GmailDirectory()
        directory.register("a@gmail.com")
        crawler = GoogleIdCrawler(directory)
        result = crawler.lookup_many(["a@gmail.com", "b@gmail.com"])
        assert set(result) == {"a@gmail.com"}


class TestSearchRank:
    @pytest.fixture()
    def catalog(self, rng):
        catalog = Catalog(rng)
        for _ in range(30):
            catalog.add_popular_app()
        return catalog

    def test_more_installs_never_hurt_rank(self, catalog):
        model = SearchRankModel(catalog)
        app = catalog.add_promoted_app()
        keyword = app.title.split()[0].lower()
        before = model.rank_of(app.package, keyword)
        catalog.update(app.with_counts(app.install_count * 1000 + 10**7,
                                       app.review_count + 50_000, 4.9))
        after = model.rank_of(app.package, keyword)
        assert after <= before

    def test_search_returns_sorted_ranks(self, catalog):
        model = SearchRankModel(catalog)
        results = model.search("photo", top=10)
        assert [r.rank for r in results] == list(range(1, len(results) + 1))
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_keyword_relevance_boosts_matching_titles(self, catalog):
        model = SearchRankModel(catalog)
        app = catalog.add_popular_app()
        keyword = app.title.split()[0].lower()
        with_kw = model.score(app, keyword)
        without = model.score(app, "zzzzz")
        assert with_kw > without

    def test_third_party_apps_unranked(self, catalog):
        model = SearchRankModel(catalog)
        side_loaded = catalog.add_third_party_app()
        packages = {r.package for r in model.search("mod", top=1000)}
        assert side_loaded.package not in packages

    def test_custom_weights(self, catalog):
        app = catalog.add_popular_app()
        rating_heavy = SearchRankModel(catalog, RankWeights(installs=0, reviews=0, rating=10, relevance=0))
        assert rating_heavy.score(app) == pytest.approx(10 * app.aggregate_rating)
