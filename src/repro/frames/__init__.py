"""``repro.frames`` — the typed columnar data plane.

The server ingests snapshot records as dicts; at paper scale (58.3M
snapshots, §3) a dict-per-document store and per-row feature loops are
the dominant cost of everything §6–§8 computes.  This package declares
the record schemas for the snapshot families the platform handles and
provides :class:`ColumnFrame`, a struct-of-arrays container built on
numpy: documents append into per-field columns, queries compile to
vectorized boolean masks (:mod:`repro.frames.query`), and analyses read
zero-copy :class:`FrameRow` mapping views instead of materialized dicts.

The hard contract of the data plane (DESIGN.md §9): every consumer —
feature matrices, labels, experiment reports — must be byte-identical
whether it runs over dicts or over frames.
"""

from .frame import ColumnFrame, ColumnRun, FrameRow
from .query import QUERY_OPERATORS, QueryPlan, compile_plan, mask_for, plan_key
from .schema import (
    APP_CHANGE_SCHEMA,
    FAST_RUN_SCHEMA,
    INITIAL_SCHEMA,
    INSTALL_SCHEMA,
    REVIEW_SCHEMA,
    SCHEMA_BY_COLLECTION,
    SLOW_RUN_SCHEMA,
    Field,
    RecordSchema,
)

__all__ = [
    "ColumnFrame",
    "ColumnRun",
    "FrameRow",
    "mask_for",
    "compile_plan",
    "plan_key",
    "QueryPlan",
    "QUERY_OPERATORS",
    "Field",
    "RecordSchema",
    "SLOW_RUN_SCHEMA",
    "FAST_RUN_SCHEMA",
    "APP_CHANGE_SCHEMA",
    "INITIAL_SCHEMA",
    "INSTALL_SCHEMA",
    "REVIEW_SCHEMA",
    "SCHEMA_BY_COLLECTION",
]
