"""Interprocedural determinism taint (the DET004 substrate).

A function is a **sink** when the per-file determinism rules (DET001
unseeded randomness, DET002 wall clock, DET003 unordered iteration)
fire inside its body — the same detectors, so per-file and project
verdicts can never disagree about what counts as nondeterministic.
Suppressed sink lines (``# statan: disable=``) are reviewed code and do
not taint; exempt packages (``obs``) stay exempt for the same reason.

Taint then propagates backwards over the approximate call graph: every
function that can reach a sink is tainted, and for each tainted
function we keep a *witness* next hop so DET004 can print the concrete
call chain down to the offending line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .findings import Finding
from .rules import get_rule

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .project import ProjectContext

__all__ = ["SINK_RULES", "ENTRY_PACKAGES", "TaintAnalysis", "Sink"]

#: Per-file rules whose findings make the enclosing function a sink.
SINK_RULES = ("DET001", "DET002", "DET003")

#: Packages whose functions are determinism entry points: anything here
#: that reaches a sink breaks the seeded-run contract (ROADMAP standing
#: invariants).
ENTRY_PACKAGES = frozenset(
    {"simulation", "ml", "analysis", "experiments", "statstests", "core", "playstore"}
)


@dataclass(frozen=True)
class Sink:
    """One direct nondeterminism site attributed to a function."""

    qualname: str
    rule: str
    path: str
    line: int
    snippet: str


class TaintAnalysis:
    """Sinks plus reverse reachability over the project call graph."""

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        #: function qualname -> its direct sinks, in (path, line) order.
        self.sinks_by_function: dict[str, list[Sink]] = {}
        self._collect_sinks()
        #: tainted function -> witness next hop toward a sink.
        self.witness = project.callgraph.reachable_from(
            set(self.sinks_by_function)
        )

    def _collect_sinks(self) -> None:
        for ctx in self.project.modules:
            findings: list[Finding] = []
            for rule_id in SINK_RULES:
                findings.extend(get_rule(rule_id).check(ctx))
            for finding in sorted(findings, key=Finding.sort_key):
                if self.project.is_suppressed(finding):
                    continue
                info = self.project.symbols.function_at(ctx.path, finding.line)
                if info is None:
                    # Module-level sinks have no caller to taint.
                    continue
                self.sinks_by_function.setdefault(info.qualname, []).append(
                    Sink(
                        qualname=info.qualname,
                        rule=finding.rule,
                        path=ctx.path,
                        line=finding.line,
                        snippet=finding.snippet,
                    )
                )

    # -- queries ------------------------------------------------------------
    def is_sink(self, qualname: str) -> bool:
        return qualname in self.sinks_by_function

    def is_tainted(self, qualname: str) -> bool:
        return qualname in self.witness

    def chain_to_sink(self, start: str) -> tuple[list[str], Sink] | None:
        """Call chain ``start -> ... -> sink function`` plus the sink's
        first direct nondeterminism site, or None when ``start`` is
        clean."""
        if start not in self.witness:
            return None
        chain = self.project.callgraph.chain(start, self.witness)
        sink_fn = chain[-1]
        sinks = self.sinks_by_function.get(sink_fn)
        if not sinks:  # pragma: no cover - witness always ends at a sink
            return None
        return chain, sinks[0]
