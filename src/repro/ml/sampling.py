"""Class-imbalance resampling: SMOTE, random over- and under-sampling.

The paper's datasets are heavily imbalanced (2,994 suspicious vs 345
regular app instances; 178 worker vs 88 regular devices).  Section 7.2
evaluates random under/over-sampling and §8.2 "oversample[s] the
minority class using the SMOTE algorithm [Chawla et al. 2002]"; all
three strategies are implemented here.
"""

from __future__ import annotations

import numpy as np

from .base import check_random_state, check_X_y

__all__ = [
    "smote",
    "random_oversample",
    "random_undersample",
    "class_counts",
]


def class_counts(y: np.ndarray) -> dict:
    """Label -> count mapping."""
    labels, counts = np.unique(np.asarray(y), return_counts=True)
    return dict(zip(labels.tolist(), counts.tolist()))


def _majority_minority(y: np.ndarray) -> tuple[object, object]:
    counts = class_counts(y)
    if len(counts) != 2:
        raise ValueError(f"resampling expects exactly 2 classes, got {sorted(counts)}")
    ordered = sorted(counts.items(), key=lambda item: item[1])
    return ordered[1][0], ordered[0][0]  # (majority, minority)


def smote(
    X,
    y,
    k_neighbors: int = 5,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic Minority Over-sampling TEchnique (Chawla et al., 2002).

    New minority samples are convex combinations ``x + u * (neighbor - x)``
    with ``u ~ U(0, 1)`` and the neighbour drawn from the k nearest
    minority points.  Balances the minority class up to the majority size.
    """
    X, y = check_X_y(X, y)
    rng = check_random_state(random_state)
    majority, minority = _majority_minority(y)
    minority_rows = X[y == minority]
    deficit = int(np.sum(y == majority) - np.sum(y == minority))
    if deficit <= 0:
        return X.copy(), y.copy()

    n_min = minority_rows.shape[0]
    if n_min == 1:
        # Degenerate: duplicate the lone minority point.
        synthetic = np.repeat(minority_rows, deficit, axis=0)
    else:
        k = min(k_neighbors, n_min - 1)
        d2 = (
            np.sum(minority_rows**2, axis=1)[:, None]
            - 2.0 * minority_rows @ minority_rows.T
            + np.sum(minority_rows**2, axis=1)[None, :]
        )
        np.fill_diagonal(d2, np.inf)
        neighbor_ids = np.argsort(d2, axis=1)[:, :k]

        base = rng.integers(0, n_min, size=deficit)
        pick = rng.integers(0, k, size=deficit)
        neighbors = neighbor_ids[base, pick]
        gaps = rng.random((deficit, 1))
        synthetic = minority_rows[base] + gaps * (
            minority_rows[neighbors] - minority_rows[base]
        )

    X_out = np.vstack([X, synthetic])
    y_out = np.concatenate([y, np.full(deficit, minority, dtype=y.dtype)])
    return X_out, y_out


def random_oversample(
    X, y, random_state: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Duplicate random minority samples until the classes are balanced."""
    X, y = check_X_y(X, y)
    rng = check_random_state(random_state)
    majority, minority = _majority_minority(y)
    minority_idx = np.nonzero(y == minority)[0]
    deficit = int(np.sum(y == majority) - minority_idx.size)
    if deficit <= 0:
        return X.copy(), y.copy()
    extra = rng.choice(minority_idx, size=deficit, replace=True)
    X_out = np.vstack([X, X[extra]])
    y_out = np.concatenate([y, y[extra]])
    return X_out, y_out


def random_undersample(
    X, y, random_state: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Drop random majority samples until the classes are balanced."""
    X, y = check_X_y(X, y)
    rng = check_random_state(random_state)
    majority, minority = _majority_minority(y)
    majority_idx = np.nonzero(y == majority)[0]
    minority_idx = np.nonzero(y == minority)[0]
    kept = rng.choice(majority_idx, size=minority_idx.size, replace=False)
    keep = np.sort(np.concatenate([kept, minority_idx]))
    return X[keep], y[keep]


RESAMPLERS = {
    "none": None,
    "smote": smote,
    "oversample": random_oversample,
    "undersample": random_undersample,
}
