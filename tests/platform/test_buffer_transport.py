"""Tests for the data buffer and the hash-acknowledged transfer protocol."""

import gzip
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.buffer import DataBuffer, chunk_hash
from repro.platform.models import FastSnapshotRun, record_from_dict
from repro.platform.transport import LossyTransport, Transport


class Receiver:
    """Minimal server double: stores chunks, acks with their hash."""

    def __init__(self):
        self.chunks: list[tuple[str, bytes]] = []

    def receive_chunk(self, kind: str, data: bytes) -> str:
        self.chunks.append((kind, data))
        return chunk_hash(data)

    def records(self):
        out = []
        for _kind, data in self.chunks:
            for line in gzip.decompress(data).decode().splitlines():
                out.append(record_from_dict(json.loads(line)))
        return out


def fast_run(i: int) -> FastSnapshotRun:
    return FastSnapshotRun(
        install_id="inst",
        participant_id="100001",
        start=float(i),
        end=float(i) + 60.0,
        period=5.0,
        foreground=f"com.app{i}",
        screen_on=True,
        battery=0.9,
    )


class TestDataBuffer:
    def test_no_chunk_before_threshold(self):
        buffer = DataBuffer(fast_threshold_bytes=10**6)
        buffer.append("fast", fast_run(0))
        assert buffer.pending_chunks == 0

    def test_seal_on_threshold(self):
        buffer = DataBuffer(fast_threshold_bytes=200)
        buffer.append("fast", fast_run(0))
        buffer.append("fast", fast_run(1))
        assert buffer.pending_chunks >= 1

    def test_seal_all_flushes_partial(self):
        buffer = DataBuffer()
        buffer.append("fast", fast_run(0))
        buffer.append("slow", fast_run(1))  # kind routing only
        buffer.seal_all()
        assert buffer.pending_chunks == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DataBuffer().append("medium", fast_run(0))

    def test_roundtrip_through_reliable_transport(self):
        receiver = Receiver()
        transport = Transport(receiver)
        buffer = DataBuffer()
        originals = [fast_run(i) for i in range(5)]
        for record in originals:
            buffer.append("fast", record)
        buffer.seal_all()
        delivered = buffer.flush(transport)
        assert delivered == 5
        assert buffer.pending_chunks == 0
        assert receiver.records() == originals

    def test_chunks_deleted_only_after_hash_match(self):
        receiver = Receiver()
        buffer = DataBuffer()
        buffer.append("fast", fast_run(0))
        buffer.seal_all()

        class WrongAck:
            def send(self, kind, data):
                return "bogus-hash"

        buffer.flush(WrongAck())
        assert buffer.pending_chunks == 1  # kept for retransmission
        buffer.flush(Transport(receiver))
        assert buffer.pending_chunks == 0

    def test_retransmission_over_lossy_channel(self):
        receiver = Receiver()
        transport = LossyTransport(
            receiver, loss_probability=0.9, rng=np.random.default_rng(1)
        )
        buffer = DataBuffer()
        for i in range(4):
            buffer.append("fast", fast_run(i))
        buffer.seal_all()
        for _ in range(20):  # keep flushing until everything lands
            buffer.flush(transport)
            if buffer.pending_chunks == 0:
                break
        assert buffer.pending_chunks == 0
        assert len(receiver.records()) == 4
        assert buffer.retransmissions > 0

    def test_corruption_detected_by_hash(self):
        receiver = Receiver()
        transport = LossyTransport(
            receiver, corruption_probability=1.0, rng=np.random.default_rng(0)
        )
        buffer = DataBuffer()
        buffer.append("fast", fast_run(0))
        buffer.seal_all()
        sealed_hash = buffer._pending[0].sha256
        buffer.flush(transport)
        # The corrupted bytes really reach the server — that is the whole
        # point of hash acknowledgement — but the ack they produce can
        # never match the sealed chunk, so the chunk is kept for
        # retransmission.
        assert buffer.pending_chunks == 1
        assert len(receiver.chunks) == 1
        (_kind, stored), = receiver.chunks
        assert chunk_hash(stored) != sealed_hash

class TestBackoffScheduling:
    """The virtual-clock retry scheduler (no wall clock, no sleeping)."""

    @staticmethod
    def _sealed_buffer(**kwargs) -> DataBuffer:
        buffer = DataBuffer(**kwargs)
        buffer.append("fast", fast_run(0))
        buffer.seal_all()
        return buffer

    class Blackhole:
        """Transport that loses everything (no ack, ever)."""

        def __init__(self):
            self.sends = 0

        def send(self, kind, data):
            self.sends += 1
            return None

    def test_failed_chunk_is_backed_off_not_hammered(self):
        from repro.platform.buffer import BACKOFF_BASE_S

        buffer = self._sealed_buffer()
        hole = self.Blackhole()
        buffer.flush(hole, 0.0)
        chunk = buffer._pending[0]
        assert chunk.attempts == 1
        assert chunk.next_attempt_at == BACKOFF_BASE_S
        # A pass before the retry comes due must not touch the transport.
        buffer.flush(hole, BACKOFF_BASE_S / 2)
        assert hole.sends == 1
        buffer.flush(hole, BACKOFF_BASE_S)
        assert hole.sends == 2

    def test_backoff_doubles_and_caps(self):
        from repro.platform.buffer import BACKOFF_BASE_S, BACKOFF_CAP_S

        buffer = self._sealed_buffer()
        hole = self.Blackhole()
        clock, waits = 0.0, []
        for _ in range(8):
            buffer.flush(hole, clock)
            due = buffer._pending[0].next_attempt_at
            waits.append(due - clock)
            clock = due
        assert waits[:3] == [BACKOFF_BASE_S, BACKOFF_BASE_S * 2, BACKOFF_BASE_S * 4]
        assert waits[-1] == BACKOFF_CAP_S

    def test_jitter_is_seeded_and_bounded(self):
        from repro.platform.buffer import BACKOFF_BASE_S

        waits = []
        for _ in range(2):
            buffer = self._sealed_buffer()
            buffer.flush(self.Blackhole(), 0.0, rng=np.random.default_rng(7))
            waits.append(buffer._pending[0].next_attempt_at)
        assert waits[0] == waits[1]  # same seed, same schedule
        assert 0.5 * BACKOFF_BASE_S <= waits[0] < 1.5 * BACKOFF_BASE_S

    def test_retry_budget_dead_letters_then_requeues(self):
        buffer = self._sealed_buffer(retry_budget=3)
        hole = self.Blackhole()
        delivered = buffer.drain(hole, now=0.0, deadline=10**7)
        assert delivered == 0
        assert hole.sends == 3
        assert buffer.pending_chunks == 0
        assert buffer.dead_letter_chunks == 1
        assert buffer.chunks_dead_lettered == 1
        assert buffer.requeue_dead_letters() == 1
        assert buffer.dead_letter_chunks == 0
        receiver = Receiver()
        assert buffer.drain(Transport(receiver), now=0.0, deadline=10**7) == 1
        assert len(receiver.chunks) == 1

    def test_throttle_opens_circuit_and_burns_no_attempt(self):
        from repro.platform.errors import Throttled

        class Overloaded:
            def __init__(self):
                self.sends = 0

            def send(self, kind, data):
                self.sends += 1
                raise Throttled(retry_after=900.0)

        buffer = self._sealed_buffer(retry_budget=2)
        server = Overloaded()
        buffer.flush(server, 0.0)
        assert buffer.throttle_trips == 1
        assert buffer._pending[0].attempts == 0  # backpressure burns no budget
        # Circuit open: passes inside the Retry-After window are no-ops.
        buffer.flush(server, 500.0)
        assert server.sends == 1
        buffer.flush(server, 900.0)
        assert server.sends == 2

    def test_drain_delivers_within_deadline_over_flaky_channel(self):
        receiver = Receiver()
        transport = LossyTransport(
            receiver, loss_probability=0.8, rng=np.random.default_rng(3)
        )
        buffer = DataBuffer(fast_threshold_bytes=300)
        originals = [fast_run(i) for i in range(12)]
        for record in originals:
            buffer.append("fast", record)
        buffer.seal_all()
        delivered = buffer.drain(
            transport, now=0.0, deadline=10**7, rng=np.random.default_rng(4)
        )
        assert delivered == 12
        assert buffer.pending_chunks == 0
        assert sorted(receiver.records(), key=lambda r: r.start) == originals


class TestExactlyOnceProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 10_000))
    def test_property_no_loss_no_duplication(self, n_records, seed):
        """Whatever the loss pattern, retry-until-acked delivers every
        record exactly once."""
        receiver = Receiver()
        transport = LossyTransport(
            receiver, loss_probability=0.3, rng=np.random.default_rng(seed)
        )
        buffer = DataBuffer(fast_threshold_bytes=300)
        originals = [fast_run(i) for i in range(n_records)]
        for record in originals:
            buffer.append("fast", record)
        buffer.seal_all()
        for _ in range(200):
            buffer.flush(transport)
            if buffer.pending_chunks == 0:
                break
        assert buffer.pending_chunks == 0
        assert sorted(receiver.records(), key=lambda r: r.start) == originals
