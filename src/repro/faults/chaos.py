"""Chaos harness: prove exactly-once ingest under escalating fault plans.

``python -m repro chaos`` runs the same seeded study once per fault
plan — a clean plan first, then escalating plans that mix transport
loss, chunk corruption, ack loss after durable store, receive crashes
mid-chunk, store write rejections and overload windows — at one worker
and (when cores allow) several.  Every run must produce:

* a ``study_digest`` byte-identical to the clean reference run — the
  dataset the analyses see is invariant under any fault plan at any
  worker count;
* the same ``records_inserted`` total — no record is ever dropped or
  double-ingested;
* empty terminal queues — no pending chunks, no dead letters, no
  server redelivery backlog once the study closes.

The per-run ingest counters (duplicate chunks absorbed, rollbacks,
injected faults, redeliveries) are reported alongside so a failure is
diagnosable from the JSON artifact, which is written even when the
gate fails (CI uploads it either way).
"""

from __future__ import annotations

import json
import os

from .plan import FaultPlan, FaultSpec

__all__ = ["escalating_plans", "run_chaos"]


def escalating_plans() -> list[tuple[str, FaultPlan]]:
    """The built-in plan ladder: clean reference, then worse and worse.

    * ``clean`` — fault plane engaged, nothing injected: the reference
      realization every other plan must reproduce byte for byte.
    * ``lossy`` — chunks vanish or arrive corrupted; the buffer's
      hash-verified retry loop must re-send until the ack matches.
    * ``duplicating`` — acks are lost *after* the server durably stored
      the chunk, so the client retransmits data the server already has;
      the dedup window must absorb every duplicate.
    * ``mayhem`` — everything at once, plus receive crashes mid-chunk
      (atomic commit must roll back the partial insert), store write
      rejections, and a hard overload window on days 1-2.
    """
    return [
        ("clean", FaultPlan()),
        (
            "lossy",
            FaultPlan(
                transport_loss=FaultSpec(0.2),
                transport_corruption=FaultSpec(0.05),
            ),
        ),
        (
            "duplicating",
            FaultPlan(
                transport_loss=FaultSpec(0.1),
                ack_loss=FaultSpec(0.25),
            ),
        ),
        (
            "mayhem",
            FaultPlan(
                transport_loss=FaultSpec(0.1),
                transport_corruption=FaultSpec(0.05),
                ack_loss=FaultSpec(0.2),
                receive_crash=FaultSpec(0.25),
                store_reject=FaultSpec(0.15),
                overload=FaultSpec(1.0, days=(1, 2)),
                overload_retry_after_s=1800.0,
            ),
        ),
    ]


def _smoke_config(config):
    """Shrink a config to CI size (seconds per run, all code paths hot)."""
    return config.scaled(
        n_worker_devices=12,
        n_regular_devices=8,
        n_dropout_devices=2,
        study_days=4,
        n_popular_apps=300,
        n_promoted_apps=24,
        n_third_party_apps=6,
        n_antivirus_apps=4,
    )


def _run_entry(plan_name: str, plan: FaultPlan, config, n_jobs: int) -> dict:
    """One seeded study under one plan; returns the digest + counters."""
    from ..benchmark import study_digest
    from ..simulation import run_study

    data = run_study(config.scaled(fault_plan=plan), n_jobs=n_jobs)
    stats = data.server.stats
    buffers = [p.app.buffer for p in data.participants]
    return {
        "plan": plan_name,
        "plan_spec": plan.describe(),
        "n_jobs": n_jobs,
        "digest": study_digest(data),
        "records_inserted": stats.records_inserted,
        "chunks_received": stats.chunks_received,
        "malformed_chunks": stats.malformed_chunks,
        "duplicate_chunks": stats.duplicate_chunks,
        "chunk_rollbacks": stats.chunk_rollbacks,
        "fault_counts": dict(data.server.fault_counts),
        "redelivered_chunks": data.server.redelivered_chunks,
        "redelivery_backlog": data.server.redelivery_backlog,
        "retransmissions": sum(b.retransmissions for b in buffers),
        "throttle_trips": sum(b.throttle_trips for b in buffers),
        "pending_chunks": sum(b.pending_chunks for b in buffers),
        "dead_letters_pending": sum(b.dead_letter_chunks for b in buffers),
    }


def _check_entry(entry: dict, reference: dict | None) -> list[str]:
    """The exactly-once gate for one run; returns failure descriptions."""
    failures = []
    if entry["pending_chunks"]:
        failures.append(f"{entry['pending_chunks']} chunks still pending at close")
    if entry["dead_letters_pending"]:
        failures.append(
            f"{entry['dead_letters_pending']} chunks dead-lettered at close"
        )
    if entry["redelivery_backlog"]:
        failures.append(
            f"{entry['redelivery_backlog']} chunks parked on the server "
            "redelivery queue at close"
        )
    if reference is not None:
        if entry["digest"] != reference["digest"]:
            failures.append(
                f"study digest {entry['digest'][:16]}... != clean reference "
                f"{reference['digest'][:16]}..."
            )
        if entry["records_inserted"] != reference["records_inserted"]:
            failures.append(
                f"records_inserted {entry['records_inserted']} != clean "
                f"reference {reference['records_inserted']}"
            )
    return failures


def run_chaos(
    config=None,
    *,
    smoke: bool = False,
    n_jobs: int | None = None,
    out: str = "CHAOS.json",
) -> int:
    """Run the plan ladder and enforce the exactly-once contract.

    Every (plan, n_jobs) combination must reproduce the clean reference
    run's ``study_digest`` and ``records_inserted`` and close with empty
    queues.  Writes a JSON report to ``out`` (also on failure) and
    returns a process exit code.
    """
    from ..parallel import resolve_n_jobs
    from ..simulation import SimulationConfig

    base = config if config is not None else SimulationConfig.small()
    if smoke:
        base = _smoke_config(base)

    if n_jobs is not None:
        workers = resolve_n_jobs(n_jobs)
    else:
        workers = min(2, os.cpu_count() or 1)
    jobs_list = [1] if workers <= 1 else [1, workers]

    entries: list[dict] = []
    failures: list[str] = []
    reference: dict | None = None
    interrupted: str | None = None
    try:
        for plan_name, plan in escalating_plans():
            for jobs in jobs_list:
                entry = _run_entry(plan_name, plan, base, jobs)
                is_reference = reference is None
                if is_reference:
                    reference = entry
                problems = _check_entry(entry, None if is_reference else reference)
                entry["failures"] = problems
                entries.append(entry)
                failures.extend(
                    f"[{plan_name} n_jobs={jobs}] {problem}" for problem in problems
                )
                status = "FAIL" if problems else "ok"
                fault_note = ", ".join(
                    f"{site}={count}"
                    for site, count in sorted(entry["fault_counts"].items())
                    if count
                )
                print(
                    f"[{status:4s}] plan={plan_name:<12s} n_jobs={jobs} "
                    f"digest={entry['digest'][:16]} "
                    f"records={entry['records_inserted']} "
                    f"dup={entry['duplicate_chunks']} "
                    f"rollbacks={entry['chunk_rollbacks']} "
                    f"retx={entry['retransmissions']} "
                    f"redelivered={entry['redelivered_chunks']}"
                    + (f" faults[{fault_note}]" if fault_note else "")
                )
    except BaseException as exc:  # artifact survives a crashed/killed run
        interrupted = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        report = {
            "smoke": smoke,
            "seed": base.seed,
            "study_days": base.study_days,
            "devices": base.total_devices,
            "jobs_list": jobs_list,
            "runs": entries,
            "failures": failures,
            "passed": not failures and interrupted is None,
        }
        if interrupted is not None:
            report["interrupted"] = interrupted
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)

    print(f"wrote {out}")
    if failures:
        print(f"chaos: FAILED ({len(failures)} violations)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"chaos: ok — {len(entries)} runs, every fault plan reproduced the "
        f"clean digest {reference['digest'][:16]}... at n_jobs {jobs_list}"
    )
    return 0
