"""§6.3 stopped apps (Figure 8): workers stop significantly more apps."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from .common import GroupComparison, compare_feature

__all__ = ["StoppedAppsResult", "compute_stopped_apps"]


@dataclass
class StoppedAppsResult:
    """Figure 8: per-device stopped-app counts (first slow snapshot)."""

    comparison: GroupComparison
    worker_counts: list[int]
    regular_counts: list[int]

    def boxplot_stats(self) -> dict[str, dict[str, float]]:
        """Quartile summaries for the two boxes of Figure 8."""
        return {
            "worker": self.comparison.worker.as_dict(),
            "regular": self.comparison.regular.as_dict(),
        }


def compute_stopped_apps(observations: list[DeviceObservation]) -> StoppedAppsResult:
    reporting = [o for o in observations if o.slow_runs]
    worker_counts = [
        len(o.stopped_apps_first) for o in reporting if o.is_worker
    ]
    regular_counts = [
        len(o.stopped_apps_first) for o in reporting if not o.is_worker
    ]
    return StoppedAppsResult(
        comparison=compare_feature("stopped_apps", worker_counts, regular_counts),
        worker_counts=sorted(worker_counts),
        regular_counts=sorted(regular_counts),
    )
