"""Tests for operating-point / threshold selection."""

import numpy as np
import pytest

from repro.core.thresholds import (
    precision_recall_curve,
    sweep_operating_points,
    threshold_for_fpr,
    threshold_for_precision,
)


@pytest.fixture()
def scored(rng):
    n = 500
    y = rng.integers(0, 2, n)
    scores = y * 2.0 + rng.normal(0, 1.0, n)
    return y, scores


class TestPrecisionRecallCurve:
    def test_recall_monotone_nondecreasing(self, scored):
        y, scores = scored
        _, recall, _ = precision_recall_curve(y, scores)
        assert np.all(np.diff(recall) >= 0)

    def test_final_recall_is_one(self, scored):
        y, scores = scored
        _, recall, _ = precision_recall_curve(y, scores)
        assert recall[-1] == pytest.approx(1.0)

    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        precision, recall, _ = precision_recall_curve(y, scores)
        assert precision[0] == 1.0 and precision[1] == 1.0


class TestThresholdForFPR:
    def test_constraint_respected(self, scored):
        y, scores = scored
        point = threshold_for_fpr(y, scores, max_fpr=0.05)
        assert point.false_positive_rate <= 0.05

    def test_recall_maximised_under_budget(self, scored):
        y, scores = scored
        tight = threshold_for_fpr(y, scores, max_fpr=0.01)
        loose = threshold_for_fpr(y, scores, max_fpr=0.2)
        assert loose.recall >= tight.recall
        assert loose.threshold <= tight.threshold

    def test_zero_budget_flags_cleanly(self, scored):
        y, scores = scored
        point = threshold_for_fpr(y, scores, max_fpr=0.0)
        assert point.false_positive_rate == 0.0


class TestThresholdForPrecision:
    def test_constraint_respected(self, scored):
        y, scores = scored
        point = threshold_for_precision(y, scores, min_precision=0.95)
        assert point.precision >= 0.95

    def test_paper_style_high_precision_point(self, rng):
        """§8.2 prioritises precision: on a well-separated scorer the
        0.97-precision operating point retains useful recall."""
        n = 500
        y = rng.integers(0, 2, n)
        scores = y * 4.0 + rng.normal(0, 1.0, n)  # strong separation
        point = threshold_for_precision(y, scores, min_precision=0.97)
        assert point.precision >= 0.97
        assert point.recall > 0.5

    def test_max_recall_point_selected(self, scored):
        """Among all feasible points the selector returns the one with
        the highest recall (not merely the first feasible one)."""
        from repro.core.thresholds import _all_points

        y, scores = scored
        point = threshold_for_precision(y, scores, min_precision=0.95)
        feasible = [
            p
            for p in _all_points(np.asarray(y), np.asarray(scores, dtype=float))
            if p.precision >= 0.95
        ]
        assert point.recall == max(p.recall for p in feasible)

    def test_infeasible_precision_flags_nothing(self, rng):
        y = rng.integers(0, 2, 100)
        scores = rng.normal(0, 1, 100)  # uninformative scores
        point = threshold_for_precision(y, scores, min_precision=1.01)
        assert point.flagged_fraction == 0.0


class TestSweep:
    def test_sweep_shape_and_order(self, scored):
        y, scores = scored
        points = sweep_operating_points(y, scores, n_points=7)
        assert len(points) == 7
        thresholds = [p.threshold for p in points]
        assert thresholds == sorted(thresholds)
        # Raising the threshold never raises FPR.
        fprs = [p.false_positive_rate for p in points]
        assert all(a >= b - 1e-12 for a, b in zip(fprs, fprs[1:]))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            sweep_operating_points([], [])
