"""Ablation: permission-denial rates (§3, §9).

RacketStore only sees accounts/foreground data where participants grant
GET_ACCOUNTS / PACKAGE_USAGE_STATS; §9's proposal (embed the classifier
in a pre-installed client) matters precisely because such clients hold
these permissions by default.  This bench re-runs small worlds at
different grant rates and measures what denial costs the device
classifier.
"""

from repro.core import DetectionPipeline
from repro.experiments.common import ExperimentReport
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def _f1_at(accounts_prob: float, usage_prob: float) -> float:
    config = SimulationConfig.small().scaled(
        grant_get_accounts_prob=accounts_prob,
        grant_usage_stats_prob=usage_prob,
    )
    data = run_study(config)
    result = DetectionPipeline(n_splits=5).run(data)
    return result.device_evaluation.results["XGB"].f1


def test_ablation_permission_denial(benchmark, emit):
    scenarios = [
        ("all granted (pre-installed client, §9)", 1.0, 1.0),
        ("paper-like grant rates", 0.8, 0.96),
        ("accounts denied everywhere", 0.0, 1.0),
    ]
    rows = []
    metrics = {}
    for label, accounts, usage in scenarios:
        f1 = _f1_at(accounts, usage)
        rows.append((label, accounts, usage, f1))
        metrics[label] = f1

    benchmark.pedantic(_f1_at, args=(1.0, 1.0), rounds=1, iterations=1)
    emit(
        ExperimentReport(
            "ablation_permissions",
            "Device classifier vs permission grant rates (§3/§9)",
            lines=[
                render_table(
                    ["scenario", "GET_ACCOUNTS", "USAGE_STATS", "XGB F1"], rows
                ),
                "Account data drives the review-join features; §9's "
                "pre-installed-client deployment sidesteps denial entirely.",
            ],
            metrics=metrics,
        )
    )
    # Full grants are at least as good as paper-like partial grants, and
    # the detector degrades but survives a full GET_ACCOUNTS blackout
    # (stopped apps/churn/usage still separate).
    assert metrics["all granted (pre-installed client, §9)"] >= 0.9
    assert metrics["accounts denied everywhere"] >= 0.7
