"""Bench: Figure 13 — top-10 app-feature Gini importances."""

from repro.experiments import run_experiment
from repro.ml import RandomForestClassifier


def test_fig13_app_importance(benchmark, workbench, pipeline_result, emit):
    dataset = pipeline_result.app_dataset
    forest = RandomForestClassifier(n_estimators=80, random_state=0)
    benchmark.pedantic(
        lambda: forest.fit(dataset.X, dataset.y).feature_importances_,
        rounds=1,
        iterations=1,
    )
    report = emit(run_experiment("fig13", workbench))
    # Paper: the accounts-reviewed and install-to-review features top the
    # ranking.  Importance rankings over correlated near-pure features
    # are unstable (Gini splits credit across siblings and inflates
    # continuous features), so the bench asserts the robust version of
    # the claim: the review-behaviour family carries substantial weight
    # and ranks highly under both measures.  EXPERIMENTS.md discusses
    # the residual per-feature ordering differences.
    assert report.metrics["review_family_importance"] >= 0.04
    assert report.metrics["review_rank_gini"] <= 12
    assert report.metrics["review_rank_perm"] <= 6
