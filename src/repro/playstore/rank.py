"""Keyword-search rank model for the simulated Play Store.

§2 of the paper: "Some of the factors with most impact on search rank
are the number of installs and reviews, and the aggregate rating of the
app" and developers "need to achieve top-5 rank in keyword searches".
This module scores apps on those factors so the simulation (and the
evasion-cost example) can quantify what an ASO campaign buys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .catalog import App, Catalog

__all__ = ["RankWeights", "SearchRankModel", "RankedApp"]


@dataclass(frozen=True)
class RankWeights:
    """Relative weight of each ranking factor (log-scaled counts)."""

    installs: float = 1.0
    reviews: float = 0.8
    rating: float = 1.5
    relevance: float = 2.0


@dataclass(frozen=True)
class RankedApp:
    package: str
    score: float
    rank: int


class SearchRankModel:
    """Deterministic search scoring over the catalog.

    ``score = w_i * log1p(installs) + w_r * log1p(reviews)
            + w_s * rating + w_k * keyword_relevance``

    Keyword relevance is a crude token match on title/package — enough
    to make campaigns for a target keyword move an app up its result
    list, which is the effect ASO buys.
    """

    def __init__(self, catalog: Catalog, weights: RankWeights | None = None) -> None:
        self._catalog = catalog
        self.weights = weights or RankWeights()

    def score(self, app: App, keyword: str | None = None) -> float:
        w = self.weights
        base = (
            w.installs * math.log1p(max(app.install_count, 0))
            + w.reviews * math.log1p(max(app.review_count, 0))
            + w.rating * app.aggregate_rating
        )
        if keyword:
            base += w.relevance * self._relevance(app, keyword)
        return base

    @staticmethod
    def _relevance(app: App, keyword: str) -> float:
        keyword = keyword.lower()
        title_tokens = app.title.lower().split()
        if keyword in title_tokens:
            return 2.0
        if keyword in app.title.lower() or keyword in app.package.lower():
            return 1.0
        if keyword == app.category.lower():
            return 0.5
        return 0.0

    def search(self, keyword: str, top: int = 10) -> list[RankedApp]:
        """Top-``top`` Play-hosted apps for a keyword query."""
        scored = [
            (self.score(app, keyword), app.package)
            for app in self._catalog.hosted_on_play()
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [
            RankedApp(package=package, score=score, rank=i + 1)
            for i, (score, package) in enumerate(scored[:top])
        ]

    def rank_of(self, package: str, keyword: str) -> int:
        """1-based rank of ``package`` among all Play apps for a keyword."""
        target = self._catalog.get(package)
        target_key = (-self.score(target, keyword), package)
        better = 0
        for app in self._catalog.hosted_on_play():
            key = (-self.score(app, keyword), app.package)
            if key < target_key:
                better += 1
        return better + 1
