"""Tests for SimDevice, events, clock and accounts."""

import pytest

from repro.playstore.catalog import Catalog
from repro.playstore.google_id import GmailDirectory
from repro.simulation.accounts import AccountFactory
from repro.simulation.clock import SECONDS_PER_DAY, SimClock, day_index, days, hours
from repro.simulation.device import SimDevice
from repro.simulation.events import DeviceEvent, EventType, ForegroundSession
from repro.simulation.personas import dedicated_worker, organic_worker, regular_user


@pytest.fixture()
def catalog(rng):
    catalog = Catalog(rng)
    for _ in range(5):
        catalog.add_popular_app()
    return catalog


@pytest.fixture()
def device(rng):
    return SimDevice("regular", is_worker=False, rng=rng)


class TestClock:
    def test_day_index(self):
        assert day_index(0.0) == 0
        assert day_index(SECONDS_PER_DAY - 1) == 0
        assert day_index(SECONDS_PER_DAY) == 1

    def test_conversions(self):
        assert days(2) == 2 * SECONDS_PER_DAY
        assert hours(3) == 10_800.0

    def test_clock_monotonic(self):
        clock = SimClock()
        clock.advance(10.0)
        assert clock.now == 10.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestEvents:
    def test_event_type_values_match_fig1(self):
        assert int(EventType.INSTALL) == 4
        assert int(EventType.REVIEW) == 3
        assert int(EventType.FOREGROUND) == 2
        assert int(EventType.UNINSTALL) == 1

    def test_session_duration(self):
        session = ForegroundSession(10.0, 70.0, "app")
        assert session.duration == 60.0

    def test_inverted_session_rejected(self):
        with pytest.raises(ValueError):
            ForegroundSession(70.0, 10.0, "app")

    def test_events_sort_by_time(self):
        a = DeviceEvent(5.0, EventType.INSTALL, "x")
        b = DeviceEvent(1.0, EventType.REVIEW, "y")
        assert sorted([a, b])[0] is b


class TestSimDevice:
    def test_install_starts_stopped(self, device, catalog, rng):
        app = catalog.add_popular_app()
        record = device.install(app, 0.0, grant_probability=1.0, rng=rng)
        assert record.stopped  # Android >= 3.1 semantics

    def test_open_clears_stopped(self, device, catalog, rng):
        app = catalog.add_popular_app()
        device.install(app, 0.0, grant_probability=1.0, rng=rng)
        session = device.open_app(app.package, 10.0, 60.0)
        assert session is not None
        assert not device.installed[app.package].stopped

    def test_open_unknown_app_returns_none(self, device):
        assert device.open_app("com.ghost", 0.0, 10.0) is None

    def test_stop_app(self, device, catalog, rng):
        app = catalog.add_popular_app()
        device.install(app, 0.0, grant_probability=1.0, rng=rng)
        device.open_app(app.package, 1.0, 5.0)
        assert device.stop_app(app.package, 10.0)
        assert app.package in device.stopped_packages()

    def test_uninstall_removes_and_logs(self, device, catalog, rng):
        app = catalog.add_popular_app()
        device.install(app, 0.0, grant_probability=1.0, rng=rng)
        assert device.uninstall(app.package, 5.0)
        assert app.package not in device.installed
        assert not device.uninstall(app.package, 6.0)
        assert device.uninstalled_log == [(5.0, app.package)]

    def test_permission_granting_probability(self, device, catalog, rng):
        app = catalog.add_popular_app()
        record = device.install(app, 0.0, grant_probability=0.0, rng=rng)
        # With grant prob 0 every dangerous permission is denied.
        assert record.n_denied == len(app.permissions.dangerous)
        assert set(record.granted_permissions) == set(app.permissions.normal)

    def test_full_grant(self, device, catalog, rng):
        app = catalog.add_popular_app()
        record = device.install(app, 0.0, grant_probability=1.0, rng=rng)
        assert record.n_denied == 0
        assert record.n_granted == app.permissions.total

    def test_timeline_filters_by_package(self, device, catalog, rng):
        a, b = catalog.add_popular_app(), catalog.add_popular_app()
        device.install(a, 0.0, 1.0, rng)
        device.install(b, 1.0, 1.0, rng)
        device.open_app(a.package, 2.0, 10.0)
        timeline = device.timeline(a.package)
        assert all(e.package == a.package for e in timeline)
        assert [e.event_type for e in timeline] == [EventType.INSTALL, EventType.FOREGROUND]

    def test_preinstalled_not_counted_as_user(self, device, catalog, rng):
        for app in catalog.preinstalled()[:3]:
            device.install(app, -100.0, 1.0, rng, preinstalled=True)
        assert device.user_installed() == []

    def test_unique_device_ids(self, rng):
        a = SimDevice("regular", False, rng)
        b = SimDevice("regular", False, rng)
        assert a.device_id != b.device_id

    def test_android_id_missing_mode(self, rng):
        device = SimDevice("regular", False, rng, android_id_missing=True)
        assert device.android_id is None


class TestAccountFactory:
    def test_gmail_registered_with_directory(self, rng):
        directory = GmailDirectory()
        factory = AccountFactory(directory, rng)
        account = factory.new_gmail()
        assert account.is_gmail
        assert directory.resolve(account.identifier) == account.google_id

    def test_unique_emails(self, rng):
        factory = AccountFactory(GmailDirectory(), rng)
        emails = {factory.new_gmail().identifier for _ in range(200)}
        assert len(emails) == 200

    def test_persona_account_mix(self, rng):
        factory = AccountFactory(GmailDirectory(), rng)
        for persona in (regular_user(), organic_worker(), dedicated_worker()):
            accounts = factory.accounts_for_persona(persona)
            gmail = [a for a in accounts if a.is_gmail]
            assert 1 <= len(gmail) <= persona.gmail_max
            services = {a.service for a in accounts if not a.is_gmail}
            assert services <= set(persona.service_pool)
