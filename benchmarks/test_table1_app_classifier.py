"""Bench: Table 1 — app-usage classifier (XGB/RF/LR/KNN/LVQ) plus the
balanced-dataset variants (§7.2)."""

from repro.core.app_classifier import APP_ALGORITHMS
from repro.experiments import run_experiment
from repro.ml import cross_validate
from repro.reporting import render_table


def test_table1_app_classifier(benchmark, workbench, pipeline_result, emit):
    dataset = pipeline_result.app_dataset
    # Time one 10-fold CV of the winning algorithm (the representative
    # unit of Table 1's work).
    benchmark.pedantic(
        cross_validate,
        args=(APP_ALGORITHMS(0)["XGB"], dataset.X, dataset.y),
        kwargs={"n_splits": 10, "random_state": 0},
        rounds=1,
        iterations=1,
    )
    report = emit(run_experiment("table1", workbench))
    # Shape: XGB wins (or ties within noise) with a very high F1; every
    # algorithm lands in the 90s — as in the paper.
    best_f1 = max(v for k, v in report.metrics.items() if k.endswith("_f1"))
    assert report.metrics["XGB_f1"] >= best_f1 - 0.005
    assert report.metrics["XGB_f1"] >= 0.97
    assert report.metrics["xgb_auc"] >= 0.95
    assert all(
        value >= 0.85 for key, value in report.metrics.items() if key.endswith("_f1")
    )


def test_table1_balanced_variants(benchmark, workbench, pipeline_result, emit):
    """§7.2 'Performance Under Balanced Datasets': under- and over-
    sampling keep XGB's F1 within about a point of the unbalanced run."""
    from repro.experiments.common import ExperimentReport

    dataset = pipeline_result.app_dataset
    benchmark(lambda: dataset.X.shape)  # registers under --benchmark-only
    rows = []
    metrics = {}
    for strategy in ("none", "undersample", "oversample", "smote"):
        cv = cross_validate(
            APP_ALGORITHMS(0)["XGB"],
            dataset.X,
            dataset.y,
            n_splits=10,
            resample=None if strategy == "none" else strategy,
            random_state=0,
        )
        rows.append((strategy, cv.precision, cv.recall, cv.f1, cv.auc, cv.false_positive_rate))
        metrics[strategy] = cv.f1
    report = ExperimentReport(
        "table1_balanced", "Table 1 balanced-dataset variants (XGB)",
        lines=[render_table(["sampling", "precision", "recall", "F1", "AUC", "FPR"], rows)],
        metrics=metrics,
    )
    emit(report)
    assert metrics["oversample"] >= 0.93  # paper: 99.22%
    assert metrics["undersample"] >= 0.90  # paper: 98.76%
