"""Committed-baseline support: grandfather existing findings.

The baseline file is a JSON document listing the fingerprints of
accepted findings (plus human-readable context).  ``lint`` fails only
on findings *not* in the baseline; ``lint --update-baseline`` rewrites
the file from the current tree.  Entries whose finding no longer exists
are reported as *stale* so the baseline shrinks over time instead of
accreting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

__all__ = ["Baseline", "load_baseline", "save_baseline", "partition"]

_VERSION = 1


@dataclass
class Baseline:
    """The set of grandfathered findings."""

    path: str = ""
    entries: list[dict] = field(default_factory=list)

    @property
    def fingerprints(self) -> set[str]:
        return {entry["fingerprint"] for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline; a missing file is an empty baseline."""
    file = Path(path)
    if not file.exists():
        return Baseline(path=str(path))
    payload = json.loads(file.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    return Baseline(path=str(path), entries=list(payload.get("findings", [])))


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "snippet": f.snippet,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["snippet"], e["fingerprint"]))
    payload = {"version": _VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Split findings into (new, baselined); also return stale baseline
    entries whose finding no longer occurs in the tree."""
    known = baseline.fingerprints
    new = [f for f in findings if f.fingerprint not in known]
    grandfathered = [f for f in findings if f.fingerprint in known]
    present = {f.fingerprint for f in findings}
    stale = [e for e in baseline.entries if e["fingerprint"] not in present]
    return new, grandfathered, stale
