"""DET001 gate on the fault plane.

Fault-drawing code must take its Generator explicitly: a hidden
``rng or default_rng(...)`` fallback would correlate injection sites,
shift the dedicated fault streams, and break the chaos harness's
cross-plan digest equality.  The real ``repro.faults`` package must be
clean; fixtures that reintroduce the tempting fallback idioms must
fire.
"""

from pathlib import Path

from repro.statan.engine import analyze_tree

SRC = Path(__file__).resolve().parents[2] / "src"


def rules_fired(root, rule):
    findings, _ = analyze_tree([str(root)])
    return [f for f in findings if f.rule == rule]


class TestFaultPlaneIsClean:
    def test_real_faults_package_has_no_det001(self):
        findings, _ = analyze_tree([str(SRC / "repro" / "faults")])
        det = [f for f in findings if f.rule == "DET001"]
        assert det == [], "\n".join(f.format_text() for f in det)

    def test_real_faults_package_has_no_error_findings_at_all(self):
        findings, _ = analyze_tree([str(SRC / "repro" / "faults")])
        errors = [f for f in findings if f.severity == "error"]
        assert errors == [], "\n".join(f.format_text() for f in errors)


class TestFallbackIdiomsFire:
    def test_rng_or_default_fallback_in_fires_trips_det001(self, write_tree):
        # The tempting "convenience" signature: fires(rng=None) with a
        # seeded fallback.  Seeded or not, a fallback Generator means
        # the call site no longer controls the stream -> DET001.
        root = write_tree({
            "faults/plan.py": (
                "import numpy as np\n"
                "\n"
                "class FaultSpec:\n"
                "    def __init__(self, probability):\n"
                "        self.probability = probability\n"
                "\n"
                "    def fires(self, rng=None, day=0):\n"
                "        rng = rng or np.random.default_rng(0)\n"
                "        return float(rng.random()) < self.probability\n"
            ),
        })
        findings = rules_fired(root, "DET001")
        assert len(findings) == 1
        assert "fires" in findings[0].message or "rng" in findings[0].message

    def test_unseeded_generator_in_fault_draw_trips_det001(self, write_tree):
        root = write_tree({
            "faults/transport.py": (
                "import numpy as np\n"
                "\n"
                "def should_drop(probability):\n"
                "    rng = np.random.default_rng()\n"
                "    return float(rng.random()) < probability\n"
            ),
        })
        findings = rules_fired(root, "DET001")
        assert len(findings) == 1
