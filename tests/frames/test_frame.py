"""Tests for the columnar record frames (schema, frame, query masks)."""

import math

import numpy as np
import pytest

from repro.frames import (
    QUERY_OPERATORS,
    ColumnFrame,
    Field,
    FrameRow,
    RecordSchema,
    mask_for,
)
from repro.frames.frame import SchemaMismatchError

POINT_SCHEMA = RecordSchema(
    "point",
    (
        Field("name", "str"),
        Field("x", "float"),
        Field("n", "int"),
        Field("flag", "bool"),
        Field("tag", "str", nullable=True),
        Field("payload", "object"),
    ),
)


def make_typed() -> ColumnFrame:
    frame = ColumnFrame(POINT_SCHEMA)
    frame.extend(
        [
            {"name": "a", "x": 1.5, "n": 1, "flag": True, "tag": "t1", "payload": [1]},
            {"name": "b", "x": -2.0, "n": 2, "flag": False, "tag": None, "payload": {}},
            {"name": "c", "x": 0.0, "n": 3, "flag": True, "tag": "t2", "payload": ()},
        ]
    )
    return frame


def make_generic() -> ColumnFrame:
    frame = ColumnFrame()
    frame.extend(
        [
            {"a": 1, "b": "x"},
            {"a": 2},
            {"a": 3, "b": None, "c": [1, 2]},
        ]
    )
    return frame


class TestSchema:
    def test_field_kinds_validated(self):
        with pytest.raises(ValueError):
            Field("bad", "decimal")

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            RecordSchema("dup", (Field("a", "int"), Field("a", "str")))

    def test_sortable(self):
        assert POINT_SCHEMA.field("x").sortable
        assert POINT_SCHEMA.field("name").sortable
        assert not POINT_SCHEMA.field("tag").sortable  # nullable
        assert not POINT_SCHEMA.field("flag").sortable  # bool
        assert not POINT_SCHEMA.field("payload").sortable  # object

    def test_contains_and_lookup(self):
        assert "x" in POINT_SCHEMA
        assert "missing" not in POINT_SCHEMA
        with pytest.raises(KeyError):
            POINT_SCHEMA.field("missing")


class TestTypedFrame:
    def test_roundtrip_preserves_rows_and_objects(self):
        frame = make_typed()
        payload = [1]
        frame.append(
            {"name": "d", "x": 9.0, "n": 4, "flag": False, "tag": None, "payload": payload}
        )
        row = frame.row(3)
        assert row["payload"] is payload  # nested values kept by reference
        assert list(row) == [f.name for f in POINT_SCHEMA.fields]

    def test_schema_mismatch_raises(self):
        frame = make_typed()
        with pytest.raises(SchemaMismatchError):
            frame.append({"name": "e", "x": 1.0})  # missing fields
        with pytest.raises(SchemaMismatchError):
            frame.append({**frame.row(0), "extra": 1})  # extra field

    def test_native_dtype_columns(self):
        frame = make_typed()
        assert frame.column("x").dtype == np.float64
        assert frame.column("n").dtype == np.int64
        assert frame.column("flag").dtype == np.bool_
        assert frame.column("tag").dtype == object  # nullable -> object

    def test_column_cache_invalidated_on_append(self):
        frame = make_typed()
        first = frame.column("x")
        assert frame.column("x") is first  # cached
        frame.append(
            {"name": "d", "x": 7.0, "n": 4, "flag": True, "tag": None, "payload": None}
        )
        assert len(frame.column("x")) == 4

    def test_present_is_all_true(self):
        frame = make_typed()
        assert frame.present("x").all()


class TestGenericFrame:
    def test_absent_vs_none(self):
        frame = make_generic()
        # Row 1 never carried "b": cell raises like a dict, get -> None.
        with pytest.raises(KeyError):
            frame.cell("b", 1)
        assert frame.cell_or_none("b", 1) is None
        # Row 2 carries an explicit None.
        assert frame.cell("b", 2) is None
        assert list(frame.present("b")) == [True, False, True]

    def test_backfill_of_late_columns(self):
        frame = make_generic()
        assert frame.cell_or_none("c", 0) is None
        assert frame.row(0) == {"a": 1, "b": "x"}
        assert frame.row(2) == {"a": 3, "b": None, "c": [1, 2]}

    def test_unknown_column_reads_as_none(self):
        frame = make_generic()
        assert list(frame.cells("zzz")) == [None, None, None]
        assert not frame.present("zzz").any()
        assert frame.column("zzz").dtype == object

    def test_column_order_follows_first_seen(self):
        frame = make_generic()
        assert frame.column_names() == ("a", "b", "c")


class TestFrameRow:
    def test_mapping_protocol(self):
        frame = make_generic()
        row = frame.view(2)
        assert isinstance(row, FrameRow)
        assert row["a"] == 3
        assert row.get("missing") is None
        assert {**row} == {"a": 3, "b": None, "c": [1, 2]}
        assert len(row) == 3

    def test_row_without_key_skips_it(self):
        frame = make_generic()
        row = frame.view(1)
        assert "b" not in row
        assert dict(row) == {"a": 2}


class TestMaskFor:
    def test_every_operator_matches_scalar_semantics(self):
        frame = make_typed()
        cases = {
            "$eq": ({"x": {"$eq": 1.5}}, [True, False, False]),
            "$ne": ({"x": {"$ne": 1.5}}, [False, True, True]),
            "$gt": ({"x": {"$gt": 0.0}}, [True, False, False]),
            "$gte": ({"x": {"$gte": 0.0}}, [True, False, True]),
            "$lt": ({"n": {"$lt": 3}}, [True, True, False]),
            "$lte": ({"n": {"$lte": 2}}, [True, True, False]),
            "$in": ({"name": {"$in": ["a", "c"]}}, [True, False, True]),
            "$exists": ({"tag": {"$exists": True}}, [True, True, True]),
        }
        assert set(cases) == set(QUERY_OPERATORS)
        for op, (query, expected) in cases.items():
            assert list(mask_for(frame, query)) == expected, op

    def test_exists_distinguishes_none_from_absent(self):
        frame = make_generic()
        assert list(mask_for(frame, {"b": {"$exists": True}})) == [True, False, True]
        assert list(mask_for(frame, {"b": {"$exists": False}})) == [False, True, False]

    def test_ordering_never_matches_none_or_absent(self):
        frame = make_generic()
        assert list(mask_for(frame, {"b": {"$gt": ""}})) == [True, False, False]

    def test_plain_equality_and_combined(self):
        frame = make_typed()
        assert list(mask_for(frame, {"flag": True, "n": {"$gt": 1}})) == [
            False,
            False,
            True,
        ]

    def test_empty_query_matches_all(self):
        frame = make_typed()
        assert mask_for(frame, None).all()
        assert mask_for(frame, {}).all()

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError, match="unknown query operator"):
            mask_for(make_typed(), {"x": {"$regex": ".*"}})

    def test_incomparable_types_raise_like_scalar_path(self):
        frame = make_typed()
        with pytest.raises(TypeError):
            mask_for(frame, {"name": {"$gt": 1}})
