"""§6 measurement analyses, one module per figure topic, all computed
from collected platform data (snapshots, crawled reviews, VT reports)."""

from .accounts import AccountsResult, compute_accounts
from .app_permissions import PermissionPoint, PermissionsResult, compute_app_permissions
from .churn import ChurnPoint, ChurnResult, compute_churn
from .common import GroupComparison, compare_feature
from .daily_use import DailyUsePoint, DailyUseResult, compute_daily_use
from .engagement import EngagementPoint, EngagementResult, app_timeline, compute_engagement
from .install_review import InstallReviewResult, compute_install_to_review
from .installed_apps import InstalledAppsResult, compute_installed_apps
from .malware import MalwareResult, MalwareSample, compute_malware
from .retention import RetentionCurve, RetentionResult, compute_retention
from .stopped_apps import StoppedAppsResult, compute_stopped_apps

__all__ = [
    "AccountsResult",
    "compute_accounts",
    "PermissionPoint",
    "PermissionsResult",
    "compute_app_permissions",
    "ChurnPoint",
    "ChurnResult",
    "compute_churn",
    "GroupComparison",
    "compare_feature",
    "DailyUsePoint",
    "DailyUseResult",
    "compute_daily_use",
    "EngagementPoint",
    "EngagementResult",
    "app_timeline",
    "compute_engagement",
    "InstallReviewResult",
    "compute_install_to_review",
    "InstalledAppsResult",
    "compute_installed_apps",
    "MalwareResult",
    "RetentionCurve",
    "RetentionResult",
    "compute_retention",
    "MalwareSample",
    "compute_malware",
    "StoppedAppsResult",
    "compute_stopped_apps",
]
