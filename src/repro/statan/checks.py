"""The initial statan rule set.

Each rule targets a failure mode this codebase has actually had to
engineer around (see DESIGN.md §6 and the obs-layer seed tests):

========  ========================================================
DET001    unseeded / global / hidden-fallback randomness
DET002    wall-clock reads instead of the virtual simulation clock
DET003    iteration over unordered collections / filesystem listings
BUG001    mutable default arguments
ML001     float equality comparisons in numeric code
OBS001    ``obs.configure()`` without ``obs.reset()`` in the module
========  ========================================================

All checks are syntactic: they resolve dotted names through the import
alias table (``import numpy as np`` → ``numpy.random...``) but do no
type inference beyond single-scope assignment tracking for DET003.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .engine import ModuleContext, matches_tail
from .findings import SEVERITY_WARNING, Finding
from .rules import Rule, register

__all__ = [
    "UnseededRandomness",
    "WallClock",
    "UnorderedIteration",
    "MutableDefault",
    "FloatEquality",
    "ObsConfigureWithoutReset",
]

#: Packages whose modules may read wall-clock time (observability
#: measures real durations; the analyzer itself never needs time).
_WALL_CLOCK_EXEMPT_PACKAGES = frozenset({"obs", "statan"})

#: Packages where float-equality comparisons are checked (ML001).
_FLOAT_EQ_PACKAGES = frozenset({"ml", "statstests", "analysis"})

#: numpy.random names that are *plumbing*, not global-state draws.
_NUMPY_RNG_PLUMBING = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Monotonic duration clocks.  These don't leak wall-clock time into
#: outputs, but ``repro.obs`` owns duration measurement (``obs.timer``)
#: so instrumentation stays centralised and mockable; reading them
#: anywhere else is a DET002 finding too.
_DURATION_CLOCK_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class UnseededRandomness(Rule):
    """DET001: randomness that bypasses the injected, seeded Generator.

    Flags stdlib ``random`` module calls (process-global state), numpy
    module-level draws (``np.random.random()``, ``np.random.seed()``,
    legacy ``RandomState``), ``default_rng()`` with *no* seed (OS
    entropy), and the hidden-fallback idiom ``rng or default_rng(c)`` /
    ``if rng is None: rng = default_rng(c)`` which silently correlates
    every instance constructed without an explicit Generator.
    """

    id = "DET001"
    summary = "unseeded, global, or hidden-fallback randomness"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for call in _calls(ctx.tree):
            resolved = ctx.resolve(call.func)
            if resolved is None:
                continue
            if resolved == "random" or resolved.startswith("random."):
                if resolved == "random.Random":
                    # Instantiating a (possibly seeded) private Random is
                    # plumbing; everything else touches global state.
                    continue
                yield self.finding(
                    ctx, call,
                    f"stdlib '{resolved}' uses process-global RNG state; "
                    "draw from the injected numpy Generator instead",
                )
            elif resolved.startswith("numpy.random."):
                tail = resolved[len("numpy.random."):]
                if tail == "default_rng" and not call.args and not call.keywords:
                    yield self.finding(
                        ctx, call,
                        "default_rng() without a seed draws OS entropy; "
                        "pass a seed derived from the study config",
                    )
                elif tail.split(".")[0] not in _NUMPY_RNG_PLUMBING:
                    yield self.finding(
                        ctx, call,
                        f"'{resolved}' uses numpy's module-level global RNG; "
                        "use an injected numpy.random.Generator",
                    )
        yield from self._fallback_rngs(ctx)

    def _fallback_rngs(self, ctx: ModuleContext) -> Iterator[Finding]:
        def is_default_rng(node: ast.AST) -> bool:
            return isinstance(node, ast.Call) and matches_tail(
                ctx.resolve(node.func), "numpy.random.default_rng"
            )

        message = (
            "hidden fallback RNG: constructing a default Generator when the "
            "caller passes none silently correlates instances; require an "
            "injected rng"
        )
        for node in ast.walk(ctx.tree):
            # `rng = rng or np.random.default_rng(0)`
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                for value in node.values[1:]:
                    if is_default_rng(value):
                        yield self.finding(ctx, value, message)
            # `if rng is None: rng = np.random.default_rng(0)`
            elif isinstance(node, ast.If):
                test = node.test
                if not (
                    isinstance(test, ast.Compare)
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Is)
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value is None
                ):
                    continue
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign) and is_default_rng(stmt.value):
                        yield self.finding(ctx, stmt.value, message)
            # `def f(..., rng=np.random.default_rng(0))`
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if is_default_rng(default):
                        yield self.finding(ctx, default, message)


@register
class WallClock(Rule):
    """DET002: wall-clock reads in deterministic code.

    Simulation, analysis, ML and experiment code must take time from
    ``simulation/clock.py`` (or an explicit timestamp argument); a
    single ``time.time()`` makes seeded runs non-reproducible.
    ``time.perf_counter``/``monotonic`` are duration clocks, not wall
    clocks, but ``repro.obs`` owns duration measurement: time a block
    with ``obs.timer(histogram)`` instead of reading the clock directly.
    The ``obs`` package (and the analyzer itself) is exempt.
    """

    id = "DET002"
    summary = "wall-clock read bypassing the virtual simulation clock"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.in_package(_WALL_CLOCK_EXEMPT_PACKAGES):
            return
        for call in _calls(ctx.tree):
            resolved = ctx.resolve(call.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, call,
                    f"'{resolved}' reads the wall clock; use the virtual "
                    "clock (repro.simulation.clock) or take the timestamp "
                    "as an argument",
                )
            elif resolved in _DURATION_CLOCK_CALLS:
                yield self.finding(
                    ctx, call,
                    f"'{resolved}' measures a duration outside repro.obs; "
                    "wrap the block in 'with obs.timer(histogram):' so "
                    "instrumentation stays centralised",
                )


class _ScopeSets(ast.NodeVisitor):
    """Collect names that only ever hold unordered values in one scope.

    Tracks plain names (``seen = set()``) and, when ``track_self`` is
    on, instance attributes (``self._tracked: set[str] = set()``) under
    the key ``self.<attr>``.
    """

    def __init__(self, track_self: bool = False) -> None:
        self.candidates: dict[str, bool] = {}
        self._track_self = track_self

    # Nested scopes are analysed separately.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        for target in node.targets:
            key = self._target_key(target)
            if key:
                self._record(key, node.value, None)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:  # noqa: N802
        key = self._target_key(node.target)
        if key and node.value is not None:
            self._record(key, node.value, node.annotation)
        self.generic_visit(node)

    def _target_key(self, target: ast.AST) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if (
            self._track_self
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None

    def _record(self, name: str, value: ast.AST, annotation) -> None:
        unordered = _is_unordered_value(value, None) or _is_set_annotation(annotation)
        seen = self.candidates.get(name)
        # A name must hold unordered values on *every* assignment to
        # count; a single ordered rebind clears it (conservative).
        self.candidates[name] = unordered if seen is None else (seen and unordered)


def _is_set_annotation(annotation) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in {"set", "frozenset"}
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in {"Set", "FrozenSet", "AbstractSet", "MutableSet"}
    return False


_FS_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_FS_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _is_unordered_value(
    node: ast.AST, ctx: ModuleContext | None, names: dict[str, bool] | None = None
) -> bool:
    """True when ``node`` evaluates to a set or a filesystem listing."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and names is not None:
        return names.get(node.id, False)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and names is not None
    ):
        return names.get(f"self.{node.attr}", False)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered_value(node.left, ctx, names) or _is_unordered_value(
            node.right, ctx, names
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _FS_LISTING_METHODS:
                return True
            if func.attr in _SET_RETURNING_METHODS and _is_unordered_value(
                func.value, ctx, names
            ):
                return True
        if ctx is not None:
            resolved = ctx.resolve(func)
            if resolved in _FS_LISTING_CALLS:
                return True
    return False


@register
class UnorderedIteration(Rule):
    """DET003: iteration order taken from sets or filesystem listings.

    Set iteration order varies with hash seeding across platforms and
    ``os.listdir``/``glob`` order varies with the filesystem; anything
    serialized, hashed, or accumulated from such an iteration must go
    through ``sorted(...)`` first.  Order-insensitive sinks (``len``,
    ``sum``, ``min``/``max``, ``any``/``all``, membership, set algebra,
    building another set) are not flagged.
    """

    id = "DET003"
    summary = "iteration over an unordered set / filesystem listing"

    _LIST_SINKS = frozenset({"tuple", "list", "enumerate", "reversed"})

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        class_attrs = self._collect_class_attrs(ctx.tree)
        scopes: list[ast.AST] = [ctx.tree] + [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            yield from self._check_scope(ctx, scope, class_attrs.get(scope, {}))

    def _collect_class_attrs(self, tree: ast.AST) -> dict[ast.AST, dict[str, bool]]:
        """``self.<attr>`` unordered-ness per method, pooled per class:
        an attribute counts only if *every* assignment to it anywhere in
        the class is unordered."""
        method_attrs: dict[ast.AST, dict[str, bool]] = {}
        for klass in ast.walk(tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            collector = _ScopeSets(track_self=True)
            methods = [
                node
                for node in ast.walk(klass)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            for method in methods:
                for stmt in method.body:
                    collector.visit(stmt)
            pooled = {
                key: value
                for key, value in collector.candidates.items()
                if key.startswith("self.")
            }
            for method in methods:
                method_attrs[method] = pooled
        return method_attrs

    def _check_scope(
        self, ctx: ModuleContext, scope: ast.AST, inherited: dict[str, bool]
    ) -> Iterator[Finding]:
        collector = _ScopeSets()
        for stmt in scope.body:
            collector.visit(stmt)
        names = dict(inherited)
        names.update(collector.candidates)

        for node in self._scope_walk(scope):
            if isinstance(node, ast.For):
                if self._unordered(node.iter, ctx, names):
                    yield self._flag(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if self._unordered(gen.iter, ctx, names):
                        yield self._flag(ctx, gen.iter)
            elif isinstance(node, ast.Call):
                func = node.func
                is_sink = (
                    isinstance(func, ast.Name) and func.id in self._LIST_SINKS
                ) or (isinstance(func, ast.Attribute) and func.attr == "join")
                if is_sink:
                    for arg in node.args:
                        if self._unordered(arg, ctx, names):
                            yield self._flag(ctx, arg)

    def _scope_walk(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function scopes."""
        stack = list(
            scope.body if isinstance(scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)) else [scope]
        )
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                    continue
                stack.append(child)

    def _unordered(self, node: ast.AST, ctx: ModuleContext, names) -> bool:
        return _is_unordered_value(node, ctx, names)

    def _flag(self, ctx: ModuleContext, node: ast.AST) -> Finding:
        return self.finding(
            ctx, node,
            "iteration order comes from an unordered set or filesystem "
            "listing; wrap it in sorted(...) before it feeds serialized "
            "or accumulated output",
        )


@register
class MutableDefault(Rule):
    """BUG001: mutable default argument values shared across calls."""

    id = "BUG001"
    summary = "mutable default argument"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
    _MUTABLE_TAILS = (
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, ctx):
                    yield self.finding(
                        ctx, default,
                        "mutable default argument is shared across calls; "
                        "default to None and create it in the body",
                    )

    def _is_mutable(self, node: ast.AST, ctx: ModuleContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._MUTABLE_CALLS:
                return True
            resolved = ctx.resolve(func)
            return any(matches_tail(resolved, tail) for tail in self._MUTABLE_TAILS)
        return False


@register
class FloatEquality(Rule):
    """ML001: ``==``/``!=`` against float literals in numeric packages.

    Exact float comparison is occasionally correct (guarding an exact
    zero produced by subtraction of equal values) but usually a latent
    bug; genuine guards get a line suppression or a baseline entry.
    """

    id = "ML001"
    severity = SEVERITY_WARNING
    summary = "float equality comparison in numeric code"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package(_FLOAT_EQ_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant) and isinstance(operand.value, float)
                for operand in operands
            ):
                yield self.finding(
                    ctx, node,
                    "float equality comparison; prefer a tolerance "
                    "(math.isclose / np.isclose) or suppress if the exact "
                    "comparison is intended",
                )


@register
class ObsConfigureWithoutReset(Rule):
    """OBS001: ``obs.configure()`` enabled but never reset.

    CLI entry points that turn on metrics/tracing must restore the
    no-op default (``obs.reset()``) so an embedding process is not left
    with a hot registry — PR 1's observability contract.
    """

    id = "OBS001"
    severity = SEVERITY_WARNING
    summary = "obs.configure() without obs.reset() in the same module"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        configure_calls = [
            call
            for call in _calls(ctx.tree)
            if matches_tail(ctx.resolve(call.func), "obs.configure")
        ]
        if not configure_calls:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and matches_tail(
                ctx.resolve(node), "obs.reset"
            ):
                return
        for call in configure_calls:
            yield self.finding(
                ctx, call,
                "obs.configure() enables observability but this module never "
                "calls obs.reset(); restore the no-op default on exit",
            )
