"""Unit and property tests for repro.ml.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    false_positive_rate,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        y = [0, 1, 1, 0, 1]
        m = confusion_matrix(y, y)
        assert m[0, 0] == 2 and m[1, 1] == 3
        assert m[0, 1] == 0 and m[1, 0] == 0

    def test_total_equals_n(self):
        y_true = [0, 1, 1, 0, 1, 0]
        y_pred = [1, 1, 0, 0, 1, 1]
        assert confusion_matrix(y_true, y_pred).sum() == 6

    def test_explicit_labels_order(self):
        m = confusion_matrix([1, 1], [0, 1], labels=[0, 1])
        assert m[1, 0] == 1 and m[1, 1] == 1

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([], [])


class TestPrecisionRecallF1:
    def test_textbook_values(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        assert precision_score([1, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_no_positives_in_truth(self):
        assert recall_score([0, 0], [1, 0]) == 0.0

    def test_fpr_textbook(self):
        # 1 FP among 2 negatives.
        assert false_positive_rate([0, 0, 1], [1, 0, 1]) == pytest.approx(0.5)

    def test_pos_label_selects_class(self):
        y_true = ["a", "a", "b"]
        y_pred = ["a", "b", "b"]
        assert precision_score(y_true, y_pred, pos_label="a") == 1.0
        assert recall_score(y_true, y_pred, pos_label="a") == pytest.approx(0.5)

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=200)
    )
    def test_f1_is_harmonic_mean(self, pairs):
        y_true = [a for a, _ in pairs]
        y_pred = [b for _, b in pairs]
        p = precision_score(y_true, y_pred)
        r = recall_score(y_true, y_pred)
        f1 = f1_score(y_true, y_pred)
        assert 0.0 <= f1 <= 1.0
        if p + r > 0:
            assert f1 == pytest.approx(2 * p * r / (p + r))
        assert min(p, r) - 1e-12 <= f1 <= max(p, r) + 1e-12


class TestROC:
    def test_perfect_ranking_auc_is_one(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_inverted_ranking_auc_is_zero(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == pytest.approx(0.0)

    def test_constant_scores_auc_half(self):
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_auc_equals_mann_whitney_probability(self, rng):
        scores_neg = rng.normal(0, 1, 300)
        scores_pos = rng.normal(1, 1, 200)
        y = np.r_[np.zeros(300), np.ones(200)]
        scores = np.r_[scores_neg, scores_pos]
        auc = roc_auc_score(y, scores)
        # P(pos > neg) by brute force.
        wins = np.mean(scores_pos[:, None] > scores_neg[None, :])
        assert auc == pytest.approx(wins, abs=1e-9)

    def test_roc_curve_monotone(self, rng):
        y = rng.integers(0, 2, 100)
        s = rng.random(100)
        fpr, tpr, thresholds = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)

    def test_ties_collapsed(self):
        fpr, tpr, thresholds = roc_curve([0, 1, 0, 1], [0.5, 0.5, 0.2, 0.9])
        # Distinct thresholds only (plus the leading +inf).
        assert len(thresholds) == len(set(thresholds.tolist()))


class TestClassificationReport:
    def test_report_bundles_all_metrics(self):
        y_true = [0, 1, 1, 0, 1, 1]
        y_pred = [0, 1, 1, 1, 1, 0]
        report = classification_report(y_true, y_pred)
        assert report.accuracy == pytest.approx(accuracy_score(y_true, y_pred))
        assert report.support_positive == 4
        assert report.support_negative == 2
        row = report.as_row()
        assert set(row) == {"precision", "recall", "f1", "accuracy", "auc", "fpr"}

    def test_scores_improve_auc_over_hard_labels(self, rng):
        y = np.r_[np.zeros(50, int), np.ones(50, int)]
        scores = np.r_[rng.uniform(0, 0.6, 50), rng.uniform(0.4, 1.0, 50)]
        y_pred = (scores > 0.5).astype(int)
        with_scores = classification_report(y, y_pred, scores)
        without = classification_report(y, y_pred)
        assert with_scores.auc >= without.auc - 0.05
