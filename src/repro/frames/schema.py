"""Declared record schemas for the platform's snapshot families.

One :class:`RecordSchema` per wire record type the server ingests
(§3: initial, slow run, fast run, app change), plus the sign-in
``installs`` registry and the Play review records the crawlers join
against.  Field order matches the dataclasses in
:mod:`repro.platform.models` (with the ``_type`` wire tag last), so a
row reconstructed from a frame carries its keys in the same order as
the ingested payload dict.

Kinds map to numpy column dtypes:

========  =================================================
kind      column dtype
========  =================================================
float     ``float64`` (``object`` when the field is nullable)
int       ``int64``
bool      ``bool_``
str       ``object`` (python strings; nullable allowed)
object    ``object`` (nested lists / dicts, kept by reference)
========  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Field",
    "RecordSchema",
    "SLOW_RUN_SCHEMA",
    "FAST_RUN_SCHEMA",
    "APP_CHANGE_SCHEMA",
    "INITIAL_SCHEMA",
    "INSTALL_SCHEMA",
    "REVIEW_SCHEMA",
    "SCHEMA_BY_COLLECTION",
]

_KINDS = ("float", "int", "bool", "str", "object")


@dataclass(frozen=True)
class Field:
    """One column of a record schema."""

    name: str
    kind: str
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown field kind {self.kind!r}")

    @property
    def sortable(self) -> bool:
        """Whether a column-sorted index can be built on this field."""
        return self.kind in ("float", "int", "str") and not self.nullable


@dataclass(frozen=True)
class RecordSchema:
    """A named, ordered set of typed fields."""

    name: str
    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate field names in schema {self.name!r}")

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)


SLOW_RUN_SCHEMA = RecordSchema(
    "slow_run",
    (
        Field("install_id", "str"),
        Field("participant_id", "str"),
        Field("android_id", "str", nullable=True),
        Field("start", "float"),
        Field("end", "float"),
        Field("period", "float"),
        Field("accounts", "object"),
        Field("save_mode", "bool"),
        Field("stopped_apps", "object"),
        Field("accounts_permission", "bool"),
        Field("_type", "str"),
    ),
)

FAST_RUN_SCHEMA = RecordSchema(
    "fast_run",
    (
        Field("install_id", "str"),
        Field("participant_id", "str"),
        Field("start", "float"),
        Field("end", "float"),
        Field("period", "float"),
        Field("foreground", "str", nullable=True),
        Field("screen_on", "bool"),
        Field("battery", "float"),
        Field("usage_permission", "bool"),
        Field("_type", "str"),
    ),
)

APP_CHANGE_SCHEMA = RecordSchema(
    "app_change",
    (
        Field("install_id", "str"),
        Field("participant_id", "str"),
        Field("timestamp", "float"),
        Field("action", "str"),
        Field("package", "str"),
        Field("install_time", "float", nullable=True),
        Field("apk_hash", "str", nullable=True),
        Field("n_granted", "int"),
        Field("n_denied", "int"),
        Field("n_normal_permissions", "int"),
        Field("n_dangerous_permissions", "int"),
        Field("_type", "str"),
    ),
)

INITIAL_SCHEMA = RecordSchema(
    "initial",
    (
        Field("install_id", "str"),
        Field("participant_id", "str"),
        Field("android_id", "str", nullable=True),
        Field("api_level", "int"),
        Field("model", "str"),
        Field("manufacturer", "str"),
        Field("timestamp", "float"),
        Field("installed_apps", "object"),
        Field("_type", "str"),
    ),
)

INSTALL_SCHEMA = RecordSchema(
    "install",
    (
        Field("install_id", "str"),
        Field("participant_id", "str"),
        Field("android_id", "str", nullable=True),
        Field("registered_at", "float"),
    ),
)

REVIEW_SCHEMA = RecordSchema(
    "review",
    (
        Field("timestamp", "float"),
        Field("review_id", "int"),
        Field("app_package", "str"),
        Field("google_id", "str"),
        Field("rating", "int"),
    ),
)

#: Store collection name -> schema, for the collections the server owns.
SCHEMA_BY_COLLECTION: dict[str, RecordSchema] = {
    "initial_snapshots": INITIAL_SCHEMA,
    "slow_runs": SLOW_RUN_SCHEMA,
    "fast_runs": FAST_RUN_SCHEMA,
    "app_changes": APP_CHANGE_SCHEMA,
    "installs": INSTALL_SCHEMA,
}
