"""repro.statan — AST-based determinism & invariants linter.

A dependency-free static analyzer guarding the invariants that make
seeded simulator runs byte-identical.  Per-file rules:

* **DET001** — unseeded / global / hidden-fallback randomness;
* **DET002** — wall-clock reads bypassing the virtual clock;
* **DET003** — iteration order taken from sets or filesystem listings;
* **BUG001** — mutable default arguments;
* **ML001**  — float equality comparisons in numeric code;
* **OBS001** — ``obs.configure()`` without ``obs.reset()``.

Whole-program rules (run once against the indexed project — symbol
table, approximate call graph, statically extracted record schemas;
DESIGN.md §10):

* **DET004** — entry-point code transitively reaching a DET001-3 sink;
* **PAR001** — unpicklable / state-capturing callables submitted to a
  parallel executor;
* **PAR002** — worker randomness without an explicit pre-drawn seed;
* **SCH001** — store query literals inconsistent with the declared
  ``RecordSchema`` (unknown fields/operators, impossible comparisons);
* **SCH002** — ingest writes or row reads on undeclared fields.

Run it as ``python -m repro lint [--format json] [--n-jobs N]
[--changed]``.  Inline suppressions use ``# statan: disable=RULE``
(same line) or ``# statan: disable-file=RULE``; pre-existing findings
live in the committed ``statan-baseline.json`` and only *new* findings
fail the gate (stale baseline entries fail it too, with the offending
fingerprints listed).  See README "Static analysis" for the workflow.
"""

from __future__ import annotations

from . import checks, project_checks, schema_checks  # noqa: F401  (register rules)
from .baseline import Baseline, load_baseline, partition, save_baseline
from .engine import (
    analyze_paths,
    analyze_source,
    analyze_tree,
    collect_suppressions,
)
from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from .project import ProjectContext
from .reporters import LintResult, render_json, render_text, summary_line
from .rules import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    get_rule,
    register,
    register_project,
    rule_ids,
)

__all__ = [
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "rule_ids",
    "get_rule",
    "analyze_source",
    "analyze_paths",
    "analyze_tree",
    "collect_suppressions",
    "ProjectContext",
    "Baseline",
    "load_baseline",
    "save_baseline",
    "partition",
    "LintResult",
    "render_text",
    "render_json",
    "summary_line",
]
