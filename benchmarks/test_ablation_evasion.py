"""Ablation: evasion cost (§9 "Worker Strategy Evolution").

Workers who slow their reviews and cut their volume to evade detection
also cut the fraud they deliver.  Runs small evasion worlds and traces
the detection-recall vs fraud-throughput frontier.
"""

from repro.core import DetectionPipeline
from repro.experiments.common import ExperimentReport
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def _run(delay_mult: float, volume_mult: float) -> tuple[float, float]:
    config = SimulationConfig.small().scaled(
        worker_review_delay_multiplier=delay_mult,
        worker_review_volume_multiplier=volume_mult,
    )
    data = run_study(config)
    result = DetectionPipeline(n_splits=5).run(data)
    workers = result.worker_verdicts()
    recall = sum(1 for v in workers if v.predicted_worker) / max(len(workers), 1)
    worker_obs = [o for o in result.observations if o.is_worker]
    reviews = sum(o.total_account_reviews for o in worker_obs) / max(len(worker_obs), 1)
    return recall, reviews


def test_ablation_evasion_cost(benchmark, emit):
    scenarios = [
        ("baseline", 1.0, 1.0),
        ("3x slower reviews", 3.0, 1.0),
        ("slow + 25% volume", 4.0, 0.25),
    ]
    rows = []
    metrics = {}
    for label, delay, volume in scenarios:
        recall, reviews = _run(delay, volume)
        rows.append((label, delay, volume, recall, reviews))
        metrics[f"recall[{label}]"] = recall
        metrics[f"reviews[{label}]"] = reviews

    benchmark.pedantic(_run, args=(1.0, 1.0), rounds=1, iterations=1)
    emit(
        ExperimentReport(
            "ablation_evasion",
            "Evasion cost: detection recall vs fraud throughput (§9)",
            lines=[
                render_table(
                    ["strategy", "delay x", "volume x", "worker recall", "reviews/device"],
                    rows,
                )
            ],
            metrics=metrics,
        )
    )
    # The §9 tradeoff: deep evasion must slash delivered fraud.
    assert (
        metrics["reviews[slow + 25% volume]"] < 0.6 * metrics["reviews[baseline]"]
    )
    # And the detector holds up well at baseline behaviour.
    assert metrics["recall[baseline]"] >= 0.9
