"""In-memory document store with Mongo-like query operators.

The paper's backend persists snapshots into MongoDB (§3).  This store
provides the same access pattern for the analysis code: named
collections of documents, a small operator language (``$eq``, ``$ne``,
``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$exists``), and
single-field indexes for the hot lookups (by install id).

Two interchangeable backends implement the same ``find`` / ``find_one``
/ ``count`` / ``distinct`` API:

* :class:`Collection` — one python dict per document, per-document
  query matching, hash indexes.  The historical path.
* :class:`ColumnarCollection` — documents live in a
  :class:`~repro.frames.ColumnFrame` (typed when the collection name
  has a declared schema, generic otherwise); queries compile once per
  shape into cached :class:`~repro.frames.QueryPlan`s that are seeded
  by incremental indexes (hash buckets for equality, a sorted run plus
  pending delta for ranges) and evaluated over progressively narrowed
  position sets.

The backend is chosen per :class:`DocumentStore` (``backend=`` or the
``REPRO_STORE_BACKEND`` environment variable) and is contractually
invisible: both return the same documents in the same order for any
query (see ``tests/platform/test_store_query.py``).
"""

from __future__ import annotations

import operator
import os
from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Any, Callable, Iterator

import numpy as np

from ..frames import (
    SCHEMA_BY_COLLECTION,
    ColumnFrame,
    QueryPlan,
    compile_plan,
    plan_key,
)
from ..frames.frame import _ABSENT, SchemaMismatchError

__all__ = ["DocumentStore", "Collection", "ColumnarCollection"]

#: Sentinel distinguishing "key absent" from an explicit ``None`` value,
#: so ``$exists`` tests presence while every other operator keeps the
#: historical reads-as-None behaviour for missing keys.
_MISSING = object()


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda value, operand: value == operand,
    "$ne": lambda value, operand: value != operand,
    "$gt": lambda value, operand: value is not None and value > operand,
    "$gte": lambda value, operand: value is not None and value >= operand,
    "$lt": lambda value, operand: value is not None and value < operand,
    "$lte": lambda value, operand: value is not None and value <= operand,
    "$in": lambda value, operand: value in operand,
    "$exists": lambda value, operand: (value is not _MISSING) == bool(operand),
}


def _matches(document, query: dict) -> bool:
    for fieldname, condition in query.items():
        raw = document.get(fieldname, _MISSING)
        value = None if raw is _MISSING else raw
        if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
            for op, operand in condition.items():
                handler = _OPERATORS.get(op)
                if handler is None:
                    raise ValueError(f"unknown query operator {op!r}")
                if not handler(raw if op == "$exists" else value, operand):
                    return False
        elif value != condition:
            return False
    return True


class Collection:
    """One named collection of dict documents (the historical backend)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: list[dict] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}

    def __len__(self) -> int:
        return len(self._documents)

    def insert(self, document: dict) -> None:
        if not isinstance(document, dict):
            raise TypeError("documents must be dicts")
        position = len(self._documents)
        self._documents.append(document)
        for fieldname, index in self._indexes.items():
            index[document.get(fieldname)].append(position)

    def insert_many(self, documents) -> int:
        count = 0
        for document in documents:
            self.insert(document)
            count += 1
        return count

    def create_index(self, fieldname: str) -> None:
        if fieldname in self._indexes:
            return
        index: dict[Any, list[int]] = defaultdict(list)
        for position, document in enumerate(self._documents):
            index[document.get(fieldname)].append(position)
        self._indexes[fieldname] = index

    # -- transactional marks -------------------------------------------
    def mark(self) -> int:
        """Watermark for :meth:`rollback_to` (current document count)."""
        return len(self._documents)

    def rollback_to(self, mark: int) -> None:
        """Undo every insert since ``mark`` (atomic chunk commit: a
        receive that fails mid-insert must not leave partial state).
        Index buckets append positions in insertion order, so the
        entries to drop are exactly each bucket's tail."""
        while len(self._documents) > mark:
            document = self._documents.pop()
            for fieldname, index in self._indexes.items():
                bucket = index.get(document.get(fieldname))
                if bucket:
                    bucket.pop()

    def _candidates(self, query: dict) -> Iterator[dict]:
        # Use an index when the query has an equality match on an
        # indexed field; otherwise scan.
        for fieldname, index in self._indexes.items():
            condition = query.get(fieldname)
            if condition is not None and not isinstance(condition, dict):
                for position in index.get(condition, ()):
                    yield self._documents[position]
                return
        yield from self._documents

    def find(self, query: dict | None = None) -> list[dict]:
        query = query or {}
        return [doc for doc in self._candidates(query) if _matches(doc, query)]

    def find_one(self, query: dict | None = None) -> dict | None:
        query = query or {}
        for doc in self._candidates(query):
            if _matches(doc, query):
                return doc
        return None

    def count(self, query: dict | None = None) -> int:
        if not query:
            return len(self._documents)
        return sum(1 for doc in self._candidates(query) if _matches(doc, query))

    def distinct(self, fieldname: str, query: dict | None = None) -> list:
        query = query or {}
        seen: set = set()
        for doc in self._candidates(query):
            if not _matches(doc, query):
                continue
            value = doc.get(fieldname)
            if isinstance(value, (list, tuple)):
                seen.update(value)
            else:
                seen.add(value)
        seen.discard(None)
        return sorted(seen, key=repr)


_ORDERING_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "$gt": operator.gt,
    "$gte": operator.ge,
    "$lt": operator.lt,
    "$lte": operator.le,
}


class _SortedColumnIndex:
    """Incrementally maintained index over one sortable typed column.

    Two probe structures; neither is ever invalidated or rebuilt from
    scratch:

    * a hash map ``key -> positions`` (ascending = insertion order),
      kept current on every insert — the O(1) fast-path for equality
      probes, and the only per-insert cost;
    * a sorted run (``_keys``/``_positions``, ties in insertion order)
      covering positions below a ``_filled`` watermark.  Positions at
      or above the watermark form the *pending delta*; their keys are
      read straight off the collection's live column list at probe
      time, so inserts pay nothing to maintain it.  Range probes
      bisect the sorted run and linearly scan the delta alongside it;
      when the delta outgrows ``max(_MERGE_MIN, run // 8)`` at probe
      time it is sorted once and linearly merged into the run.
      Interleaved insert/range-query workloads therefore pay an
      amortized O(log n) per insert instead of a full argsort rebuild
      per query, and insert-only or equality-only workloads never pay
      the sort at all.

    ``None`` keys never satisfy an ordering operator (the dict
    backend's ``value is not None and ...`` guard), so they are
    skipped by the delta scan and dropped at merge time — which also
    keeps the run sortable for nullable columns.

    Probe results are *candidates*: the caller re-verifies them
    through the query plan (e.g. a hash bucket keyed by NaN is found
    by identity, but equality must still reject it — exactly like the
    dict backend's probe-then-``_matches`` sequence).
    """

    __slots__ = ("_keys", "_positions", "_filled", "_buckets", "_numeric")

    _MERGE_MIN = 32

    def __init__(self, numeric: bool, values: list | None = None) -> None:
        self._numeric = numeric
        self._keys: list = []
        self._positions: list[int] = []
        self._filled = 0
        self._buckets: dict[Any, list[int]] = {}
        if values:
            self.add_batch(values, 0)

    def add(self, value, position: int) -> None:
        try:
            self._buckets[value].append(position)
        except KeyError:
            self._buckets[value] = [position]

    def add_batch(self, values: list, start: int) -> None:
        buckets = self._buckets
        position = start
        for value in values:
            # try/except beats get()-then-test: after warmup almost
            # every key hits, and a no-raise try block is free.
            try:
                buckets[value].append(position)
            except KeyError:
                buckets[value] = [position]
            position += 1

    def _comparable(self, operand) -> bool:
        # Operands that cannot compare against the column never match
        # (mirrors the historical columnar behaviour; the dict backend's
        # hash probe likewise finds no bucket for a foreign-typed key).
        if self._numeric:
            return isinstance(operand, (int, float))
        return isinstance(operand, str)

    def equality_positions(self, operand) -> list[int]:
        """Candidate positions for ``column == operand`` (ascending)."""
        if not self._comparable(operand):
            return []
        return self._buckets.get(operand) or []

    def range_positions(self, values: list, condition: dict) -> list[int] | None:
        """Candidate positions for the ordering operators of an
        operator-form condition, or ``None`` when no ordering bound is
        usable (the caller falls back to the planner's full path, which
        preserves scalar semantics such as ``TypeError`` on
        incomparable operands).  ``values`` is the live column list the
        index shadows; everything past the watermark is the delta."""
        bounds = [
            (op, operand)
            for op, operand in condition.items()
            if op in _ORDERING_OPS
        ]
        if not bounds or not all(
            self._comparable(operand) for _op, operand in bounds
        ):
            return None
        if len(values) - self._filled > max(self._MERGE_MIN, self._filled // 8):
            self._merge(values)
        lo, hi = 0, len(self._keys)
        for op, operand in bounds:
            if op == "$gt":
                lo = max(lo, bisect_right(self._keys, operand))
            elif op == "$gte":
                lo = max(lo, bisect_left(self._keys, operand))
            elif op == "$lt":
                hi = min(hi, bisect_left(self._keys, operand))
            else:
                hi = min(hi, bisect_right(self._keys, operand))
        out = list(self._positions[lo:hi]) if lo < hi else []
        ops = _ORDERING_OPS
        for position in range(self._filled, len(values)):
            key = values[position]
            if key is not None and all(
                ops[op](key, operand) for op, operand in bounds
            ):
                out.append(position)
        return out

    def _merge(self, values: list) -> None:
        """Fold the pending delta into the sorted run (one small sort +
        one linear merge).  Delta positions are all newer than run
        positions, so on key ties run entries stay first and the
        ties-in-insertion-order invariant is preserved."""
        tail = sorted(
            (
                position
                for position in range(self._filled, len(values))
                if values[position] is not None
            ),
            key=values.__getitem__,
        )
        keys, positions = self._keys, self._positions
        merged_keys: list = []
        merged_positions: list[int] = []
        i, total = 0, len(keys)
        for position in tail:
            key = values[position]
            while i < total and keys[i] <= key:
                merged_keys.append(keys[i])
                merged_positions.append(positions[i])
                i += 1
            merged_keys.append(key)
            merged_positions.append(position)
        merged_keys.extend(keys[i:])
        merged_positions.extend(positions[i:])
        self._keys = merged_keys
        self._positions = merged_positions
        self._filled = len(values)


def _query_cache_key(query: dict) -> tuple:
    """Hashable identity of a concrete query (fields, ops, operand
    values in query order).  Unhashable operands surface as
    ``TypeError`` when the key is used, which callers treat as
    uncacheable."""
    return tuple(
        (fieldname, tuple(condition.items()))
        if isinstance(condition, dict)
        else (fieldname, condition)
        for fieldname, condition in query.items()
    )


class ColumnarCollection:
    """One named collection backed by a :class:`ColumnFrame`.

    Same public API and same results as :class:`Collection`.  Reads
    compile the query into a :class:`~repro.frames.QueryPlan` cached
    per query *shape*, seed it from an index probe when one applies
    (hash bucket for equality, sorted-run bisection for ranges), and
    evaluate the remaining predicates over progressively narrowed
    position sets.  Materialized rows are cached per position, so
    repeated finds hand back the same dict objects — exactly what the
    dict backend does with its stored documents.

    A collection whose name has a declared schema stores typed
    columns; if a document ever fails the schema (only possible
    outside the server's validated ingest path), the frame degrades
    once to generic columns so the store keeps the dict backend's
    accept-anything behaviour.

    Writes are *staged*: ``insert``/``insert_many`` only type-check
    their documents (so ``TypeError`` still raises at the offending
    record with earlier ones kept, like the dict backend) and append
    them to a write-optimized backlog.  The first read — any query,
    index build, or ``frame`` access — merges the backlog into the
    columns and indexes in one batch (C-Store's write-store /
    read-store split).  Ingest latency is therefore O(1) per document
    and the row-to-column transposition is paid once per
    ingest-then-read cycle, at full batch width.  A schema mismatch
    surfaces at merge time as the same degrade-to-generic the eager
    path performed; the observable store state is identical.
    """

    def __init__(self, name: str, schema=None) -> None:
        self.name = name
        self._frame = ColumnFrame(schema)
        self._staged: list[dict] = []
        self._indexes: dict[str, _SortedColumnIndex | dict[Any, list[int]]] = {}
        self._plans: dict[tuple, QueryPlan] = {}
        self._rows: dict[int, dict] = {}
        self._results: dict[tuple, tuple[int, Any]] = {}

    @property
    def frame(self) -> ColumnFrame:
        """The read-optimized column store, with all staged writes
        merged in."""
        if self._staged:
            self._flush()
        return self._frame

    def compact(self) -> None:
        """Merge staged writes now instead of at the next read."""
        if self._staged:
            self._flush()

    def __len__(self) -> int:
        return len(self._frame) + len(self._staged)

    # -- writes ---------------------------------------------------------
    def insert(self, document: dict) -> None:
        if not isinstance(document, dict):
            raise TypeError("documents must be dicts")
        self._staged.append(document)

    def insert_many(self, documents) -> int:
        documents = (
            documents
            if isinstance(documents, (list, tuple))
            else list(documents)
        )
        if all(isinstance(document, dict) for document in documents):
            self._staged.extend(documents)
            return len(documents)
        # Stage per-document so the TypeError raises at the offending
        # record with earlier ones kept — the dict backend's
        # partial-progress behaviour.
        count = 0
        for document in documents:
            self.insert(document)
            count += 1
        return count

    def _flush(self) -> None:
        staged, self._staged = self._staged, []
        try:
            self._insert_batch(staged)
            return
        except SchemaMismatchError:
            # Frame untouched (extend_batch stages or rolls back before
            # raising); replay per-document to degrade at exactly the
            # offending record.
            pass
        for document in staged:
            self._insert_one(document)

    def _insert_one(self, document: dict) -> None:
        try:
            self._frame.append(document)
        except SchemaMismatchError:
            self._degrade_to_generic()
            self._frame.append(document)
        position = len(self._frame) - 1
        for fieldname, index in self._indexes.items():
            if isinstance(index, _SortedColumnIndex):
                index.add(document.get(fieldname), position)
            else:
                index[document.get(fieldname)].append(position)

    def _insert_batch(self, documents) -> int:
        start = len(self._frame)
        count = self._frame.extend_batch(documents)
        for fieldname, index in self._indexes.items():
            if isinstance(index, _SortedColumnIndex):
                # Sorted indexes only shadow typed columns, so the
                # freshly extended column tail *is* the batch's values —
                # a C-level slice instead of a per-document listcomp.
                index.add_batch(self._frame.values(fieldname)[start:], start)
            else:
                for offset, document in enumerate(documents):
                    index[document.get(fieldname)].append(start + offset)
        return count

    # -- transactional marks -------------------------------------------
    def mark(self) -> tuple[int, int]:
        """Watermark for :meth:`rollback_to`: (merged rows, staged rows).
        Valid only while no read merges the backlog — exactly the
        server's receive window, which never reads mid-chunk."""
        return (len(self._frame), len(self._staged))

    def rollback_to(self, mark: tuple[int, int]) -> None:
        """Undo every insert since ``mark`` by truncating the staged
        backlog (inserts only ever stage, so the frame and its indexes
        were never touched and all length-stamped caches stay valid)."""
        frame_len, staged_len = mark
        if len(self._frame) != frame_len:
            raise RuntimeError(
                f"collection {self.name!r}: staged writes were merged "
                "after the mark was taken; cannot roll back"
            )
        del self._staged[staged_len:]

    def _degrade_to_generic(self) -> None:
        generic = ColumnFrame()
        for i in range(len(self._frame)):
            generic.append(self._frame.row(i))
        self._frame = generic
        # Sorted indexes probe schema-typed columns; rebuild as hash maps.
        for fieldname in list(self._indexes):
            del self._indexes[fieldname]
            self.create_index(fieldname)

    # -- indexes --------------------------------------------------------
    def create_index(self, fieldname: str) -> None:
        if fieldname in self._indexes:
            return
        if self._staged:
            self._flush()
        schema = self._frame.schema
        if schema is not None and fieldname in schema and schema.field(fieldname).sortable:
            index: _SortedColumnIndex | dict = _SortedColumnIndex(
                numeric=schema.field(fieldname).kind in ("float", "int"),
                values=self.frame.values(fieldname),
            )
        else:
            index = defaultdict(list)
            for position, value in enumerate(self.frame.cells(fieldname)):
                index[value].append(position)
        self._indexes[fieldname] = index

    # -- reads ----------------------------------------------------------
    def _plan_for(self, query: dict) -> QueryPlan:
        key = plan_key(query)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plans[key] = compile_plan(query)
        return plan

    def _probe(self, query: dict) -> list[int] | None:
        """Index-probe candidate positions (ascending), or ``None``
        when no index applies.

        Mirrors the dict backend's selection rule — the first index
        with a plain equality condition wins — and additionally seeds
        ordering conditions on sorted-indexed fields by bisection.
        Probe results are candidates only; the plan re-verifies every
        predicate including the probed one.
        """
        for fieldname, index in self._indexes.items():
            condition = query.get(fieldname)
            if condition is None:
                continue
            sorted_index = isinstance(index, _SortedColumnIndex)
            if not isinstance(condition, dict):
                if sorted_index:
                    return index.equality_positions(condition)
                return list(index.get(condition, ()))
            if sorted_index and any(key.startswith("$") for key in condition):
                probe = index.range_positions(
                    self.frame.values(fieldname), condition
                )
                if probe is not None:
                    probe.sort()  # key-ordered run slice -> insertion order
                    return probe
        return None

    def _positions_for(self, query: dict) -> np.ndarray:
        plan = self._plan_for(query)
        return plan.positions(self.frame, query, seed=self._probe(query))

    def _row(self, position: int) -> dict:
        row = self._rows.get(position)
        if row is None:
            row = self._rows[position] = self.frame.row(position)
        return row

    def _cached(self, key: tuple, compute):
        """Length-stamped query-result cache.

        The store is append-only, so a result is valid exactly while
        ``len(frame)`` is unchanged; any insert bumps the stamp and the
        next read recomputes.  Operand equivalence follows dict-key
        semantics (``1`` and ``True`` share a slot), which is sound
        because every query operator compares with ``==`` too.  Keys
        with unhashable operands (e.g. an ``$in`` list) just bypass the
        cache.  This is what makes the server's repeated per-install
        ``find``/``find_one`` calls O(1) after the first.
        """
        try:
            hit = self._results.get(key)
        except TypeError:
            return compute()
        stamp = len(self.frame)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        value = compute()
        self._results[key] = (stamp, value)
        return value

    def _find_rows(self, query: dict) -> list[dict]:
        positions = self._positions_for(query)
        rows = self._rows
        out = []
        for position in positions.tolist():
            row = rows.get(position)
            if row is None:
                row = rows[position] = self.frame.row(position)
            out.append(row)
        return out

    def find(self, query: dict | None = None) -> list[dict]:
        query = query or {}
        rows = self._cached(
            ("find", _query_cache_key(query)), lambda: self._find_rows(query)
        )
        return list(rows)

    def _find_first(self, query: dict) -> dict | None:
        positions = self._positions_for(query)
        if len(positions) == 0:
            return None
        return self._row(int(positions[0]))

    def find_one(self, query: dict | None = None) -> dict | None:
        query = query or {}
        return self._cached(
            ("one", _query_cache_key(query)), lambda: self._find_first(query)
        )

    def find_views(self, query: dict | None = None) -> list:
        """Like :meth:`find`, but zero-copy :class:`FrameRow` views."""
        positions = self._positions_for(query or {})
        return [self.frame.view(position) for position in positions.tolist()]

    def count(self, query: dict | None = None) -> int:
        query = query or {}
        if not query:
            return len(self.frame)
        plan = self._plan_for(query)
        return self._cached(
            ("count", _query_cache_key(query)),
            lambda: plan.count(self.frame, query, seed=self._probe(query)),
        )

    def distinct(self, fieldname: str, query: dict | None = None) -> list:
        query = query or {}
        values = self._cached(
            ("distinct", fieldname, _query_cache_key(query)),
            lambda: self._distinct_values(fieldname, query),
        )
        return list(values)

    def _distinct_values(self, fieldname: str, query: dict) -> list:
        positions = None if not query else self._positions_for(query)
        kind = self.frame.native_kind(fieldname)
        if kind in ("float", "int", "bool"):
            # Native-dtype column: one C-level unique pass.  A native
            # scalar column cannot hold list/tuple cells or None, so no
            # flattening or discard is needed; validated ingest keeps
            # the python values type-homogeneous, so ``.tolist()``
            # round-trips them bit-identically.  Floats fall back to
            # the set path when NaN or signed zero could diverge from
            # python set semantics (NaN objects are identity-distinct
            # in a set; -0.0 == 0.0 but reprs differ).
            array = self.frame.column(fieldname)
            if positions is not None:
                array = array[positions]
            if kind != "float" or (
                not np.isnan(array).any()
                and not np.signbit(array[array == 0.0]).any()
            ):
                return sorted(np.unique(array).tolist(), key=repr)
        if positions is None:
            if self.frame.schema is not None and self.frame.has_column(fieldname):
                gathered = self.frame.values(fieldname)
            else:
                gathered = list(self.frame.cells(fieldname))
        else:
            column = self.frame._columns.get(fieldname)
            if column is None:
                gathered = []
            else:
                gathered = [column[p] for p in positions.tolist()]
                if self.frame.schema is None:
                    gathered = [
                        None if value is _ABSENT else value for value in gathered
                    ]
        if any(isinstance(value, (list, tuple)) for value in gathered):
            seen: set = set()
            for value in gathered:
                if isinstance(value, (list, tuple)):
                    seen.update(value)
                else:
                    seen.add(value)
        else:
            seen = set(gathered)
        seen.discard(None)
        return sorted(seen, key=repr)


class DocumentStore:
    """A set of named collections (the Mongo database).

    ``backend`` selects the collection implementation: ``"columnar"``
    (the default — typed :class:`ColumnFrame` storage with vectorized
    queries) or ``"dict"`` (one python dict per document).  The
    ``REPRO_STORE_BACKEND`` environment variable overrides the default
    for processes that cannot pass the argument (CLI, CI).
    """

    def __init__(self, backend: str | None = None) -> None:
        if backend is None:
            backend = os.environ.get("REPRO_STORE_BACKEND", "columnar")
        if backend not in ("dict", "columnar"):
            raise ValueError(f"unknown store backend {backend!r}")
        self.backend = backend
        self._collections: dict[str, Collection | ColumnarCollection] = {}

    def collection(self, name: str) -> Collection | ColumnarCollection:
        if name not in self._collections:
            if self.backend == "columnar":
                self._collections[name] = ColumnarCollection(
                    name, schema=SCHEMA_BY_COLLECTION.get(name)
                )
            else:
                self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection | ColumnarCollection:
        return self.collection(name)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def compact(self) -> None:
        """Merge every collection's staged writes into its
        read-optimized columns (the tuple-mover step; a no-op for the
        dict backend and for already-settled collections).  Ingest
        pipelines call this once when a load finishes so the first
        analytical read doesn't pay the merge."""
        for collection in self._collections.values():
            compact = getattr(collection, "compact", None)
            if compact is not None:
                compact()

    def total_documents(self) -> int:
        return sum(len(c) for c in self._collections.values())
