"""End-to-end exactly-once ingest under injected faults.

The harness wires the real client pieces to the real server pieces:
``DataBuffer`` (backoff + retry budget) → ``FaultyTransport`` (loss,
corruption, ack loss) → ``FaultableServer`` (overload, store rejection,
receive crashes) → ``DocumentStore``.  Whatever the fault schedule, the
store must end up holding every record exactly once — and a crashed
receive must never leave a partial chunk behind.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultPlan,
    FaultSpec,
    FaultableServer,
    FaultyTransport,
    ServerCrash,
    StoreRejected,
)
from repro.platform.buffer import DataBuffer, chunk_hash
from repro.platform.models import FastSnapshotRun
from repro.platform.server import _COLLECTIONS
from repro.platform.store import DocumentStore
from repro.platform.transport import Transport

DAY_S = 86_400.0


def fast_run(i: int) -> FastSnapshotRun:
    return FastSnapshotRun(
        install_id="inst",
        participant_id="100001",
        start=float(i),
        end=float(i) + 60.0,
        period=5.0,
        foreground=f"com.app{i}",
        screen_on=True,
        battery=0.9,
    )


def sealed_buffer(n_records: int, threshold: int = 400, **kwargs) -> DataBuffer:
    buffer = DataBuffer(fast_threshold_bytes=threshold, **kwargs)
    for i in range(n_records):
        buffer.append("fast", fast_run(i))
    buffer.seal_all()
    return buffer


def chunk_bytes(n_records: int = 8) -> bytes:
    """One sealed compressed chunk holding ``n_records`` fast runs."""
    buffer = sealed_buffer(n_records, threshold=10**6)
    return buffer._pending[0].data


def make_server(plan: FaultPlan, seed: int = 0) -> FaultableServer:
    return FaultableServer(
        DocumentStore(), plan=plan, rng=np.random.default_rng([seed, 0x5E4])
    )


def collection_contents(server) -> dict[str, list[tuple]]:
    """Every snapshot collection's documents as hashable rows."""
    return {
        name: sorted(
            tuple(sorted(doc.items())) for doc in server.store[name].find()
        )
        for name in _COLLECTIONS.values()
    }


def assert_no_duplicates(server) -> None:
    for name, rows in collection_contents(server).items():
        assert len(rows) == len(set(rows)), f"duplicate records in {name}"


class TestAckLossRetransmission:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 30))
    def test_property_retransmits_never_duplicate(self, seed, n_records):
        """Satellite: ack loss after durable store plus retransmission
        yields zero duplicate records in every collection — whatever the
        seeded loss/ack-loss schedule does."""
        plan = FaultPlan(
            transport_loss=FaultSpec(0.3),
            ack_loss=FaultSpec(0.4),
        )
        server = make_server(plan, seed)
        transport = FaultyTransport(
            server, plan=plan, rng=np.random.default_rng([seed, 0x7A0])
        )
        buffer = sealed_buffer(n_records)
        buffer.drain(
            transport,
            now=0.0,
            deadline=10**8,
            rng=np.random.default_rng([seed, 0xB0]),
        )
        assert buffer.pending_chunks == 0
        fast_docs = server.store["fast_runs"].find()
        assert sorted(d["start"] for d in fast_docs) == [
            float(i) for i in range(n_records)
        ]
        assert_no_duplicates(server)
        if transport.acks_lost:
            assert server.stats.duplicate_chunks > 0

    def test_certain_ack_loss_single_server_copy(self):
        """With every ack lost the client retries into its budget and
        dead-letters, yet the server holds exactly one copy; healing the
        channel and requeueing reconciles the client's view."""
        plan = FaultPlan(ack_loss=FaultSpec(1.0), retry_budget=4)
        server = make_server(plan)
        transport = FaultyTransport(
            server, plan=plan, rng=np.random.default_rng([0, 0x7A0])
        )
        buffer = sealed_buffer(3, threshold=10**6, retry_budget=plan.retry_budget)
        buffer.drain(transport, now=0.0, deadline=10**8)
        assert buffer.dead_letter_chunks == 1  # client never saw an ack
        assert server.stats.chunks_received == 4  # original + 3 retransmits
        assert server.stats.duplicate_chunks == 3
        assert len(server.store["fast_runs"]) == 3  # exactly one copy
        assert_no_duplicates(server)

        buffer.requeue_dead_letters()
        transport.heal()
        delivered = buffer.drain(transport, now=0.0, deadline=10**8)
        assert delivered == 3
        assert buffer.pending_chunks == buffer.dead_letter_chunks == 0
        assert len(server.store["fast_runs"]) == 3  # dedup absorbed the replay
        assert_no_duplicates(server)


class TestCrashMidChunk:
    def test_store_never_exposes_a_partial_chunk(self):
        """Satellite: a receive crash mid-chunk (a prefix of the records
        already inserted) leaves every collection exactly as it was."""
        plan = FaultPlan(receive_crash=FaultSpec(1.0))
        server = make_server(plan, seed=3)
        data = chunk_bytes()
        before = collection_contents(server)
        crashes = 0
        for _ in range(5):  # several crash points (seeded prefix draw)
            with pytest.raises(ServerCrash):
                server.receive_chunk("fast", data)
            crashes += 1
            assert collection_contents(server) == before
        assert server.stats.chunk_rollbacks == crashes
        assert server.stats.records_inserted == 0

        server.heal()
        ack = server.receive_chunk("fast", data)
        assert ack == chunk_hash(data)
        assert len(server.store["fast_runs"]) == 8
        # The post-crash redelivery is remembered: replaying it dedups.
        server.receive_chunk("fast", data)
        assert server.stats.duplicate_chunks == 1
        assert len(server.store["fast_runs"]) == 8
        assert_no_duplicates(server)

    def test_crash_rollback_both_store_backends(self):
        for backend in ("dict", "columnar"):
            plan = FaultPlan(receive_crash=FaultSpec(1.0))
            server = FaultableServer(
                DocumentStore(backend=backend),
                plan=plan,
                rng=np.random.default_rng([9, 0x5E4]),
            )
            data = chunk_bytes()
            with pytest.raises(ServerCrash):
                server.receive_chunk("fast", data)
            assert len(server.store["fast_runs"]) == 0, backend
            server.heal()
            server.receive_chunk("fast", data)
            assert len(server.store["fast_runs"]) == 8, backend


class TestStoreRejectAndRedelivery:
    def test_day_windowed_rejection_then_clean_retry(self):
        plan = FaultPlan(store_reject=FaultSpec(1.0, days=(0,)))
        server = make_server(plan)
        data = chunk_bytes(4)
        with pytest.raises(StoreRejected):
            server.receive_chunk("fast", data)
        server.queue_redelivery("fast", data)
        assert server.redelivery_backlog == 1
        assert len(server.store["fast_runs"]) == 0

        server.set_day(1)  # rejection window over
        assert server.redeliver_pending() == 1
        assert server.redelivery_backlog == 0
        assert server.redelivered_chunks == 1
        assert len(server.store["fast_runs"]) == 4
        # The redelivered chunk is remembered: a late client retry dedups.
        server.receive_chunk("fast", data)
        assert server.stats.duplicate_chunks == 1
        assert len(server.store["fast_runs"]) == 4

    def test_redelivery_reparks_while_fault_persists(self):
        plan = FaultPlan(store_reject=FaultSpec(1.0))
        server = make_server(plan)
        server.queue_redelivery("fast", chunk_bytes(2))
        assert server.redeliver_pending() == 0
        assert server.redelivery_backlog == 1
        assert server.drain_redelivery() == 1  # heal + deliver
        assert server.redelivery_backlog == 0
        assert len(server.store["fast_runs"]) == 2


class TestOverloadCircuitBreaker:
    def test_throttle_backs_off_then_delivers_once(self):
        plan = FaultPlan(
            overload=FaultSpec(1.0, days=(0,)), overload_retry_after_s=1800.0
        )
        server = make_server(plan)
        transport = Transport(server)
        buffer = sealed_buffer(5, threshold=10**6, retry_budget=8)
        assert buffer.flush(transport, 0.0) == 0
        assert buffer.throttle_trips == 1
        assert buffer._circuit_open_until == 1800.0
        assert buffer._pending[0].attempts == 0  # throttle burns no budget
        assert len(server.store["fast_runs"]) == 0

        server.set_day(1)  # overload window over
        delivered = buffer.drain(transport, now=0.0, deadline=DAY_S)
        assert delivered == 5
        assert len(server.store["fast_runs"]) == 5
        assert_no_duplicates(server)

    def test_fault_counts_track_overload(self):
        plan = FaultPlan(overload=FaultSpec(1.0))
        server = make_server(plan)
        transport = Transport(server)
        buffer = sealed_buffer(2, threshold=10**6)
        buffer.flush(transport, 0.0)
        assert server.fault_counts["overload"] == 1


class TestDedupWindow:
    def test_fifo_eviction_bounds_the_memory(self):
        chunk_a = chunk_bytes(2)
        chunk_b = chunk_bytes(3)
        server = make_server(FaultPlan(dedup_window=1))
        server.receive_chunk("fast", chunk_a)
        server.receive_chunk("fast", chunk_b)  # evicts chunk_a's hash
        server.receive_chunk("fast", chunk_a)  # not recognised any more
        assert server.stats.duplicate_chunks == 0
        wide = make_server(FaultPlan(dedup_window=16))
        wide.receive_chunk("fast", chunk_a)
        wide.receive_chunk("fast", chunk_b)
        wide.receive_chunk("fast", chunk_a)
        assert wide.stats.duplicate_chunks == 1

    def test_malformed_chunks_are_acked_but_not_remembered(self):
        server = make_server(FaultPlan())
        garbage = b"\x00not gzip at all"
        ack = server.receive_chunk("fast", garbage)
        assert ack == chunk_hash(garbage)
        assert server.stats.malformed_chunks == 1
        # A repaired retransmission of the same bytes must not be
        # swallowed by the dedup window: only *stored* chunks dedup.
        server.receive_chunk("fast", garbage)
        assert server.stats.duplicate_chunks == 0


class TestCorruptionEndToEnd:
    def test_corrupted_bytes_reach_server_and_are_counted(self):
        plan = FaultPlan(transport_corruption=FaultSpec(1.0, days=(0,)))
        server = make_server(plan)
        transport = FaultyTransport(
            server, plan=plan, rng=np.random.default_rng([5, 0x7A0])
        )
        buffer = sealed_buffer(4, threshold=10**6)
        assert buffer.flush(transport, 0.0) == 0
        # The damaged chunk really reached the server (gzip magic byte
        # flipped -> malformed), the ack mismatched, the chunk is kept.
        assert server.stats.chunks_received == 1
        assert server.stats.malformed_chunks == 1
        assert buffer.pending_chunks == 1
        transport.set_day(1)  # corruption window over
        buffer.drain(transport, now=0.0, deadline=DAY_S)
        assert len(server.store["fast_runs"]) == 4
        assert_no_duplicates(server)


class TestStoreRollbackUnits:
    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_mark_rollback_restores_count_and_index(self, backend):
        store = DocumentStore(backend=backend)
        coll = store.collection("things")
        coll.create_index("install_id")
        coll.insert_many([{"install_id": "a", "v": 1}, {"install_id": "b", "v": 2}])
        mark = coll.mark()
        coll.insert_many([{"install_id": "a", "v": 3}, {"install_id": "c", "v": 4}])
        coll.rollback_to(mark)
        assert len(coll) == 2
        assert sorted(d["v"] for d in coll.find()) == [1, 2]
        assert coll.find({"install_id": "a"}) == [{"install_id": "a", "v": 1}]
        assert coll.find({"install_id": "c"}) == []
        # The collection still works normally after a rollback.
        coll.insert({"install_id": "c", "v": 5})
        assert coll.find({"install_id": "c"}) == [{"install_id": "c", "v": 5}]
