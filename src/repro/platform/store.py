"""In-memory document store with Mongo-like query operators.

The paper's backend persists snapshots into MongoDB (§3).  This store
provides the same access pattern for the analysis code: named
collections of dict documents, a small operator language (``$eq``,
``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$exists``),
and single-field hash indexes for the hot lookups (by install id).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterator

__all__ = ["DocumentStore", "Collection"]


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda value, operand: value == operand,
    "$ne": lambda value, operand: value != operand,
    "$gt": lambda value, operand: value is not None and value > operand,
    "$gte": lambda value, operand: value is not None and value >= operand,
    "$lt": lambda value, operand: value is not None and value < operand,
    "$lte": lambda value, operand: value is not None and value <= operand,
    "$in": lambda value, operand: value in operand,
    "$exists": lambda value, operand: (value is not None) == bool(operand),
}


def _matches(document: dict, query: dict) -> bool:
    for fieldname, condition in query.items():
        value = document.get(fieldname)
        if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
            for op, operand in condition.items():
                handler = _OPERATORS.get(op)
                if handler is None:
                    raise ValueError(f"unknown query operator {op!r}")
                if not handler(value, operand):
                    return False
        elif value != condition:
            return False
    return True


class Collection:
    """One named collection of documents."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: list[dict] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}

    def __len__(self) -> int:
        return len(self._documents)

    def insert(self, document: dict) -> None:
        if not isinstance(document, dict):
            raise TypeError("documents must be dicts")
        position = len(self._documents)
        self._documents.append(document)
        for fieldname, index in self._indexes.items():
            index[document.get(fieldname)].append(position)

    def insert_many(self, documents) -> int:
        count = 0
        for document in documents:
            self.insert(document)
            count += 1
        return count

    def create_index(self, fieldname: str) -> None:
        if fieldname in self._indexes:
            return
        index: dict[Any, list[int]] = defaultdict(list)
        for position, document in enumerate(self._documents):
            index[document.get(fieldname)].append(position)
        self._indexes[fieldname] = index

    def _candidates(self, query: dict) -> Iterator[dict]:
        # Use an index when the query has an equality match on an
        # indexed field; otherwise scan.
        for fieldname, index in self._indexes.items():
            condition = query.get(fieldname)
            if condition is not None and not isinstance(condition, dict):
                for position in index.get(condition, ()):
                    yield self._documents[position]
                return
        yield from self._documents

    def find(self, query: dict | None = None) -> list[dict]:
        query = query or {}
        return [doc for doc in self._candidates(query) if _matches(doc, query)]

    def find_one(self, query: dict | None = None) -> dict | None:
        query = query or {}
        for doc in self._candidates(query):
            if _matches(doc, query):
                return doc
        return None

    def count(self, query: dict | None = None) -> int:
        if not query:
            return len(self._documents)
        return len(self.find(query))

    def distinct(self, fieldname: str, query: dict | None = None) -> list:
        seen: set = set()
        for doc in self.find(query):
            value = doc.get(fieldname)
            if isinstance(value, (list, tuple)):
                seen.update(value)
            else:
                seen.add(value)
        seen.discard(None)
        return sorted(seen, key=repr)


class DocumentStore:
    """A set of named collections (the Mongo database)."""

    def __init__(self) -> None:
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def total_documents(self) -> int:
        return sum(len(c) for c in self._collections.values())
