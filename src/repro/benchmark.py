"""``python -m repro bench`` — parallel speedup + determinism benchmark.

Times Table 1/Table 2-style workloads (repeated stratified CV over the
paper's algorithm suite, a per-tree-parallel forest fit, and the KNN
all-pairs predict) at ``n_jobs = 1`` versus ``n_jobs = max``, asserts
that serial and parallel runs produce byte-identical outputs (the
DESIGN.md §8 contract), and writes the measurements to ``BENCH_ml.json``.

``--smoke`` shrinks the workload to CI size and defaults to two workers;
it is the regression gate that the executor still honours the
determinism contract on every push.  Speedups are recorded, not
asserted: single-core runners legitimately measure ~1x.
"""

from __future__ import annotations

import json
import os
import platform
import sys

import numpy as np

from . import obs
from .ml import (
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    LVQClassifier,
    RandomForestClassifier,
    cross_validate,
)
from .ml.base import check_array
from .parallel import resolve_n_jobs, spawn_seeds

__all__ = ["run_bench", "make_bench_dataset"]


def _machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
    }


def make_bench_dataset(
    n_samples: int, n_features: int, root_seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic two-class task shaped like the app/device feature
    matrices (a few informative dimensions, the rest noise).

    Seeds are spawned from ``root_seed`` via ``SeedSequence`` — a fresh
    stream, independent of every existing consumer.
    """
    data_seed, label_seed = spawn_seeds(root_seed, 2)
    rng = np.random.default_rng(data_seed)
    y = (np.arange(n_samples) % 3 == 0).astype(np.int64)  # ~1:2 imbalance
    y = np.random.default_rng(label_seed).permutation(y)
    X = rng.normal(size=(n_samples, n_features))
    informative = max(2, n_features // 4)
    X[:, :informative] += 1.5 * y[:, None]
    return X, y


def _cv_suite(smoke: bool, random_state: int) -> dict[str, object]:
    """Table 1/2-style algorithm suite (trimmed in smoke mode)."""
    if smoke:
        return {
            "RF": RandomForestClassifier(n_estimators=24, random_state=random_state),
            "KNN": KNeighborsClassifier(n_neighbors=5),
            "LR": LogisticRegression(C=1.0),
        }
    return {
        "XGB": GradientBoostingClassifier(
            n_estimators=60, max_depth=3, learning_rate=0.15, random_state=random_state
        ),
        "RF": RandomForestClassifier(n_estimators=120, random_state=random_state),
        "LR": LogisticRegression(C=1.0),
        "KNN": KNeighborsClassifier(n_neighbors=5),
        "LVQ": LVQClassifier(prototypes_per_class=5, epochs=25, random_state=random_state),
    }


def _timed(fn, *args, **kwargs) -> tuple[object, float]:
    with obs.timer() as timed:
        result = fn(*args, **kwargs)
    return result, timed.elapsed


def _speedup(serial: float, parallel: float) -> float:
    return round(serial / parallel, 3) if parallel > 0 else 0.0


def _reference_knn_votes(model: KNeighborsClassifier, X: np.ndarray) -> np.ndarray:
    """The pre-vectorisation per-row vote loop, kept as the before/after
    baseline for the KNN benchmark and its equality check."""
    Z = (check_array(X) - model._mu) / model._sigma
    k = min(model.n_neighbors, model._train.shape[0])
    votes = np.zeros((Z.shape[0], len(model.classes_)), dtype=np.float64)
    chunk = max(1, 2_000_000 // max(1, model._train.shape[0]))
    for start in range(0, Z.shape[0], chunk):
        block = Z[start : start + chunk]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ model._train.T
            + np.sum(model._train**2, axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        for i, row in enumerate(nearest):
            if model.weights == "distance":
                w = 1.0 / (np.sqrt(d2[i, row]) + 1e-12)
            else:
                w = np.ones(k)
            np.add.at(votes[start + i], model._encoded[row], w)
    return votes


def run_bench(
    seed: int = 0,
    n_jobs: int | None = None,
    smoke: bool = False,
    out: str = "BENCH_ml.json",
) -> int:
    """Run the benchmark; returns a non-zero exit code if any serial vs
    parallel output mismatch is detected."""
    n_samples, n_features, n_splits = (240, 10, 5) if smoke else (600, 16, 10)
    max_jobs = resolve_n_jobs(n_jobs if n_jobs is not None else (2 if smoke else 0))
    X, y = make_bench_dataset(n_samples, n_features, seed)
    failures: list[str] = []
    payload: dict = {
        "machine": _machine_info(),
        "smoke": smoke,
        "seed": seed,
        "n_jobs": max_jobs,
        "dataset": {"n_samples": n_samples, "n_features": n_features},
        "cv": [],
    }

    print(f"bench: {n_samples}x{n_features} dataset, n_jobs 1 vs {max_jobs}")
    for name, estimator in _cv_suite(smoke, random_state=seed).items():
        serial, t_serial = _timed(
            cross_validate, estimator, X, y,
            n_splits=n_splits, random_state=seed, name=name, n_jobs=1,
        )
        parallel, t_parallel = _timed(
            cross_validate, estimator, X, y,
            n_splits=n_splits, random_state=seed, name=name, n_jobs=max_jobs,
        )
        equal = serial.summary() == parallel.summary()
        if not equal:
            failures.append(f"cv[{name}]: serial and parallel summaries differ")
        payload["cv"].append(
            {
                "model": name,
                "fit_seconds_serial": round(t_serial, 4),
                "fit_seconds_parallel": round(t_parallel, 4),
                "speedup": _speedup(t_serial, t_parallel),
                "outputs_equal": equal,
            }
        )
        print(
            f"  cv {name:>4}: {t_serial:7.3f}s -> {t_parallel:7.3f}s "
            f"({_speedup(t_serial, t_parallel)}x, equal={equal})"
        )

    # Per-tree forest parallelism: importances must merge in tree order.
    n_trees = 40 if smoke else 150
    f_serial, t_serial = _timed(
        RandomForestClassifier(n_estimators=n_trees, random_state=seed, n_jobs=1).fit,
        X, y,
    )
    f_parallel, t_parallel = _timed(
        RandomForestClassifier(
            n_estimators=n_trees, random_state=seed, n_jobs=max_jobs
        ).fit,
        X, y,
    )
    forest_equal = bool(
        np.array_equal(f_serial.feature_importances_, f_parallel.feature_importances_)
        and f_serial.oob_score() == f_parallel.oob_score()
    )
    if not forest_equal:
        failures.append("forest: importances or OOB score differ across n_jobs")
    payload["forest"] = {
        "n_estimators": n_trees,
        "fit_seconds_serial": round(t_serial, 4),
        "fit_seconds_parallel": round(t_parallel, 4),
        "speedup": _speedup(t_serial, t_parallel),
        "outputs_equal": forest_equal,
    }
    print(
        f"  forest ({n_trees} trees): {t_serial:.3f}s -> {t_parallel:.3f}s "
        f"({payload['forest']['speedup']}x, equal={forest_equal})"
    )

    # KNN predict: vectorised all-pairs scatter vs the old per-row loop.
    knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
    loop_votes, t_loop = _timed(_reference_knn_votes, knn, X)
    fast_votes, t_fast = _timed(knn._neighbor_votes, X)
    knn_equal = bool(np.array_equal(loop_votes, fast_votes))
    if not knn_equal:
        failures.append("knn: vectorised votes differ from the per-row loop")
    payload["knn"] = {
        "rows": n_samples,
        "loop_seconds": round(t_loop, 4),
        "vectorized_seconds": round(t_fast, 4),
        "speedup": _speedup(t_loop, t_fast),
        "outputs_equal": knn_equal,
    }
    print(
        f"  knn predict: loop {t_loop:.3f}s -> vectorised {t_fast:.3f}s "
        f"({payload['knn']['speedup']}x, equal={knn_equal})"
    )

    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {out}")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0
