"""Statistical hypothesis tests used throughout §6 of the paper.

The paper's protocol (§6): Shapiro-Wilk rejects normality for every
feature and Fligner-Killeen rejects equal variances, so the authors run
the Kolmogorov-Smirnov two-sample test plus *both* parametric one-way
ANOVA and non-parametric ANOVA (Kruskal-Wallis) and report all three.

Every test here is implemented from scratch (numpy only) and
cross-checked against scipy.stats in the test suite.  Asymptotic
p-value approximations are used, which is appropriate for the sample
sizes in the study (hundreds of devices, tens of thousands of reviews).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "TestResult",
    "ks_2samp",
    "one_way_anova",
    "kruskal_wallis",
    "fligner_killeen",
    "shapiro_wilk",
    "mann_whitney_u",
    "SignificanceBattery",
    "compare_groups",
]


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    name: str
    statistic: float
    pvalue: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.pvalue < alpha

    def __str__(self) -> str:
        return f"{self.name}: stat={self.statistic:.4f}, p={self.pvalue:.3g}"


def _as_clean_1d(sample, name: str) -> np.ndarray:
    arr = np.asarray(sample, dtype=np.float64).ravel()
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError(f"sample {name!r} is empty after removing non-finite values")
    return arr


def _ks_sf(d: float, n_eff: float) -> float:
    """Asymptotic Kolmogorov survival function Q(lambda)."""
    lam = (math.sqrt(n_eff) + 0.12 + 0.11 / math.sqrt(n_eff)) * d
    if lam < 1e-10:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_2samp(sample_a, sample_b) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test (asymptotic p-value).

    D is the supremum distance between the two empirical CDFs.
    """
    a = np.sort(_as_clean_1d(sample_a, "a"))
    b = np.sort(_as_clean_1d(sample_b, "b"))
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    d = float(np.max(np.abs(cdf_a - cdf_b)))
    n_eff = a.size * b.size / (a.size + b.size)
    return TestResult("ks_2samp", d, _ks_sf(d, n_eff))


def _f_sf(f_stat: float, df1: float, df2: float) -> float:
    """Survival function of the F distribution via the regularised
    incomplete beta function (continued-fraction evaluation)."""
    if f_stat <= 0:
        return 1.0
    x = df2 / (df2 + df1 * f_stat)
    return _reg_inc_beta(df2 / 2.0, df1 / 2.0, x)


def _reg_inc_beta(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta I_x(a, b) (Numerical Recipes betacf)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _betacf(a: float, b: float, x: float) -> float:
    max_iter, eps, fpmin = 300, 3e-14, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < fpmin:
        d = fpmin
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def _chi2_sf(x: float, df: float) -> float:
    """Survival function of the chi-squared distribution, via the
    regularised upper incomplete gamma Q(df/2, x/2)."""
    if x <= 0:
        return 1.0
    return _gammaincc(df / 2.0, x / 2.0)


def _gammaincc(a: float, x: float) -> float:
    """Regularised upper incomplete gamma Q(a, x)."""
    if x < a + 1.0:
        return 1.0 - _gamma_series(a, x)
    return _gamma_cf(a, x)


def _gamma_series(a: float, x: float) -> float:
    if x <= 0:
        return 0.0
    ap = a
    total = 1.0 / a
    delta = total
    for _ in range(500):
        ap += 1.0
        delta *= x / ap
        total += delta
        if abs(delta) < abs(total) * 3e-14:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_cf(a: float, x: float) -> float:
    fpmin = 1e-300
    b = x + 1.0 - a
    c = 1.0 / fpmin
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < fpmin:
            d = fpmin
        c = b + an / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-14:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def one_way_anova(*samples) -> TestResult:
    """Parametric one-way ANOVA (the F test on group means)."""
    groups = [_as_clean_1d(s, f"group{i}") for i, s in enumerate(samples)]
    if len(groups) < 2:
        raise ValueError("ANOVA needs at least two groups")
    k = len(groups)
    n_total = sum(g.size for g in groups)
    grand_mean = np.concatenate(groups).mean()
    ss_between = sum(g.size * (g.mean() - grand_mean) ** 2 for g in groups)
    ss_within = sum(float(np.sum((g - g.mean()) ** 2)) for g in groups)
    df1, df2 = k - 1, n_total - k
    if df2 <= 0 or ss_within == 0.0:
        return TestResult("anova_f", math.inf, 0.0 if ss_between > 0 else 1.0)
    f_stat = (ss_between / df1) / (ss_within / df2)
    return TestResult("anova_f", float(f_stat), _f_sf(float(f_stat), df1, df2))


def _rank_with_ties(values: np.ndarray) -> tuple[np.ndarray, float]:
    """Midranks plus the tie-correction term sum(t^3 - t)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    tie_term = 0.0
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = midrank
        t = j - i + 1
        if t > 1:
            tie_term += t**3 - t
        i = j + 1
    return ranks, tie_term


def kruskal_wallis(*samples) -> TestResult:
    """Kruskal-Wallis H test — the paper's "non-parametric ANOVA"."""
    groups = [_as_clean_1d(s, f"group{i}") for i, s in enumerate(samples)]
    if len(groups) < 2:
        raise ValueError("Kruskal-Wallis needs at least two groups")
    pooled = np.concatenate(groups)
    n = pooled.size
    ranks, tie_term = _rank_with_ties(pooled)
    h = 0.0
    start = 0
    for g in groups:
        r = ranks[start : start + g.size]
        h += r.sum() ** 2 / g.size
        start += g.size
    h = 12.0 / (n * (n + 1)) * h - 3.0 * (n + 1)
    correction = 1.0 - tie_term / (n**3 - n) if n > 1 else 1.0
    if correction <= 0:
        return TestResult("kruskal_wallis", 0.0, 1.0)
    h /= correction
    df = len(groups) - 1
    return TestResult("kruskal_wallis", float(h), _chi2_sf(float(h), df))


def mann_whitney_u(sample_a, sample_b) -> TestResult:
    """Two-sided Mann-Whitney U with normal approximation and tie correction."""
    a = _as_clean_1d(sample_a, "a")
    b = _as_clean_1d(sample_b, "b")
    pooled = np.concatenate([a, b])
    ranks, tie_term = _rank_with_ties(pooled)
    n1, n2 = a.size, b.size
    u1 = ranks[:n1].sum() - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0
    n = n1 + n2
    tie_adjust = tie_term / (n * (n - 1)) if n > 1 else 0.0
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_adjust)
    if var_u <= 0:
        return TestResult("mann_whitney_u", float(u1), 1.0)
    z = (u1 - mean_u - math.copysign(0.5, u1 - mean_u)) / math.sqrt(var_u)
    p = 2.0 * 0.5 * math.erfc(abs(z) / math.sqrt(2.0))
    return TestResult("mann_whitney_u", float(u1), float(min(p, 1.0)))


def fligner_killeen(*samples) -> TestResult:
    """Fligner-Killeen test for homogeneity of variances (median-centred,
    normal-scores version — matches scipy.stats.fligner)."""
    groups = [_as_clean_1d(s, f"group{i}") for i, s in enumerate(samples)]
    if len(groups) < 2:
        raise ValueError("Fligner-Killeen needs at least two groups")
    centred = [np.abs(g - np.median(g)) for g in groups]
    pooled = np.concatenate(centred)
    n = pooled.size
    ranks, _ = _rank_with_ties(pooled)
    # Normal scores a_i = Phi^-1(1/2 + rank/(2(n+1)))
    scores = np.array([_norm_ppf(0.5 + r / (2.0 * (n + 1.0))) for r in ranks])
    grand_mean = scores.mean()
    variance = float(np.sum((scores - grand_mean) ** 2)) / (n - 1)
    stat = 0.0
    start = 0
    for g in centred:
        group_scores = scores[start : start + g.size]
        stat += g.size * (group_scores.mean() - grand_mean) ** 2
        start += g.size
    if variance <= 0:
        return TestResult("fligner_killeen", 0.0, 1.0)
    stat /= variance
    return TestResult("fligner_killeen", float(stat), _chi2_sf(float(stat), len(groups) - 1))


def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


def shapiro_wilk(sample) -> TestResult:
    """Shapiro-Wilk normality test, Royston's AS R94 approximation
    (valid for 4 <= n <= 5000, the range used in the paper's analysis)."""
    x = np.sort(_as_clean_1d(sample, "sample"))
    n = x.size
    if n < 4:
        raise ValueError("Shapiro-Wilk requires n >= 4")
    if n > 5000:
        x = x[np.linspace(0, n - 1, 5000).astype(int)]
        n = 5000
    if x[0] == x[-1]:
        return TestResult("shapiro_wilk", 1.0, 1.0)

    # Expected normal order statistics (Blom approximation) -> weights.
    m = np.array([_norm_ppf((i - 0.375) / (n + 0.25)) for i in range(1, n + 1)])
    m_norm2 = float(np.dot(m, m))
    c = m / math.sqrt(m_norm2)
    u = 1.0 / math.sqrt(n)

    # Royston polynomial corrections for the two extreme weights.
    w_n = (-2.706056 * u**5 + 4.434685 * u**4 - 2.071190 * u**3
           - 0.147981 * u**2 + 0.221157 * u + c[-1])
    w_n1 = (-3.582633 * u**5 + 5.682633 * u**4 - 1.752461 * u**3
            - 0.293762 * u**2 + 0.042981 * u + c[-2])
    weights = np.empty(n)
    if n > 5:
        phi = (m_norm2 - 2 * m[-1] ** 2 - 2 * m[-2] ** 2) / (
            1 - 2 * w_n**2 - 2 * w_n1**2
        )
        weights[2:-2] = m[2:-2] / math.sqrt(phi)
        weights[-1], weights[-2] = w_n, w_n1
        weights[0], weights[1] = -w_n, -w_n1
    else:
        phi = (m_norm2 - 2 * m[-1] ** 2) / (1 - 2 * w_n**2)
        weights[1:-1] = m[1:-1] / math.sqrt(phi)
        weights[-1] = w_n
        weights[0] = -w_n

    centred = x - x.mean()
    denom = float(np.dot(centred, centred))
    if denom <= 0:
        return TestResult("shapiro_wilk", 1.0, 1.0)
    w_stat = float(np.dot(weights, x) ** 2 / denom)
    w_stat = min(w_stat, 1.0)

    # Royston's normalising transformation of (1 - W).
    ln_n = math.log(n)
    if n <= 11:
        gamma = -2.273 + 0.459 * n
        if 1.0 - w_stat <= 0 or gamma - math.log(1 - w_stat) <= 0:
            return TestResult("shapiro_wilk", w_stat, 1.0)
        g = -math.log(gamma - math.log(1.0 - w_stat))
        mu = 0.5440 - 0.39978 * n + 0.025054 * n**2 - 0.0006714 * n**3
        sigma = math.exp(1.3822 - 0.77857 * n + 0.062767 * n**2 - 0.0020322 * n**3)
    else:
        g = math.log(1.0 - w_stat)
        mu = -1.5861 - 0.31082 * ln_n - 0.083751 * ln_n**2 + 0.0038915 * ln_n**3
        sigma = math.exp(-0.4803 - 0.082676 * ln_n + 0.0030302 * ln_n**2)
    z = (g - mu) / sigma
    p = 0.5 * math.erfc(z / math.sqrt(2.0))
    return TestResult("shapiro_wilk", w_stat, float(min(max(p, 0.0), 1.0)))


@dataclass(frozen=True)
class SignificanceBattery:
    """The paper's three-test battery applied to one worker-vs-regular
    feature comparison, plus the normality/variance preconditions."""

    feature: str
    ks: TestResult
    anova: TestResult
    kruskal: TestResult
    shapiro_a: TestResult
    shapiro_b: TestResult
    fligner: TestResult

    def all_significant(self, alpha: float = 0.05) -> bool:
        """True when KS, ANOVA and Kruskal-Wallis all reject at ``alpha``."""
        return (
            self.ks.significant(alpha)
            and self.anova.significant(alpha)
            and self.kruskal.significant(alpha)
        )

    def distribution_tests_significant(self, alpha: float = 0.05) -> bool:
        """KS and Kruskal-Wallis reject (the robust pair); ANOVA may not —
        this is the Fig. 6 'installed apps' pattern."""
        return self.ks.significant(alpha) and self.kruskal.significant(alpha)


def compare_groups(feature: str, sample_a, sample_b) -> SignificanceBattery:
    """Run the §6 protocol on two samples: Shapiro per group, Fligner,
    then KS + parametric ANOVA + Kruskal-Wallis."""
    a = _as_clean_1d(sample_a, "a")
    b = _as_clean_1d(sample_b, "b")
    return SignificanceBattery(
        feature=feature,
        ks=ks_2samp(a, b),
        anova=one_way_anova(a, b),
        kruskal=kruskal_wallis(a, b),
        shapiro_a=shapiro_wilk(a) if a.size >= 4 else TestResult("shapiro_wilk", 1.0, 1.0),
        shapiro_b=shapiro_wilk(b) if b.size >= 4 else TestResult("shapiro_wilk", 1.0, 1.0),
        fligner=fligner_killeen(a, b),
    )
