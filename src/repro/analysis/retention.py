"""Retention analysis: how long apps stay installed (§2, §6.3, §7.1).

Retention installs are a paid product ("installing an app on many
devices and keeping it installed for prolonged intervals"), and *inner
retention* is feature (7) of the app classifier.  This module computes
survival-style retention curves over the observation window for apps
installed during the study, split worker vs regular — promoted installs
survive the retention contract then churn, personal installs either
churn fast or persist.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from ..simulation.clock import SECONDS_PER_DAY
from .common import GroupComparison, compare_feature

__all__ = ["RetentionCurve", "RetentionResult", "compute_retention"]


@dataclass(frozen=True)
class RetentionCurve:
    """Fraction of study-time installs still present k days later.

    Right-censored: installs whose window ends before day k without an
    uninstall drop out of that day's denominator.
    """

    days: tuple[int, ...]
    surviving_fraction: tuple[float, ...]
    n_installs: int

    def at(self, day: int) -> float:
        for d, fraction in zip(self.days, self.surviving_fraction):
            if d == day:
                return fraction
        raise KeyError(day)


def _install_lifetimes(obs: DeviceObservation) -> list[tuple[float, bool]]:
    """(observed lifetime days, uninstall observed) per study install."""
    out: list[tuple[float, bool]] = []
    installs: dict[str, float] = {}
    for event in obs.app_changes:
        package = event["package"]
        if event["action"] == "install":
            installs[package] = event["timestamp"]
        elif package in installs:
            out.append(
                ((event["timestamp"] - installs.pop(package)) / SECONDS_PER_DAY, True)
            )
    window_end = obs.uninstalled_at
    for package, installed_at in installs.items():
        out.append(((window_end - installed_at) / SECONDS_PER_DAY, False))
    return out


def _curve(lifetimes: list[tuple[float, bool]], horizon_days: int) -> RetentionCurve:
    days = tuple(range(horizon_days + 1))
    fractions = []
    for day in days:
        # Survivors: still installed at day k.  Known-gone: uninstalled
        # before day k.  Windows that end before k without an uninstall
        # are censored — excluded from day k's denominator.
        survived = sum(1 for lifetime, _ in lifetimes if lifetime >= day)
        known_gone = sum(
            1
            for lifetime, uninstalled in lifetimes
            if uninstalled and lifetime < day
        )
        denominator = survived + known_gone
        fractions.append(survived / denominator if denominator else 1.0)
    return RetentionCurve(
        days=days,
        surviving_fraction=tuple(fractions),
        n_installs=len(lifetimes),
    )


@dataclass
class RetentionResult:
    """Worker-vs-regular retention of study-time installs."""

    worker_curve: RetentionCurve
    regular_curve: RetentionCurve
    lifetime_comparison: GroupComparison

    def worker_churns_faster(self, day: int = 3) -> bool:
        """Workers uninstall (post-retention) promos more aggressively."""
        return self.worker_curve.at(day) <= self.regular_curve.at(day)


def compute_retention(
    observations: list[DeviceObservation], horizon_days: int = 7
) -> RetentionResult:
    worker_lifetimes: list[tuple[float, bool]] = []
    regular_lifetimes: list[tuple[float, bool]] = []
    for obs in observations:
        target = worker_lifetimes if obs.is_worker else regular_lifetimes
        target.extend(_install_lifetimes(obs))
    return RetentionResult(
        worker_curve=_curve(worker_lifetimes, horizon_days),
        regular_curve=_curve(regular_lifetimes, horizon_days),
        lifetime_comparison=compare_feature(
            "install_lifetime_days",
            [t for t, _ in worker_lifetimes],
            [t for t, _ in regular_lifetimes],
        ),
    )
