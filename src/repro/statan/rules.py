"""Rule base class and registry.

Every rule is a singleton registered by id.  A rule receives the parsed
:class:`~repro.statan.engine.ModuleContext` and yields findings; it
never does I/O.  Severity is advisory (the gate fails on any
non-baselined finding regardless), but reporters surface it so readers
can triage errors before warnings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .findings import SEVERITY_ERROR, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import ModuleContext
    from .project import ProjectContext

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "rule_ids",
    "get_rule",
]


class Rule:
    """One statan check.  Subclasses set ``id``/``severity``/``summary``
    and implement :meth:`check`."""

    id: str = ""
    severity: str = SEVERITY_ERROR
    summary: str = ""

    def check(self, ctx: "ModuleContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=ctx.snippet(getattr(node, "lineno", 1)),
        )


class ProjectRule(Rule):
    """A whole-program check run once per lint against the
    :class:`~repro.statan.project.ProjectContext` (DESIGN.md §10).

    Project rules see the symbol table, call graph and extracted
    schemas; they report findings through the module contexts the
    project indexes, and the engine applies inline suppressions and
    fingerprints afterwards.
    """

    def check(self, ctx: "ModuleContext") -> Iterable[Finding]:
        return ()

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY or rule.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    if isinstance(rule, ProjectRule):
        _PROJECT_REGISTRY[rule.id] = rule
    else:
        _REGISTRY[rule.id] = rule
    return cls


#: Alias that reads better on ProjectRule subclasses.
register_project = register


def all_rules() -> list[Rule]:
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def all_project_rules() -> list[ProjectRule]:
    return [_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY)]


def rule_ids() -> list[str]:
    return sorted(set(_REGISTRY) | set(_PROJECT_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id]
    return _PROJECT_REGISTRY[rule_id]
