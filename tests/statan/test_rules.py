"""Per-rule fixture snippets: positives fire, negatives stay silent."""

from repro.statan import analyze_source


def rules_hit(source: str, path: str = "repro/simulation/snippet.py") -> list[str]:
    return sorted({f.rule for f in analyze_source(source, path=path)})


class TestDET001UnseededRandomness:
    def test_stdlib_random_module_call(self):
        src = "import random\n\ndef f():\n    return random.random()\n"
        assert "DET001" in rules_hit(src)

    def test_stdlib_from_import(self):
        src = "from random import shuffle\n\ndef f(xs):\n    shuffle(xs)\n"
        assert "DET001" in rules_hit(src)

    def test_numpy_module_level_draw(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.random()\n"
        assert "DET001" in rules_hit(src)

    def test_numpy_seed_call(self):
        src = "import numpy as np\n\nnp.random.seed(0)\n"
        assert "DET001" in rules_hit(src)

    def test_default_rng_without_seed(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
        assert "DET001" in rules_hit(src)

    def test_seeded_default_rng_is_clean(self):
        src = "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed)\n"
        assert rules_hit(src) == []

    def test_or_fallback_rng_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def f(rng=None):\n"
            "    rng = rng or np.random.default_rng(0)\n"
            "    return rng\n"
        )
        assert "DET001" in rules_hit(src)

    def test_if_none_fallback_rng_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def f(rng=None):\n"
            "    if rng is None:\n"
            "        rng = np.random.default_rng(7)\n"
            "    return rng\n"
        )
        assert "DET001" in rules_hit(src)

    def test_default_argument_rng_flagged(self):
        src = (
            "import numpy as np\n\n"
            "def f(rng=np.random.default_rng(0)):\n"
            "    return rng\n"
        )
        assert "DET001" in rules_hit(src)

    def test_injected_generator_draw_is_clean(self):
        src = "def f(rng):\n    return rng.integers(0, 10)\n"
        assert rules_hit(src) == []

    def test_generator_annotation_is_clean(self):
        src = (
            "import numpy as np\n\n"
            "def f(rng: np.random.Generator) -> np.random.Generator:\n"
            "    return rng\n"
        )
        assert rules_hit(src) == []


class TestDET002WallClock:
    def test_time_time_flagged(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert "DET002" in rules_hit(src)

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\n\ndef f():\n    return datetime.now()\n"
        assert "DET002" in rules_hit(src, path="repro/ml/snippet.py")

    def test_datetime_utcnow_via_module_import(self):
        src = "import datetime\n\ndef f():\n    return datetime.datetime.utcnow()\n"
        assert "DET002" in rules_hit(src, path="repro/analysis/snippet.py")

    def test_perf_counter_flagged_outside_obs(self):
        # Duration clocks are reserved for repro.obs (obs.timer).
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert "DET002" in rules_hit(src)

    def test_monotonic_flagged_outside_obs(self):
        src = "import time\n\ndef f():\n    return time.monotonic()\n"
        assert "DET002" in rules_hit(src, path="repro/ml/snippet.py")

    def test_perf_counter_allowed_in_obs(self):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert rules_hit(src, path="repro/obs/snippet.py") == []

    def test_obs_package_exempt(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert rules_hit(src, path="repro/obs/snippet.py") == []

    def test_local_name_time_not_confused(self):
        src = "def f(time):\n    return time.time()\n"
        assert rules_hit(src) == []


class TestDET003UnorderedIteration:
    def test_for_over_set_literal(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert "DET003" in rules_hit(src)

    def test_for_over_set_variable(self):
        src = "seen = set()\nfor x in seen:\n    print(x)\n"
        assert "DET003" in rules_hit(src)

    def test_for_over_annotated_set(self):
        src = (
            "def f(docs):\n"
            "    seen: set[str] = set()\n"
            "    out = []\n"
            "    for x in seen:\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        assert "DET003" in rules_hit(src)

    def test_listdir_iteration_flagged(self):
        src = "import os\n\ndef f(d):\n    return [p for p in os.listdir(d)]\n"
        assert "DET003" in rules_hit(src)

    def test_glob_iteration_flagged(self):
        src = "import glob\n\ndef f(d):\n    for p in glob.glob(d):\n        print(p)\n"
        assert "DET003" in rules_hit(src)

    def test_pathlib_rglob_flagged(self):
        src = (
            "from pathlib import Path\n\n"
            "def f(root):\n"
            "    for p in Path(root).rglob('*.py'):\n"
            "        print(p)\n"
        )
        assert "DET003" in rules_hit(src)

    def test_sorted_wrap_is_clean(self):
        src = (
            "import os\n\n"
            "def f(d, seen=None):\n"
            "    seen = {1, 2}\n"
            "    for p in sorted(os.listdir(d)):\n"
            "        print(p)\n"
            "    for x in sorted(seen):\n"
            "        print(x)\n"
        )
        assert rules_hit(src) == []

    def test_order_insensitive_sinks_clean(self):
        src = (
            "def f(xs):\n"
            "    seen = set(xs)\n"
            "    n = len(seen)\n"
            "    total = sum(seen)\n"
            "    lo, hi = min(seen), max(seen)\n"
            "    other = frozenset(seen)\n"
            "    return 1 in seen, n, total, lo, hi, other\n"
        )
        assert rules_hit(src) == []

    def test_tuple_of_set_flagged(self):
        src = "def f(xs):\n    return tuple({x for x in xs})\n"
        assert "DET003" in rules_hit(src)

    def test_join_of_set_flagged(self):
        src = "def f(xs):\n    return ','.join(set(xs))\n"
        assert "DET003" in rules_hit(src)

    def test_self_attribute_set_tracked_across_methods(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._tracked: set[str] = set()\n"
            "    def dump(self):\n"
            "        return [x for x in self._tracked]\n"
        )
        assert "DET003" in rules_hit(src)

    def test_reassigned_to_ordered_clears_tracking(self):
        src = (
            "def f(xs):\n"
            "    items = set(xs)\n"
            "    items = sorted(items)\n"
            "    return [x for x in items]\n"
        )
        assert rules_hit(src) == []

    def test_set_comprehension_from_set_is_clean(self):
        src = "def f(xs):\n    s = set(xs)\n    return {x + 1 for x in s}\n"
        assert rules_hit(src) == []


class TestBUG001MutableDefault:
    def test_list_default(self):
        src = "def f(xs=[]):\n    return xs\n"
        assert "BUG001" in rules_hit(src)

    def test_dict_and_set_call_defaults(self):
        src = "def f(a={}, b=set(), c=dict()):\n    return a, b, c\n"
        assert "BUG001" in rules_hit(src)

    def test_kwonly_default(self):
        src = "def f(*, cache=[]):\n    return cache\n"
        assert "BUG001" in rules_hit(src)

    def test_defaultdict_default(self):
        src = (
            "import collections\n\n"
            "def f(table=collections.defaultdict(list)):\n"
            "    return table\n"
        )
        assert "BUG001" in rules_hit(src)

    def test_none_and_tuple_defaults_clean(self):
        src = "def f(a=None, b=(), c='x', d=0):\n    return a, b, c, d\n"
        assert rules_hit(src) == []


class TestML001FloatEquality:
    def test_float_literal_equality_in_ml(self):
        src = "def f(x):\n    return x == 0.5\n"
        assert "ML001" in rules_hit(src, path="repro/ml/snippet.py")

    def test_not_equal_flagged(self):
        src = "def f(x):\n    return x != 1.0\n"
        assert "ML001" in rules_hit(src, path="repro/statstests/snippet.py")

    def test_int_equality_clean(self):
        src = "def f(x):\n    return x == 0\n"
        assert rules_hit(src, path="repro/ml/snippet.py") == []

    def test_inequality_comparison_clean(self):
        src = "def f(x):\n    return x < 0.5\n"
        assert rules_hit(src, path="repro/ml/snippet.py") == []

    def test_outside_numeric_packages_not_flagged(self):
        src = "def f(x):\n    return x == 0.5\n"
        assert rules_hit(src, path="repro/platform/snippet.py") == []


class TestOBS001ConfigureWithoutReset:
    def test_configure_without_reset_flagged(self):
        src = (
            "from repro import obs\n\n"
            "def main():\n"
            "    obs.configure(metrics=True)\n"
            "    return 0\n"
        )
        assert "OBS001" in rules_hit(src, path="repro/tool.py")

    def test_configure_with_reset_clean(self):
        src = (
            "from repro import obs\n\n"
            "def main():\n"
            "    obs.configure(metrics=True)\n"
            "    try:\n"
            "        return 0\n"
            "    finally:\n"
            "        obs.reset()\n"
        )
        assert rules_hit(src, path="repro/tool.py") == []

    def test_module_without_configure_clean(self):
        src = "from repro import obs\n\nobs.counter('x').inc()\n"
        assert rules_hit(src, path="repro/tool.py") == []


class TestSyntaxError:
    def test_unparsable_file_reported(self):
        findings = analyze_source("def f(:\n", path="repro/broken.py")
        assert [f.rule for f in findings] == ["SYNTAX"]
