"""The vectorised KNN vote scatter against the per-row reference loop."""

import numpy as np
import pytest

from repro.benchmark import _reference_knn_votes, make_bench_dataset
from repro.ml import KNeighborsClassifier


@pytest.mark.parametrize("weights", ["uniform", "distance"])
def test_vectorized_votes_match_reference_loop(weights):
    X, y = make_bench_dataset(150, 7, root_seed=31)
    model = KNeighborsClassifier(n_neighbors=5, weights=weights).fit(X, y)
    queries, _ = make_bench_dataset(40, 7, root_seed=32)
    assert np.array_equal(
        model._neighbor_votes(queries), _reference_knn_votes(model, queries)
    )


def test_vectorized_votes_match_reference_across_chunks():
    # A training set large enough that the queries span several chunks,
    # exercising the per-chunk scatter into votes[start : start + m].
    X, y = make_bench_dataset(60_000, 3, root_seed=33)
    model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
    queries = X[:80]
    assert np.array_equal(
        model._neighbor_votes(queries), _reference_knn_votes(model, queries)
    )


def test_multiclass_votes_and_proba():
    rng = np.random.default_rng(99)
    X = rng.normal(size=(90, 5))
    y = np.arange(90) % 3
    X += y[:, None]
    model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
    proba = model.predict_proba(X)
    assert proba.shape == (90, 3)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert np.array_equal(
        model._neighbor_votes(X), _reference_knn_votes(model, X)
    )
    assert (model.predict(X) == y).mean() > 0.8
