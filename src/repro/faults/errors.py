"""Injected-failure exceptions raised by the fault plane.

All derive from :class:`~repro.platform.errors.UploadError`, so the
client retry loop and the phase-2 commit handle an injected fault
exactly like a real one: no acknowledgement exists, the chunk stays
queued, and the server's dedup window makes the retry safe.
"""

from __future__ import annotations

from ..platform.errors import Throttled, UploadError

__all__ = ["FaultInjected", "InjectedThrottle", "ServerCrash", "StoreRejected"]


class FaultInjected(UploadError):
    """Base class for failures the fault plane injected (as opposed to
    organic ones); ``site`` names the injection site."""

    site = "fault"


class ServerCrash(FaultInjected):
    """The server process died mid-receive; a prefix of the chunk's
    records may have been inserted and must be rolled back."""

    site = "receive_crash"


class StoreRejected(FaultInjected):
    """The document store refused the chunk's writes."""

    site = "store_reject"


class InjectedThrottle(Throttled, FaultInjected):
    """An injected overload window (429 + Retry-After)."""

    site = "overload"
