"""Probability calibration: Platt scaling and isotonic regression.

§9 proposes embedding the classifiers in the Play Store client; an app
store acts on *scores* with an operating threshold chosen for a target
false-positive rate, which requires calibrated probabilities.  Both
standard calibrators are implemented from scratch: Platt's sigmoid fit
(Newton) and isotonic regression via the pool-adjacent-violators
algorithm (PAVA).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_X_y

__all__ = ["PlattCalibrator", "IsotonicCalibrator", "CalibratedClassifier"]


class PlattCalibrator(BaseEstimator):
    """Sigmoid calibration p = sigmoid(a * score + b) (Platt, 1999).

    Fit by Newton-Raphson on the log-loss, with the (n+ + 1)/(n+ + 2)
    target smoothing from the original paper to avoid overconfidence.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-10) -> None:
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, scores, y) -> "PlattCalibrator":
        scores = np.asarray(scores, dtype=np.float64).ravel()
        y = np.asarray(y).ravel()
        if scores.shape != y.shape:
            raise ValueError("scores and labels must have the same length")
        positive = y == 1
        n_pos, n_neg = int(positive.sum()), int((~positive).sum())
        # Platt's smoothed targets.
        target = np.where(
            positive, (n_pos + 1.0) / (n_pos + 2.0), 1.0 / (n_neg + 2.0)
        )

        a, b = 1.0, 0.0
        for _ in range(self.max_iter):
            z = np.clip(a * scores + b, -35, 35)
            p = 1.0 / (1.0 + np.exp(-z))
            g_a = float(np.sum((p - target) * scores))
            g_b = float(np.sum(p - target))
            w = np.clip(p * (1 - p), 1e-12, None)
            h_aa = float(np.sum(w * scores**2)) + 1e-12
            h_bb = float(np.sum(w)) + 1e-12
            h_ab = float(np.sum(w * scores))
            det = h_aa * h_bb - h_ab**2
            if abs(det) < 1e-300:
                break
            da = (h_bb * g_a - h_ab * g_b) / det
            db = (h_aa * g_b - h_ab * g_a) / det
            a -= da
            b -= db
            if abs(da) < self.tol and abs(db) < self.tol:
                break
        self.a_, self.b_ = float(a), float(b)
        return self

    def predict_proba(self, scores) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64).ravel()
        z = np.clip(self.a_ * scores + self.b_, -35, 35)
        return 1.0 / (1.0 + np.exp(-z))


class IsotonicCalibrator(BaseEstimator):
    """Isotonic (monotone non-decreasing) calibration via PAVA.

    Learns a step function score -> probability; prediction linearly
    interpolates between learned knots and clamps at the ends.
    """

    def __init__(self) -> None:
        pass

    def fit(self, scores, y) -> "IsotonicCalibrator":
        scores = np.asarray(scores, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if scores.shape != y.shape:
            raise ValueError("scores and labels must have the same length")
        order = np.argsort(scores, kind="mergesort")
        x = scores[order]
        target = y[order]

        # Pool adjacent violators: a stack of merged blocks (sum, weight,
        # last-index); adjacent blocks merge while their means violate
        # monotonicity.
        stack: list[tuple[float, float, int]] = []
        for j in range(len(target)):
            current = (target[j], 1.0, j)
            while stack and stack[-1][0] / stack[-1][1] >= current[0] / current[1]:
                prev = stack.pop()
                current = (prev[0] + current[0], prev[1] + current[1], j)
            stack.append(current)
        # Expand blocks to knots.
        knots_x: list[float] = []
        knots_y: list[float] = []
        start = 0
        for total, weight, end in stack:
            mean = total / weight
            knots_x.append(float(x[start]))
            knots_y.append(mean)
            knots_x.append(float(x[end]))
            knots_y.append(mean)
            start = end + 1
        self.knots_x_ = np.asarray(knots_x)
        self.knots_y_ = np.clip(np.asarray(knots_y), 0.0, 1.0)
        return self

    def predict_proba(self, scores) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64).ravel()
        return np.interp(scores, self.knots_x_, self.knots_y_)


class CalibratedClassifier(BaseEstimator):
    """Wrap a fitted binary scorer with a calibrator.

    ``base`` must expose ``decision_function`` or ``predict_proba``;
    calibration data should be held out from the base model's training.
    """

    def __init__(self, base, method: str = "platt") -> None:
        if method not in ("platt", "isotonic"):
            raise ValueError(f"unknown calibration method {method!r}")
        self.base = base
        self.method = method

    def _scores(self, X) -> np.ndarray:
        if hasattr(self.base, "decision_function"):
            return np.asarray(self.base.decision_function(X), dtype=np.float64)
        proba = np.asarray(self.base.predict_proba(X), dtype=np.float64)
        return proba[:, -1]

    def fit(self, X, y) -> "CalibratedClassifier":
        X, y = check_X_y(X, y)
        scores = self._scores(X)
        self.calibrator_ = (
            PlattCalibrator() if self.method == "platt" else IsotonicCalibrator()
        )
        self.calibrator_.fit(scores, y)
        return self

    def predict_proba(self, X) -> np.ndarray:
        p1 = self.calibrator_.predict_proba(self._scores(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(int)
