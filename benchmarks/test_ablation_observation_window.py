"""Ablation: how many days of telemetry does detection need?

The paper keeps devices with at least two days of snapshots (§7.2,
§8.2) without justifying the threshold.  This bench truncates every
observation to its first k days, rebuilds the device features, and
measures the classifier across k — quantifying the telemetry/accuracy
tradeoff a deploying store would face.
"""

from repro.core.datasets import build_device_dataset
from repro.core.device_classifier import DEVICE_ALGORITHMS
from repro.experiments.common import ExperimentReport
from repro.ml import cross_validate
from repro.reporting import render_table


def test_ablation_observation_window(benchmark, workbench, pipeline_result, emit):
    data = workbench.data
    observations = pipeline_result.observations
    suspiciousness = pipeline_result.suspiciousness

    rows = []
    metrics = {}
    for days in (1, 2, 5, 10):
        truncated = [obs.truncated(days) for obs in observations]
        dataset = build_device_dataset(data, truncated, suspiciousness)
        cv = cross_validate(
            DEVICE_ALGORITHMS(0)["XGB"],
            dataset.X,
            dataset.y,
            n_splits=10,
            resample="smote",
            random_state=0,
        )
        rows.append((days, cv.precision, cv.recall, cv.f1))
        metrics[f"f1_{days}d"] = cv.f1

    benchmark.pedantic(
        lambda: [obs.truncated(2) for obs in observations], rounds=1, iterations=1
    )
    emit(
        ExperimentReport(
            "ablation_window",
            "Device classifier vs observation-window length (days of telemetry)",
            lines=[
                render_table(["days observed", "precision", "recall", "F1"], rows),
                "The review history (Play-side) carries most of the signal, so "
                "even short windows work; longer windows sharpen the churn and "
                "usage features.",
            ],
            metrics=metrics,
        )
    )
    # Even a single observed day detects well (review history dominates),
    # and more telemetry never hurts much.
    assert metrics["f1_1d"] >= 0.85
    assert metrics["f1_10d"] >= metrics["f1_1d"] - 0.03
