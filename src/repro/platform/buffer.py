"""On-device data buffer: accumulate, compress, hash-verified upload.

§3 "Data Buffer Module": snapshots are appended to per-type
accumulation files; when the slow file reaches 8 KB or the fast file
reaches 100 KB the file is gzip-compressed and queued.  The upload
alarm sends queued chunks to the server, which acknowledges with the
SHA-256 of the received bytes; the app deletes a chunk only when the
acknowledged hash matches its own, otherwise the chunk is retransmitted
("resilient communications").

Retransmission discipline: a failed chunk is rescheduled with
exponential backoff on the *virtual* clock (never the wall clock —
statan DET002), with seeded jitter when the caller injects a Generator.
A :class:`~repro.platform.errors.Throttled` response opens a circuit
breaker for the server's ``Retry-After`` window, and chunks that exhaust
the optional retry budget park on a dead-letter queue instead of
blocking the rest of the flush.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field

from .. import obs
from .errors import Throttled, UploadError
from .models import record_to_dict

__all__ = ["BufferedChunk", "DataBuffer", "chunk_hash"]

#: Exponential-backoff schedule (virtual seconds): base * 2**(attempts-1),
#: capped, optionally jittered by a factor drawn from [0.5, 1.5).
BACKOFF_BASE_S = 120.0
BACKOFF_CAP_S = 3600.0

_BACKOFF_BUCKETS = (60.0, 120.0, 240.0, 480.0, 960.0, 1920.0, 3600.0, 5400.0)


def chunk_hash(data: bytes) -> str:
    """The transfer-validation hash (SHA-256 hex digest)."""
    return hashlib.sha256(data).hexdigest()


@dataclass(slots=True)
class BufferedChunk:
    """One compressed accumulation file awaiting upload."""

    kind: str  # "fast" | "slow"
    data: bytes
    n_records: int
    attempts: int = 0
    #: Virtual timestamp before which the retry scheduler skips this
    #: chunk; 0.0 means due immediately.
    next_attempt_at: float = 0.0
    _sha256: str | None = field(default=None, repr=False)

    @property
    def sha256(self) -> str:
        # Chunk bytes are immutable once sealed, so the transfer hash is
        # computed once instead of per attempt in the retry hot loop.
        if self._sha256 is None:
            self._sha256 = chunk_hash(self.data)
        return self._sha256


class DataBuffer:
    """Per-install snapshot buffer with the paper's flush thresholds."""

    def __init__(
        self,
        fast_threshold_bytes: int = 100 * 1024,
        slow_threshold_bytes: int = 8 * 1024,
        retry_budget: int = 0,
    ) -> None:
        self.thresholds = {"fast": fast_threshold_bytes, "slow": slow_threshold_bytes}
        self._accumulating: dict[str, list[str]] = {"fast": [], "slow": []}
        self._accumulated_bytes: dict[str, int] = {"fast": 0, "slow": 0}
        self._pending: list[BufferedChunk] = []
        self._dead_letters: list[BufferedChunk] = []
        self._circuit_open_until = 0.0
        #: Attempts allowed per chunk before it is dead-lettered;
        #: 0 means unlimited (the alarm retries forever).
        self.retry_budget = int(retry_budget)
        self.records_buffered = 0
        self.chunks_sealed = 0
        self.chunks_delivered = 0
        self.retransmissions = 0
        self.chunks_dead_lettered = 0
        self.throttle_trips = 0

    # -- accumulation -------------------------------------------------------
    def append(self, kind: str, record) -> None:
        """Serialise one snapshot record into the ``kind`` accumulation file."""
        if kind not in self._accumulating:
            raise ValueError(f"unknown buffer kind {kind!r}")
        line = json.dumps(record_to_dict(record), separators=(",", ":"))
        self._accumulating[kind].append(line)
        self._accumulated_bytes[kind] += len(line) + 1
        self.records_buffered += 1
        if self._accumulated_bytes[kind] >= self.thresholds[kind]:
            self._seal(kind)

    def _seal(self, kind: str) -> None:
        """Compress the current accumulation file and start a new one."""
        lines = self._accumulating[kind]
        if not lines:
            return
        raw = ("\n".join(lines) + "\n").encode()
        self._pending.append(
            BufferedChunk(kind=kind, data=gzip.compress(raw), n_records=len(lines))
        )
        self._accumulating[kind] = []
        self._accumulated_bytes[kind] = 0
        self.chunks_sealed += 1
        obs.counter("buffer_chunks_sealed_total", {"kind": kind}).inc()
        obs.histogram(
            "buffer_chunk_records",
            {"kind": kind},
            buckets=(1, 5, 10, 50, 100, 500, 1000, 5000),
        ).observe(len(lines))

    def seal_all(self) -> None:
        """Force-seal both accumulation files (app shutdown / uninstall)."""
        for kind in ("fast", "slow"):
            self._seal(kind)

    # -- upload ---------------------------------------------------------------
    @property
    def pending_chunks(self) -> int:
        return len(self._pending)

    @property
    def dead_letter_chunks(self) -> int:
        return len(self._dead_letters)

    def requeue_dead_letters(self) -> int:
        """Put dead-lettered chunks back on the retry queue with a fresh
        attempt count (operator-driven replay, e.g. after the channel
        heals at study close).  Returns the number requeued."""
        requeued = len(self._dead_letters)
        for chunk in self._dead_letters:
            chunk.attempts = 0
            chunk.next_attempt_at = 0.0
        self._pending.extend(self._dead_letters)
        self._dead_letters.clear()
        return requeued

    def _schedule_retry(self, chunk: BufferedChunk, now: float, rng) -> None:
        backoff = min(
            BACKOFF_CAP_S, BACKOFF_BASE_S * 2.0 ** min(chunk.attempts - 1, 16)
        )
        if rng is not None:
            backoff *= 0.5 + float(rng.random())  # seeded jitter, [0.5x, 1.5x)
        obs.histogram(
            "buffer_backoff_seconds", {"kind": chunk.kind}, buckets=_BACKOFF_BUCKETS
        ).observe(backoff)
        chunk.next_attempt_at = now + backoff

    def flush(self, transport, now: float | None = None, *, rng=None) -> int:
        """One upload pass at virtual time ``now``: attempt each due
        chunk once, delete it only on a matching hash acknowledgement,
        otherwise reschedule it with exponential backoff (seeded jitter
        when ``rng`` is given).  ``now=None`` treats every pending chunk
        as due and schedules from t=0 (legacy single-shot behaviour).
        A :class:`Throttled` response opens the circuit breaker for the
        server's ``retry_after`` and ends the pass early.  Returns the
        number of records delivered this call."""
        clock = 0.0 if now is None else float(now)
        if clock < self._circuit_open_until and now is not None:
            return 0
        delivered_records = 0
        still_pending: list[BufferedChunk] = []
        throttled = False
        for chunk in self._pending:
            if throttled or (now is not None and chunk.next_attempt_at > clock):
                still_pending.append(chunk)
                continue
            try:
                ack = transport.send(chunk.kind, chunk.data)
            except Throttled as exc:
                # Server backpressure is not the chunk's fault: it burns
                # no attempt, and the breaker holds off the whole queue.
                self.throttle_trips += 1
                self._circuit_open_until = max(
                    self._circuit_open_until, clock + max(exc.retry_after, 1.0)
                )
                obs.counter("buffer_throttle_trips_total").inc()
                throttled = True
                still_pending.append(chunk)
                continue
            except UploadError:
                ack = None  # server-side failure: no acknowledgement came back
            chunk.attempts += 1
            if chunk.attempts > 1:
                self.retransmissions += 1
                obs.counter("buffer_retransmissions_total").inc()
            if ack == chunk.sha256:
                delivered_records += chunk.n_records
                self.chunks_delivered += 1
                continue
            if self.retry_budget and chunk.attempts >= self.retry_budget:
                self._dead_letters.append(chunk)
                self.chunks_dead_lettered += 1
                obs.counter("buffer_dead_letters_total", {"kind": chunk.kind}).inc()
                continue
            self._schedule_retry(chunk, clock, rng)
            still_pending.append(chunk)
        self._pending = still_pending
        obs.counter("buffer_records_delivered_total").inc(delivered_records)
        if still_pending:
            obs.counter("buffer_flushes_incomplete_total").inc()
        return delivered_records

    def drain(self, transport, *, now: float, deadline: float, rng=None) -> int:
        """Flush repeatedly over a virtual-time window, advancing the
        clock to the next due retry (or circuit-breaker expiry) between
        passes, until the queue empties or the next attempt would land
        past ``deadline``.  This models the upload alarm re-firing with
        backoff across the day.  Returns the records delivered."""
        delivered = 0
        clock = float(now)
        while self._pending:
            due = min(chunk.next_attempt_at for chunk in self._pending)
            clock = max(clock, due, self._circuit_open_until)
            if clock > deadline:
                break
            delivered += self.flush(transport, clock, rng=rng)
        return delivered
