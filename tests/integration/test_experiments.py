"""Integration tests: every experiment runner produces a sane report on
one shared small workbench, and the headline shapes hold."""

import pytest

from repro.core import DetectionPipeline
from repro.experiments import EXPERIMENTS, Workbench, run_experiment
from repro.simulation import SimulationConfig


@pytest.fixture(scope="module")
def workbench():
    wb = Workbench(SimulationConfig.small(), DetectionPipeline(n_splits=5))
    return wb


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        expected = {
            "fig00", "fig01", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "table1", "fig13", "table2",
            "fig14", "fig15", "table3",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self, workbench):
        with pytest.raises(KeyError):
            run_experiment("fig99", workbench)

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_every_runner_renders(self, workbench, experiment_id):
        report = run_experiment(experiment_id, workbench)
        text = report.render()
        assert report.experiment_id == experiment_id
        assert text.startswith(f"== {experiment_id}:")
        assert report.metrics


class TestHeadlineShapes:
    """The qualitative results the reproduction must preserve."""

    def test_fig05_gmail_separation(self, workbench):
        metrics = run_experiment("fig05", workbench).metrics
        assert metrics["worker_gmail_median"] > 3 * metrics["regular_gmail_median"]
        assert metrics["gmail_significant"] == 1.0

    def test_fig06_review_contrast(self, workbench):
        metrics = run_experiment("fig06", workbench).metrics
        assert metrics["worker_reviewed_mean"] > 5 * max(metrics["regular_reviewed_mean"], 0.1)
        assert metrics["reviews_significant"] == 1.0

    def test_fig07_workers_review_sooner(self, workbench):
        metrics = run_experiment("fig07", workbench).metrics
        assert metrics["worker_median"] < metrics["regular_median"]
        assert metrics["worker_n"] > 50 * metrics["regular_n"] / 10
        # Significance needs the regular sample the full cohort provides;
        # the small test cohort only yields a handful of regular reviews.
        if metrics["regular_n"] >= 30:
            assert metrics["significant"] == 1.0

    def test_fig09_worker_churn_higher(self, workbench):
        metrics = run_experiment("fig09", workbench).metrics
        assert metrics["worker_installs_mean"] > metrics["regular_installs_mean"]

    def test_table1_app_classifier_strong(self, workbench):
        metrics = run_experiment("table1", workbench).metrics
        best_f1 = max(v for k, v in metrics.items() if k.endswith("_f1"))
        assert best_f1 >= 0.9
        assert metrics["XGB_f1"] >= 0.9

    def test_table2_device_classifier_strong(self, workbench):
        metrics = run_experiment("table2", workbench).metrics
        assert metrics["XGB_f1"] >= 0.85
        assert metrics["xgb_fpr"] <= 0.25

    def test_fig15_both_worker_kinds_present(self, workbench):
        metrics = run_experiment("fig15", workbench).metrics
        assert metrics["organic"] > 0
        assert metrics["dedicated"] > 0
        assert metrics["workers_detected_fraction"] >= 0.8

    def test_fig12_malware_shape(self, workbench):
        metrics = run_experiment("fig12", workbench).metrics
        assert metrics["worker_spread"] >= metrics["regular_spread"]


class TestFindings:
    def test_findings_registry_complete(self):
        from repro.experiments.findings import FINDINGS

        assert len(FINDINGS) == 18
        assert len({f.finding_id for f in FINDINGS}) == 18
        sections = {f.section for f in FINDINGS}
        assert {"§6.2", "§6.3", "§6.4", "§7.2", "§8.2"} <= sections

    def test_most_findings_hold_even_at_small_scale(self, workbench):
        from repro.experiments.findings import check_findings

        results = check_findings(workbench)
        holding = sum(r.holds for r in results)
        # The small test cohort lacks the statistical power of the
        # default cohort; still, the bulk of the claims must hold.
        assert holding >= 14
        for result in results:
            assert result.measured  # every check explains itself


class TestReportWriter:
    def test_generates_complete_document(self, workbench, tmp_path):
        from repro.experiments.report_writer import generate_experiments_md

        out = tmp_path / "EXPERIMENTS.md"
        text = generate_experiments_md(workbench, out)
        assert out.read_text() == text
        assert "## Findings scorecard" in text
        assert "## Per-experiment reports" in text
        assert "## Known deviations and why" in text
        for experiment_id in ("table1", "table2", "fig07", "fig15"):
            assert f"### {experiment_id}:" in text
        # All 18 findings are listed.
        assert text.count("| F") >= 18
