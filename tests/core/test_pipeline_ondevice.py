"""Tests for the end-to-end pipeline, classifiers and on-device detection
(shared small study + one shared pipeline run)."""

import dataclasses

import numpy as np
import pytest

from repro.core import OnDeviceDetector
from repro.core.app_classifier import AppClassifier
from repro.core.datasets import build_app_dataset


class TestPipelineResult:
    def test_table1_algorithms_present(self, pipeline_result):
        assert set(pipeline_result.app_evaluation.results) == {
            "XGB", "RF", "LR", "KNN", "LVQ",
        }

    def test_table2_algorithms_present(self, pipeline_result):
        assert set(pipeline_result.device_evaluation.results) == {
            "XGB", "RF", "SVM", "KNN", "LVQ",
        }

    def test_app_classifier_high_f1(self, pipeline_result):
        best = pipeline_result.app_evaluation.table_rows()[0]
        assert best[3] >= 0.9  # F1 of the winner

    def test_device_classifier_high_f1(self, pipeline_result):
        best = pipeline_result.device_evaluation.table_rows()[0]
        assert best[3] >= 0.85

    def test_suspiciousness_in_unit_interval(self, pipeline_result):
        for score in pipeline_result.suspiciousness.values():
            assert 0.0 <= score <= 1.0

    def test_workers_more_suspicious(self, pipeline_result):
        worker_scores = [
            v.app_suspiciousness for v in pipeline_result.verdicts if v.ground_truth_worker
        ]
        regular_scores = [
            v.app_suspiciousness for v in pipeline_result.verdicts if not v.ground_truth_worker
        ]
        assert np.mean(worker_scores) > np.mean(regular_scores) + 0.2

    def test_verdicts_cover_all_observations(self, pipeline_result):
        assert len(pipeline_result.verdicts) == len(pipeline_result.observations)

    def test_organic_split_partitions_workers(self, pipeline_result):
        organic, dedicated = pipeline_result.organic_split()
        assert organic + dedicated == len(pipeline_result.worker_verdicts())

    def test_worker_detection_recall(self, pipeline_result):
        workers = pipeline_result.worker_verdicts()
        detected = sum(1 for v in workers if v.predicted_worker)
        assert detected / len(workers) >= 0.8

    def test_regular_false_positives_low(self, pipeline_result):
        regulars = [v for v in pipeline_result.verdicts if not v.ground_truth_worker]
        flagged = sum(1 for v in regulars if v.predicted_worker)
        assert flagged / len(regulars) <= 0.25

    def test_feature_importances_are_distribution(self, pipeline_result):
        for evaluation in (
            pipeline_result.app_evaluation,
            pipeline_result.device_evaluation,
        ):
            total = sum(evaluation.feature_importances.values())
            assert total == pytest.approx(1.0, abs=1e-6)


class TestAppClassifierModel:
    def test_fit_predict_roundtrip(self, study, observations):
        dataset = build_app_dataset(study, observations)
        model = AppClassifier(random_state=0).fit(dataset)
        predictions = model.predict(dataset.X)
        assert set(np.unique(predictions)) <= {0, 1}
        assert np.mean(predictions == dataset.y) >= 0.95

    def test_flag_fraction_bounds(self, study, observations):
        dataset = build_app_dataset(study, observations)
        model = AppClassifier(random_state=0).fit(dataset)
        assert 0.0 <= model.flag_fraction(dataset.X) <= 1.0
        assert model.flag_fraction(np.empty((0, dataset.X.shape[1]))) == 0.0

    def test_handles_nan_input(self, study, observations):
        dataset = build_app_dataset(study, observations)
        model = AppClassifier(random_state=0).fit(dataset)
        row = dataset.X[0].copy()
        row[0] = np.nan
        assert model.predict(row).shape == (1,)


class TestOnDeviceDetector:
    @pytest.fixture()
    def detector(self, pipeline_result):
        return OnDeviceDetector(
            pipeline_result.app_model, pipeline_result.device_model
        )

    def test_report_has_no_identifying_fields(self, detector, study, pipeline_result):
        report = detector.scan(pipeline_result.observations[0], study.catalog)
        field_names = {f.name for f in dataclasses.fields(report)}
        assert field_names == {
            "n_apps_scanned",
            "n_apps_flagged",
            "app_suspiciousness",
            "device_flagged",
            "worker_probability",
        }
        for value in dataclasses.asdict(report).values():
            assert isinstance(value, (int, float, bool))

    def test_scan_accuracy(self, detector, study, pipeline_result):
        correct = sum(
            detector.scan(obs, study.catalog, study.vt_client).device_flagged
            == obs.is_worker
            for obs in pipeline_result.observations
        )
        assert correct / len(pipeline_result.observations) >= 0.85

    def test_suspiciousness_consistent_with_flags(self, detector, study, pipeline_result):
        report = detector.scan(pipeline_result.observations[0], study.catalog)
        if report.n_apps_scanned:
            assert report.app_suspiciousness == pytest.approx(
                report.n_apps_flagged / report.n_apps_scanned
            )
