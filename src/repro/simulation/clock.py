"""Simulated wall-clock time.

The simulation runs in continuous seconds from an epoch corresponding to
the study start (the paper's data spans October 2019 - April 2020).
History (pre-study app installs and reviews) lives at negative offsets.
"""

from __future__ import annotations

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "days",
    "hours",
    "minutes",
    "day_index",
    "SimClock",
]

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0


def days(n: float) -> float:
    """n days in seconds."""
    return n * SECONDS_PER_DAY


def hours(n: float) -> float:
    return n * SECONDS_PER_HOUR


def minutes(n: float) -> float:
    return n * 60.0


def day_index(timestamp: float) -> int:
    """Calendar day containing ``timestamp`` (day 0 starts at t=0)."""
    return int(timestamp // SECONDS_PER_DAY)


class SimClock:
    """A monotonically advancing simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards ({timestamp} < {self._now})"
            )
        self._now = float(timestamp)
        return self._now

    @property
    def day(self) -> int:
        return day_index(self._now)
