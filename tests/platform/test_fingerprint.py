"""Tests for Appendix-A snapshot fingerprinting / device coalescing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.fingerprint import (
    InstallFingerprint,
    coalesce_installs,
    jaccard,
)


def fp(install_id, first, last, android_id=None, apps=(), accounts=()):
    return InstallFingerprint(
        install_id=install_id,
        participant_id="p" + install_id,
        android_id=android_id,
        first_seen=first,
        last_seen=last,
        app_installs=frozenset(apps),
        accounts=frozenset(accounts),
    )


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(frozenset("ab"), frozenset("cd")) == 0.0

    def test_empty_sets(self):
        assert jaccard(frozenset(), frozenset()) == 0.0

    def test_partial_overlap(self):
        assert jaccard(frozenset("abc"), frozenset("bcd")) == pytest.approx(0.5)


class TestCoalescing:
    def test_same_android_id_sequential_merged(self):
        a = fp("1", 0, 10, android_id="X")
        b = fp("2", 20, 30, android_id="X")
        clusters = coalesce_installs([a, b])
        assert len(clusters) == 1
        assert clusters[0].install_ids == ["1", "2"]

    def test_different_android_ids_not_merged(self):
        clusters = coalesce_installs(
            [fp("1", 0, 10, android_id="X"), fp("2", 20, 30, android_id="Y")]
        )
        assert len(clusters) == 2

    def test_overlapping_intervals_never_merged(self):
        """Two concurrent installs cannot be one device, even with the
        same Android ID reported (spoofing/shared id)."""
        clusters = coalesce_installs(
            [fp("1", 0, 50, android_id="X"), fp("2", 25, 60, android_id="X")]
        )
        assert len(clusters) == 2

    def test_missing_android_id_app_similarity_merges(self):
        apps = {(f"com.app{i}", float(i)) for i in range(10)}
        a = fp("1", 0, 10, apps=apps)
        b = fp("2", 20, 30, apps=apps | {("com.extra", 99.0)})
        assert len(coalesce_installs([a, b])) == 1

    def test_missing_android_id_low_similarity_distinct(self):
        a = fp("1", 0, 10, apps={("a", 1.0), ("b", 2.0)})
        b = fp("2", 20, 30, apps={("c", 1.0), ("d", 2.0)})
        assert len(coalesce_installs([a, b])) == 2

    def test_account_similarity_merges(self):
        accounts = {f"user{i}@gmail.com" for i in range(10)}
        a = fp("1", 0, 10, accounts=accounts)
        b = fp("2", 20, 30, accounts=accounts)
        assert len(coalesce_installs([a, b])) == 1

    def test_threshold_boundary_not_merged(self):
        """Jaccard exactly at the threshold must NOT merge (strict >)."""
        # 9 shared of 16 total = 0.5625 exactly.
        shared = {(f"s{i}", float(i)) for i in range(9)}
        a = fp("1", 0, 10, apps=shared | {(f"a{i}", 0.0) for i in range(3)})
        b = fp("2", 20, 30, apps=shared | {(f"b{i}", 0.0) for i in range(4)})
        total = len(a.app_installs | b.app_installs)
        assert 9 / total == pytest.approx(0.5625)
        assert len(coalesce_installs([a, b])) == 2

    def test_three_installs_transitive_merge(self):
        a = fp("1", 0, 10, android_id="X")
        b = fp("2", 20, 30, android_id="X")
        c = fp("3", 40, 50, android_id="X")
        clusters = coalesce_installs([a, b, c])
        assert len(clusters) == 1
        assert clusters[0].install_ids == ["1", "2", "3"]

    def test_cluster_metadata(self):
        a = fp("1", 0, 10, android_id="X")
        b = fp("2", 20, 30, android_id="X")
        cluster = coalesce_installs([a, b])[0]
        assert cluster.participant_ids == {"p1", "p2"}
        assert cluster.android_ids == {"X"}

    def test_empty_input(self):
        assert coalesce_installs([]) == []

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=1, max_size=12))
    def test_property_partition(self, device_assignment):
        """Coalescing yields a partition: every install appears in
        exactly one cluster."""
        installs = [
            fp(str(i), first=i * 100.0, last=i * 100.0 + 50.0, android_id=f"dev{d}")
            for i, d in enumerate(device_assignment)
        ]
        clusters = coalesce_installs(installs)
        seen = [iid for c in clusters for iid in c.install_ids]
        assert sorted(seen) == sorted(str(i) for i in range(len(installs)))

    def test_sequential_installs_same_device_count(self):
        """N sequential installs with one Android ID → one device."""
        installs = [
            fp(str(i), first=i * 100.0, last=i * 100.0 + 50.0, android_id="same")
            for i in range(5)
        ]
        assert len(coalesce_installs(installs)) == 1
