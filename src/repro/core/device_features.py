"""Device usage features (§8.1): one vector per device.

The seven feature groups from the paper:

1. pre-installed and user-installed app counts;
2. *app suspiciousness* — fraction of installed apps flagged by the §7
   app classifier (supplied by the pipeline; NaN when unavailable);
3. stopped apps;
4. average daily installs and uninstalls;
5. Gmail / non-Gmail account counts and distinct account types;
6. installed apps reviewed from device accounts;
7. total apps reviewed from device accounts.

Plus the derived "average reviews per registered account", which
Figure 14 shows among the top-4 most important device features.
"""

from __future__ import annotations

import math

import numpy as np

from .observations import DeviceObservation

__all__ = [
    "DEVICE_FEATURE_NAMES",
    "extract_device_features",
    "device_feature_vector",
    "device_feature_matrix",
]

DEVICE_FEATURE_NAMES: tuple[str, ...] = (
    "n_preinstalled_apps",        # (1)
    "n_user_installed_apps",
    "app_suspiciousness",         # (2)
    "n_stopped_apps",             # (3)
    "daily_installs",             # (4)
    "daily_uninstalls",
    "n_gmail_accounts",           # (5)
    "n_non_gmail_accounts",
    "n_account_types",
    "n_installed_and_reviewed",   # (6)
    "total_apps_reviewed",        # (7)
    "total_reviews",
    "reviews_per_account_mean",
    "apps_used_per_day",
    "snapshots_per_day",
)


def extract_device_features(
    obs: DeviceObservation,
    app_suspiciousness: float | None = None,
) -> dict[str, float]:
    """Feature dict for one device.

    ``app_suspiciousness`` is the fraction of the device's installed apps
    the app classifier flagged as promotion-installed; pass ``None``
    (→ NaN, imputed downstream) when the app classifier has not run.
    """
    n_accounts = max(obs.n_gmail_accounts, 1)
    return {
        "n_preinstalled_apps": float(obs.n_preinstalled),
        "n_user_installed_apps": float(obs.n_user_installed),
        "app_suspiciousness": (
            float(app_suspiciousness) if app_suspiciousness is not None else math.nan
        ),
        "n_stopped_apps": float(len(obs.stopped_apps_first)),
        "daily_installs": obs.daily_installs,
        "daily_uninstalls": obs.daily_uninstalls,
        "n_gmail_accounts": float(obs.n_gmail_accounts),
        "n_non_gmail_accounts": float(obs.n_non_gmail_accounts),
        "n_account_types": float(obs.n_account_types),
        "n_installed_and_reviewed": float(obs.n_installed_and_reviewed),
        "total_apps_reviewed": float(obs.apps_reviewed_total),
        "total_reviews": float(obs.total_account_reviews),
        "reviews_per_account_mean": obs.total_account_reviews / n_accounts,
        "apps_used_per_day": obs.apps_used_per_day,
        "snapshots_per_day": obs.snapshots_per_day,
    }


def device_feature_vector(
    obs: DeviceObservation,
    app_suspiciousness: float | None = None,
) -> np.ndarray:
    features = extract_device_features(obs, app_suspiciousness)
    return np.array(
        [features[name] for name in DEVICE_FEATURE_NAMES], dtype=np.float64
    )


def device_feature_matrix(
    observations: list[DeviceObservation],
    scores: list[float | None] | None = None,
) -> np.ndarray:
    """One row per device, rows aligned with ``observations``.

    ``scores[i]`` is device *i*'s app-suspiciousness (``None`` → NaN).
    Byte-identical to stacking :func:`device_feature_vector` — same
    python floats, written straight into the matrix in canonical
    ``DEVICE_FEATURE_NAMES`` order instead of through a dict and a
    per-row array allocation.
    """
    n = len(observations)
    M = np.empty((n, len(DEVICE_FEATURE_NAMES)), dtype=np.float64)
    if scores is None:
        scores = [None] * n
    for i, (obs, score) in enumerate(zip(observations, scores)):
        n_accounts = max(obs.n_gmail_accounts, 1)
        M[i] = (
            float(obs.n_preinstalled),
            float(obs.n_user_installed),
            float(score) if score is not None else math.nan,
            float(len(obs.stopped_apps_first)),
            obs.daily_installs,
            obs.daily_uninstalls,
            float(obs.n_gmail_accounts),
            float(obs.n_non_gmail_accounts),
            float(obs.n_account_types),
            float(obs.n_installed_and_reviewed),
            float(obs.apps_reviewed_total),
            float(obs.total_account_reviews),
            obs.total_account_reviews / n_accounts,
            obs.apps_used_per_day,
            obs.snapshots_per_day,
        )
    return M
