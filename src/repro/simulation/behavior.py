"""Behaviour engine: pre-study device state and per-device study state.

* :meth:`BehaviorEngine.setup_device` builds the *pre-study* state —
  registered accounts, installed apps with historical install times,
  stopped apps, and the review history of every account (§6.2/§6.3 all
  measure state that mostly predates the RacketStore install).
* Study days are advanced by the phase-split engine in
  :mod:`repro.simulation.phases` (foreground sessions, app churn,
  promotion jobs, scheduled review postings with persona-calibrated
  install-to-review delays — Figure 7).  The engine's role during the
  study is bookkeeping: it owns each device's pending-review heap,
  favorite-app list, and per-account review mirror that the phase-1
  tasks ship out and the commit folds back.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..playstore.catalog import App, Catalog
from ..playstore.reviews import ReviewStore
from .campaigns import CampaignBoard
from .clock import SECONDS_PER_DAY
from .config import SimulationConfig
from .device import SimDevice
from .personas import Persona

__all__ = ["BehaviorEngine", "PendingReview", "review_rating"]


def review_rating(rng: np.random.Generator, promo: bool) -> int:
    """Promo reviews are 4-5 stars; organic ratings span the scale."""
    if promo:
        return int(rng.choice((4, 5), p=(0.2, 0.8)))
    return int(rng.choice((1, 2, 3, 4, 5), p=(0.07, 0.06, 0.12, 0.3, 0.45)))


@dataclass(order=True, slots=True)
class PendingReview:
    """A review scheduled for the future (heap-ordered by due time)."""

    due: float
    package: str = field(compare=False)
    min_rating: int = field(compare=False)
    stop_after: bool = field(compare=False, default=False)


class BehaviorEngine:
    """Generates device histories against the shared world state."""

    def __init__(
        self,
        config: SimulationConfig,
        catalog: Catalog,
        review_store: ReviewStore,
        board: CampaignBoard,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self.review_store = review_store
        self.board = board
        self.rng = rng

        apps = catalog.all_apps()
        self._popular = [a for a in apps if a.on_play_store and not a.preinstalled
                         and not a.is_antivirus and a.review_count >= config.popular_review_threshold]
        # Zipf installation weights over the popular pool: everyone
        # concentrates on the head, but the long tail is what lets some
        # popular apps appear only on regular devices (§7.2 labeling).
        ranks = np.arange(1, len(self._popular) + 1, dtype=np.float64)
        weights = ranks ** -config.zipf_exponent
        self._popular_weights = weights / weights.sum()
        self._promoted_pool = sorted(board.advertised_packages())
        self._third_party = [a for a in apps if not a.on_play_store]
        self._av_apps = catalog.antivirus_apps()

        self._pending: dict[str, list[PendingReview]] = {}
        self._favorites: dict[str, list[str]] = {}
        #: Per-device review mirror: google_id -> packages reviewed.
        #: Google accounts are device-owned, so the Play "one live
        #: review per (account, app)" dedup check is device-local and
        #: can run inside a phase-1 shard without the global store.
        self._reviewed: dict[str, dict[str, set[str]]] = {}

    # -- static pools (read by the phase-split day engine) ---------------
    def popular_apps(self) -> list[App]:
        return list(self._popular)

    def popular_weights(self) -> np.ndarray:
        return self._popular_weights

    def promoted_packages(self) -> list[str]:
        return list(self._promoted_pool)

    # -- per-device study state handed to/from phase-1 tasks -------------
    def favorites_for(self, device_id: str) -> tuple[str, ...]:
        return tuple(self._favorites.get(device_id) or ())

    def pending_for(self, device_id: str) -> tuple[PendingReview, ...]:
        """Current pending-review heap, in heap (not sorted) order."""
        return tuple(self._pending.get(device_id, ()))

    def set_pending(self, device_id: str, pending) -> None:
        self._pending[device_id] = list(pending)

    def reviewed_mirror(self, device: SimDevice) -> dict[str, set[str]]:
        """The device's account->reviewed-packages map (built lazily
        from the global store after setup, then maintained by the
        phase-1 runners)."""
        mirror = self._reviewed.get(device.device_id)
        if mirror is None:
            mirror = {
                account.google_id: self.review_store.apps_reviewed_by(
                    account.google_id
                )
                for account in device.gmail_accounts()
            }
            self._reviewed[device.device_id] = mirror
        return mirror

    def set_reviewed_mirror(self, device_id: str, mirror: dict[str, set[str]]) -> None:
        self._reviewed[device_id] = mirror

    # ------------------------------------------------------------------
    # Setup: pre-study history
    # ------------------------------------------------------------------
    def setup_device(self, device: SimDevice, persona: Persona, factory) -> None:
        rng = self.rng
        config = self.config

        for account in factory.accounts_for_persona(persona):
            device.register_account(account)

        # Pre-installed system apps, present since "device purchase".
        for app in self.catalog.preinstalled():
            device.install(
                app,
                timestamp=-config.history_days * SECONDS_PER_DAY,
                grant_probability=1.0,
                rng=rng,
                preinstalled=True,
            )

        # Historical user installs: personal apps plus (for workers) promo
        # apps still retained from past campaigns.  Promotion volume
        # scales with the *base* install count; the hoarder tail is all
        # personal use.
        n_base, n_hoard = persona.sample_initial_app_mix(rng)
        n_promo = int(round(n_base * persona.initial_promo_fraction))
        n_personal = n_base - n_promo + n_hoard

        installed_apps: list[tuple[App, bool]] = []
        personal_choices = rng.choice(
            len(self._popular),
            size=min(n_personal, len(self._popular)),
            replace=False,
            p=self._popular_weights,
        )
        installed_apps.extend((self._popular[i], False) for i in personal_choices)
        if n_promo and self._promoted_pool:
            promo_choices = rng.choice(
                len(self._promoted_pool), size=min(n_promo, len(self._promoted_pool)), replace=False
            )
            installed_apps.extend(
                (self.catalog.get(self._promoted_pool[i]), True) for i in promo_choices
            )

        for app, promo in installed_apps:
            install_time = -float(rng.uniform(1.0, config.history_days)) * SECONDS_PER_DAY
            device.install(
                app,
                timestamp=install_time,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
                promo=promo,
            )

        for _ in range(persona.sample_third_party_apps(rng)):
            if not self._third_party:
                break
            app = self._third_party[int(rng.integers(0, len(self._third_party)))]
            if app.package in device.installed:
                continue
            device.install(
                app,
                timestamp=-float(rng.uniform(1.0, config.history_days / 2)) * SECONDS_PER_DAY,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
            )

        if self._av_apps and rng.random() < persona.av_app_prob:
            app = self._av_apps[int(rng.integers(0, len(self._av_apps)))]
            device.install(app, timestamp=-float(rng.uniform(1, 200)) * SECONDS_PER_DAY,
                           grant_probability=persona.dangerous_permission_grant_prob, rng=rng)

        self._assign_stopped_state(device, persona)
        self._favorites[device.device_id] = self._pick_favorites(device)
        self._generate_review_history(device, persona)

    def _pick_favorites(self, device: SimDevice) -> list[str]:
        """Apps the owner actually uses day to day (sessions draw from
        these; §8.1 notes even pre-installed app use is discriminative)."""
        rng = self.rng
        personal = [
            rec.package
            for rec in device.installed.values()
            if not rec.promo_install
        ]
        k = min(len(personal), max(4, int(rng.integers(6, 14))))
        if k == 0:
            return []
        chosen = rng.choice(len(personal), size=k, replace=False)
        return [personal[i] for i in chosen]

    def _assign_stopped_state(self, device: SimDevice, persona: Persona) -> None:
        """Mark the persona-appropriate number of apps stopped; promoted
        apps are stopped preferentially (§6.3: workers never open many of
        the apps they install)."""
        rng = self.rng
        target = persona.sample_stopped_apps(rng)
        user_apps = device.user_installed()
        promo_first = sorted(user_apps, key=lambda rec: (not rec.promo_install, rec.package))
        for i, record in enumerate(promo_first):
            record.stopped = i < target
        # Pre-installed apps are never stopped.
        for record in device.installed.values():
            if record.preinstalled:
                record.stopped = False

    def _generate_review_history(self, device: SimDevice, persona: Persona) -> None:
        """Create the pre-study Play-review footprint of the device's
        accounts: reviews for installed apps (the Fig 6-center and Fig 7
        joins) plus reviews for apps no longer installed (Fig 6-right)."""
        rng = self.rng
        gmail = device.gmail_accounts()
        if not gmail:
            return
        config = self.config
        volume_mult = (
            config.worker_review_volume_multiplier if persona.is_worker else 1.0
        )
        delay_mult = (
            config.worker_review_delay_multiplier if persona.is_worker else 1.0
        )

        posted = 0
        # Reviews for currently installed apps.
        for record in device.user_installed():
            if record.promo_install:
                review_probability = persona.review_prob_per_promo_install * volume_mult
                n_accounts = min(1 + int(rng.poisson(1.4)), len(gmail))
            else:
                review_probability = persona.review_prob_per_personal_install
                n_accounts = 1
            if rng.random() >= review_probability:
                continue
            reviewers = rng.choice(len(gmail), size=n_accounts, replace=False)
            for reviewer_index in reviewers:
                account = gmail[int(reviewer_index)]
                delay_days = persona.sample_review_delay_days(rng) * delay_mult
                review_time = record.install_time + delay_days * SECONDS_PER_DAY
                if review_time >= 0.0:
                    # Falls inside the study window: schedule it live.
                    # It still counts toward the device's review output,
                    # otherwise the historical top-up below would refill
                    # the quota and negate evasion delay multipliers.
                    heapq.heappush(
                        self._pending.setdefault(device.device_id, []),
                        PendingReview(
                            due=review_time,
                            package=record.package,
                            min_rating=4 if record.promo_install else 1,
                        ),
                    )
                    posted += 1
                    continue
                self.review_store.post_review(
                    record.package,
                    account.google_id,
                    review_rating(rng, record.promo_install),
                    review_time,
                )
                device.record_review_event(record.package, review_time)
                posted += 1

        # Reviews for apps since uninstalled (past campaigns): these pad
        # the "total reviews from registered accounts" histogram.
        target_total = int(persona.sample_historical_reviews(rng) * volume_mult)
        pool = self._promoted_pool if persona.is_worker else [a.package for a in self._popular]
        # Exclude currently installed apps: these reviews stand for past
        # campaigns whose apps were since uninstalled, so they must not
        # pollute the install-to-review join (Fig 7).
        installed_now = device.installed_packages()
        pool = [package for package in pool if package not in installed_now]
        attempts = 0
        while posted < target_total and pool and attempts < target_total * 3:
            attempts += 1
            account = gmail[int(rng.integers(0, len(gmail)))]
            package = pool[int(rng.integers(0, len(pool)))]
            if self.review_store.has_reviewed(account.google_id, package):
                continue
            review_time = -float(rng.uniform(0.5, self.config.history_days)) * SECONDS_PER_DAY
            self.review_store.post_review(
                package,
                account.google_id,
                review_rating(rng, persona.is_worker),
                review_time,
            )
            posted += 1

    def pending_reviews(self, device_id: str) -> list[PendingReview]:
        return sorted(self._pending.get(device_id, []))
