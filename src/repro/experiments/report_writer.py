"""EXPERIMENTS.md generator: the paper-vs-measured record, regenerable.

Runs every registered experiment plus the findings scorecard against a
workbench and writes the complete markdown document.  The checked-in
EXPERIMENTS.md is the output of one default-cohort run; anyone can
regenerate it (``python -m repro --scale default write-experiments``)
and diff.
"""

from __future__ import annotations

from pathlib import Path

from .common import Workbench
from .findings import check_findings
from .registry import EXPERIMENTS

__all__ = ["generate_experiments_md"]

_PREAMBLE = """\
# EXPERIMENTS — paper vs measured

Auto-generated record of every table and figure in the paper's
evaluation, reproduced on the simulated cohort (see DESIGN.md for the
substitution rationale).  Regenerate with:

```bash
python -m repro --scale default write-experiments --out EXPERIMENTS.md
```

**Reading guide.**  Absolute corpus sizes are scaled (hundreds of
devices instead of 803; thousands of crawled reviews instead of 110M);
what is calibrated — and what the tables below compare — is per-device
and per-app behaviour: account counts, install-to-review delays, churn,
stopped apps, review volumes, classifier metrics.  "Shape" means the
paper's qualitative claim: who wins, by roughly what factor, which
contrasts are significant.

## Findings scorecard

Every qualitative claim in §6-§8, checked programmatically
(`repro.experiments.findings`):

"""

_DEVIATIONS = """\
## Known deviations and why

* **Scale.**  The cohort is the paper's *classifier* cohort (178 worker
  + 88 regular eligible devices) plus dropouts, not the full 803-device
  deployment; `SimulationConfig.paper_scale()` runs the larger cohort.
  Snapshot and review corpus totals scale accordingly.
* **Figure 4 maxima.**  The paper reports up to 55k snapshots/day per
  device, which exceeds the 5 s fast cadence's theoretical 17,280/day —
  their count evidently includes per-record rows.  We count periodic
  samples exactly, so our per-day maxima are lower; medians and the
  ">=100/day for most devices" claim match.
* **Figure 13 per-feature order.**  The paper's top-2 (accounts that
  reviewed the app; install-to-review time) carry substantial importance
  here too, but our synthetic foreground-usage signal is cleaner than
  real telemetry, so usage/churn features rank above them under mean
  decrease in Gini.  The permutation-importance cross-check (reported in
  the same bench) ranks review-behaviour features high; the bench
  asserts the robust family-level claim rather than an exact ordering.
* **Classifier ceilings.**  Synthetic personas are more self-consistent
  than humans, so device-classifier F1/AUC land a few points above the
  paper's 95.29%/0.9455 even with matched features and protocol.  The
  algorithm ranking (XGB/RF at the top, then SVM/KNN, LVQ last with a
  recall deficit) and the low-FPR regime match.
* **Install-to-review joins.**  Counts scale with the cohort (the paper
  joined 40,397 worker reviews; we join ~14k on the default cohort) —
  the delay distributions, not the counts, are the calibrated quantity.
* **Interviews and recruitment ethnography** (§6.2/§6.3 quotes,
  Appendix B-D) have no computational content to reproduce; the
  recruitment *funnel* and §4 country mix are modelled.
"""


def generate_experiments_md(workbench: Workbench, out_path: str | Path) -> str:
    """Run everything and write the markdown document; returns the text."""
    parts: list[str] = [_PREAMBLE]

    results = check_findings(workbench)
    parts.append("| id | section | claim | status | measured |")
    parts.append("|---|---|---|---|---|")
    for result in results:
        finding = result.finding
        status = "holds" if result.holds else "**DIFFERS**"
        parts.append(
            f"| {finding.finding_id} | {finding.section} | {finding.statement} "
            f"| {status} | {result.measured} |"
        )
    holding = sum(r.holds for r in results)
    parts.append("")
    parts.append(f"**{holding}/{len(results)} findings hold on this run.**")
    parts.append("")

    parts.append("## Per-experiment reports\n")
    for experiment_id, runner in EXPERIMENTS.items():
        report = runner(workbench)
        parts.append(f"### {experiment_id}: {report.title}\n")
        parts.append("```")
        parts.extend(report.lines)
        parts.append("```")
        parts.append("")

    parts.append(_DEVIATIONS)
    text = "\n".join(parts)
    Path(out_path).write_text(text)
    return text
