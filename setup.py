"""Setup shim: lets `pip install -e .` work on machines without the
`wheel` package (offline environments) via the legacy editable path."""
from setuptools import setup

setup()
