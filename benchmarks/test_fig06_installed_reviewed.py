"""Bench: Figure 6 installed vs installed-and-reviewed vs total reviews."""

from repro.analysis import compute_installed_apps
from repro.experiments import run_experiment


def test_fig06_installed_reviewed(benchmark, workbench, emit):
    benchmark(compute_installed_apps, workbench.observations)
    report = emit(run_experiment("fig06", workbench))
    # The paper's "dramatic difference": workers review ~58x more of
    # their installed apps (40.51 vs 0.7).
    assert report.metrics["worker_reviewed_mean"] >= 15 * max(
        report.metrics["regular_reviewed_mean"], 0.1
    )
    # Installed-app counts stay in the same ballpark (65 vs 78).
    ratio = report.metrics["worker_installed_mean"] / report.metrics["regular_installed_mean"]
    assert 0.8 <= ratio <= 1.6
    assert report.metrics["reviews_significant"] == 1.0
