"""RacketStore web app: sign-in service, snapshot ingest engine, queries.

Mirrors the server side of Figure 3: the sign-in component validates
participant codes and records installs; the snapshot collector engine
receives compressed chunks, acknowledges them with the SHA-256 of the
received bytes, decompresses, and inserts the records into the document
store; the backend tracks every app seen on a participant device so the
review crawler can follow it ("live" crawling, §5).
"""

from __future__ import annotations

import gzip
import itertools
import json
from dataclasses import dataclass

from .. import obs
from ..obs.metrics import MetricsRegistry
from ..simulation.clock import SECONDS_PER_DAY
from .buffer import chunk_hash
from .fingerprint import DeviceCluster, InstallFingerprint, coalesce_installs
from .models import record_from_dict
from .store import DocumentStore

__all__ = ["RacketStoreServer", "IngestStats", "PaymentLedger"]

_COLLECTIONS = {
    "initial": "initial_snapshots",
    "fast_run": "fast_runs",
    "slow_run": "slow_runs",
    "app_change": "app_changes",
}


class IngestStats:
    """Read-only view of the server's ingest counters.

    Historically a plain dataclass of ints; now every count lives in a
    :class:`~repro.obs.MetricsRegistry` (the process-wide one when
    ``obs.configure()`` has run, a private real registry otherwise) and
    this view reads it back, so the dashboard, the HTTP stats route and
    a Prometheus scrape all see the same numbers.

    ``malformed_chunks`` counts transport-level corruption (bad gzip /
    undecodable bytes); ``malformed_records`` counts schema drift (a
    JSON line that fails validation).  ``malformed_total`` preserves the
    pre-split semantics, which lumped both into one counter.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    @property
    def chunks_received(self) -> int:
        return int(self._registry.value("ingest_chunks_received_total"))

    @property
    def bytes_received(self) -> int:
        return int(self._registry.value("ingest_bytes_received_total"))

    @property
    def records_inserted(self) -> int:
        return int(self._registry.value("ingest_records_inserted_total"))

    @property
    def malformed_chunks(self) -> int:
        return int(self._registry.value("ingest_malformed_chunks_total"))

    @property
    def malformed_records(self) -> int:
        return int(self._registry.value("ingest_malformed_records_total"))

    @property
    def malformed_total(self) -> int:
        """Backwards-compatible pre-split count (chunks + records)."""
        return self.malformed_chunks + self.malformed_records

    @property
    def duplicate_chunks(self) -> int:
        """Retransmitted chunks absorbed by the dedup window (the chunk
        was already durably stored; only the ack had been lost)."""
        return int(self._registry.value("ingest_duplicate_chunks_total"))

    @property
    def chunk_rollbacks(self) -> int:
        """Chunk ingests rolled back after a mid-insert failure."""
        return int(self._registry.value("ingest_chunk_rollbacks_total"))


@dataclass
class PaymentLedger:
    """§4 participant payments: $1 per install + $0.20 per retained day."""

    install_payment_usd: float = 1.0
    daily_payment_usd: float = 0.2

    def payment_for(self, first_seen: float, last_seen: float) -> float:
        days_retained = max(0, int((last_seen - first_seen) // SECONDS_PER_DAY))
        return self.install_payment_usd + days_retained * self.daily_payment_usd


class RacketStoreServer:
    """The backend the mobile apps report to."""

    #: Default dedup-window capacity: retransmits arrive within a few
    #: alarm cycles of the original, so a bounded recent-chunk memory is
    #: enough for exactly-once ingest without unbounded growth.
    DEDUP_WINDOW = 65_536

    def __init__(
        self,
        store: DocumentStore | None = None,
        review_crawler=None,
        registry: MetricsRegistry | None = None,
        *,
        dedup_window: int | None = None,
    ) -> None:
        self.store = store or DocumentStore()
        self.review_crawler = review_crawler
        # Attach to the process-wide registry when observability is on so
        # exports see ingest counters; otherwise keep a private real
        # registry so ``stats`` always counts (tests rely on it).
        if registry is None:
            registry = obs.registry() if obs.metrics_enabled() else MetricsRegistry()
        self.metrics = registry
        self.stats = IngestStats(registry)
        self._c_chunks = registry.counter(
            "ingest_chunks_received_total", help="compressed chunks received"
        )
        self._c_bytes = registry.counter(
            "ingest_bytes_received_total", help="compressed bytes received"
        )
        self._c_records = registry.counter(
            "ingest_records_inserted_total", help="snapshot records stored"
        )
        self._c_malformed_chunks = registry.counter(
            "ingest_malformed_chunks_total",
            help="chunks dropped for transport corruption (bad gzip/encoding)",
        )
        self._c_malformed_records = registry.counter(
            "ingest_malformed_records_total",
            help="record lines dropped for schema drift (bad JSON/shape)",
        )
        self._c_duplicates = registry.counter(
            "ingest_duplicate_chunks_total",
            help="retransmitted chunks already durably stored (dedup hits)",
        )
        self._c_rollbacks = registry.counter(
            "ingest_chunk_rollbacks_total",
            help="chunk ingests rolled back after a mid-insert failure",
        )
        self._h_latency = registry.histogram(
            "ingest_chunk_seconds", help="receive_chunk wall time"
        )
        # Idempotent-receive memory: SHA-256 of every recently ingested
        # chunk, evicted FIFO past the window (dict preserves insertion
        # order).
        self._dedup_window = (
            self.DEDUP_WINDOW if dedup_window is None else int(dedup_window)
        )
        self._seen_chunks: dict[str, None] = {}
        self.payments = PaymentLedger()
        self._participants: set[str] = set()
        self._participant_counter = itertools.count(100_000)
        for name in _COLLECTIONS.values():
            self.store.collection(name).create_index("install_id")
        self.store.collection("installs").create_index("install_id")

    # -- sign-in service ------------------------------------------------------
    def issue_participant_id(self) -> str:
        """Mint a unique 6-digit participant code (sent out-of-band)."""
        code = str(next(self._participant_counter))
        self._participants.add(code)
        return code

    def is_valid_participant(self, participant_id: str) -> bool:
        return participant_id in self._participants

    def register_install(
        self,
        participant_id: str,
        install_id: str,
        android_id: str | None,
        timestamp: float,
    ) -> None:
        if not self.is_valid_participant(participant_id):
            raise PermissionError(f"unknown participant {participant_id!r}")
        self.store["installs"].insert(
            {
                "install_id": install_id,
                "participant_id": participant_id,
                "android_id": android_id,
                "registered_at": timestamp,
            }
        )

    # -- snapshot collector engine -----------------------------------------------
    def receive_chunk(self, kind: str, data: bytes) -> str:
        """Ingest one compressed chunk; the returned SHA-256 is the
        delivery acknowledgement the mobile app validates against.

        Records are validated line by line but inserted as one typed
        batch per snapshot family, so a columnar collection appends
        whole column runs instead of re-dispatching per document.

        Exactly-once contract: a chunk whose hash sits in the dedup
        window is re-acknowledged without inserting (its records are
        already durably stored; only the previous ack was lost in
        transit), and a receive that fails mid-insert rolls every
        snapshot collection back to its pre-chunk mark before the
        failure propagates — the store never exposes a partial chunk."""
        ack = chunk_hash(data)
        self._c_chunks.inc()
        self._c_bytes.inc(len(data))
        # obs.timer observes on every exit path, so the malformed-chunk
        # early return is recorded too.
        with obs.timer(self._h_latency), obs.trace("ingest.chunk"):
            if ack in self._seen_chunks:
                self._c_duplicates.inc()
                obs.get_logger("ingest").info(
                    "duplicate_chunk", kind=kind, sha256=ack[:12]
                )
                return ack
            try:
                lines = gzip.decompress(data).decode().splitlines()
            except (OSError, UnicodeDecodeError):
                self._c_malformed_chunks.inc()
                obs.get_logger("ingest").warning(
                    "malformed_chunk", kind=kind, bytes=len(data)
                )
                return ack
            records: list[tuple[str, dict]] = []
            for line in lines:
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                    record_from_dict(payload)  # schema validation
                except (ValueError, TypeError):
                    self._c_malformed_records.inc()
                    obs.get_logger("ingest").warning("malformed_record", kind=kind)
                    continue
                records.append((payload["_type"], payload))
            marks = [
                (collection, collection.mark())
                for collection in (
                    self.store[name] for name in _COLLECTIONS.values()
                )
            ]
            try:
                inserted = self._insert_batches(records)
            except BaseException:
                for collection, mark in marks:
                    collection.rollback_to(mark)
                self._c_rollbacks.inc()
                obs.get_logger("ingest").warning(
                    "chunk_rollback", kind=kind, sha256=ack[:12]
                )
                raise
            self._c_records.inc(inserted)
            self._remember_chunk(ack)
        return ack

    def _remember_chunk(self, sha256: str) -> None:
        self._seen_chunks[sha256] = None
        while len(self._seen_chunks) > self._dedup_window:
            self._seen_chunks.pop(next(iter(self._seen_chunks)))

    def _insert_batches(self, records: list[tuple[str, dict]]) -> int:
        batches: dict[str, list[dict]] = {name: [] for name in _COLLECTIONS}
        for type_name, payload in records:
            batches[type_name].append(payload)
        inserted = 0
        for type_name, batch in batches.items():
            if batch:
                inserted += self.store[_COLLECTIONS[type_name]].insert_many(batch)
        if self.review_crawler is None:
            return inserted
        # Backend: follow every app seen on a participant device (§5),
        # in wire order.
        for type_name, payload in records:
            if type_name == "initial":
                for app in payload["installed_apps"]:
                    self.review_crawler.track_app(app["package"])
            elif type_name == "app_change" and payload["action"] == "install":
                self.review_crawler.track_app(payload["package"])
        return inserted

    # -- queries used by the analyses ------------------------------------------------
    def install_ids(self) -> list[str]:
        # distinct() already deduplicates (one column pass on the
        # columnar backend); re-sorting lexicographically preserves the
        # historical sorted-set order exactly.
        return sorted(self.store["installs"].distinct("install_id"))

    def initial_snapshot(self, install_id: str) -> dict | None:
        return self.store["initial_snapshots"].find_one({"install_id": install_id})

    def fast_runs(self, install_id: str) -> list[dict]:
        return sorted(
            self.store["fast_runs"].find({"install_id": install_id, "_type": "fast_run"}),
            key=lambda d: d["start"],
        )

    def slow_runs(self, install_id: str) -> list[dict]:
        return sorted(
            self.store["slow_runs"].find({"install_id": install_id, "_type": "slow_run"}),
            key=lambda d: d["start"],
        )

    def app_changes(self, install_id: str) -> list[dict]:
        return sorted(
            self.store["app_changes"].find({"install_id": install_id}),
            key=lambda d: d["timestamp"],
        )

    def observation_interval(self, install_id: str) -> tuple[float, float] | None:
        """[first, last] timestamp observed for an install (Appendix A)."""
        timestamps: list[float] = []
        initial = self.initial_snapshot(install_id)
        if initial:
            timestamps.append(initial["timestamp"])
        for run in self.fast_runs(install_id):
            timestamps.extend((run["start"], run["end"]))
        for run in self.slow_runs(install_id):
            timestamps.extend((run["start"], run["end"]))
        if not timestamps:
            return None
        return min(timestamps), max(timestamps)

    def snapshot_count(self, install_id: str) -> int:
        """Exact snapshot count (expanding the RLE runs)."""
        total = 0
        for run in self.fast_runs(install_id):
            total += 1 + int((run["end"] - run["start"]) // run["period"])
        for run in self.slow_runs(install_id):
            total += 1 + int((run["end"] - run["start"]) // run["period"])
        return total

    # -- fingerprinting (Appendix A) ------------------------------------------------
    def install_fingerprint(self, install_id: str) -> InstallFingerprint | None:
        interval = self.observation_interval(install_id)
        install_doc = self.store["installs"].find_one({"install_id": install_id})
        if interval is None or install_doc is None:
            return None
        initial = self.initial_snapshot(install_id)
        apps = frozenset(
            (a["package"], a["install_time"]) for a in (initial or {}).get("installed_apps", ())
        )
        accounts: set[str] = set()
        for run in self.slow_runs(install_id):
            accounts.update(identifier for _service, identifier in run["accounts"])
        return InstallFingerprint(
            install_id=install_id,
            participant_id=install_doc["participant_id"],
            android_id=install_doc["android_id"],
            first_seen=interval[0],
            last_seen=interval[1],
            app_installs=apps,
            accounts=frozenset(accounts),
        )

    def unique_devices(self) -> list[DeviceCluster]:
        """Coalesce all installs into unique devices (Appendix A)."""
        fingerprints = [
            fp
            for install_id in self.install_ids()
            if (fp := self.install_fingerprint(install_id)) is not None
        ]
        return coalesce_installs(fingerprints)

    def total_payout_usd(self) -> float:
        total = 0.0
        for install_id in self.install_ids():
            interval = self.observation_interval(install_id)
            if interval:
                total += self.payments.payment_for(*interval)
        return total
