#!/usr/bin/env python3
"""Store-side deployment study: calibration + precision-first thresholds.

§8.2: "We prioritize precision, since a low precision would lead the app
market to take wrong actions against many regular devices."  A real
store deployment therefore (1) calibrates the detector's scores into
probabilities and (2) picks an operating threshold for a precision or
FPR budget on validation data — then applies that fixed threshold to
new devices.  This example runs that full flow across two independently
simulated cohorts (train/validate on one, deploy on the other).

Run:  python examples/store_deployment.py
"""

import sys

import numpy as np

from repro.core import DetectionPipeline, build_observations
from repro.core.device_features import device_feature_vector
from repro.core.pipeline import DetectionPipeline as _Pipeline
from repro.core.thresholds import sweep_operating_points, threshold_for_fpr
from repro.ml.calibration import IsotonicCalibrator
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def device_scores(result, data, observations) -> np.ndarray:
    suspiciousness = _Pipeline.score_devices(data, observations, result.app_model)
    rows = [
        device_feature_vector(obs, suspiciousness.get(obs.install_id, 0.0))
        for obs in observations
    ]
    proba = result.device_model.predict_proba(np.vstack(rows))
    worker_col = int(np.nonzero(result.device_model._model.classes_ == 1)[0][0])
    return proba[:, worker_col]


def main() -> int:
    print("Training cohort ...")
    train_data = run_study(SimulationConfig.small())
    result = DetectionPipeline(n_splits=5).run(train_data)
    train_obs = result.observations
    y_train = np.array([int(o.is_worker) for o in train_obs])
    raw_scores = device_scores(result, train_data, train_obs)

    # Calibrate scores -> probabilities on the training cohort.
    calibrator = IsotonicCalibrator().fit(raw_scores, y_train)
    calibrated = calibrator.predict_proba(raw_scores)

    # Operating-point sweep + the paper-style FPR budget (1.41%).
    print("\nOperating points on validation data:")
    points = sweep_operating_points(y_train, calibrated, n_points=6)
    print(
        render_table(
            ["threshold", "precision", "recall", "FPR", "flagged"],
            [
                (p.threshold, p.precision, p.recall, p.false_positive_rate, p.flagged_fraction)
                for p in points
            ],
        )
    )
    chosen = threshold_for_fpr(y_train, calibrated, max_fpr=0.0141)
    print(
        f"chosen threshold {chosen.threshold:.3f}: precision={chosen.precision:.3f}, "
        f"recall={chosen.recall:.3f}, FPR={chosen.false_positive_rate:.4f} "
        "(budget: the paper's 1.41%)"
    )

    # Deploy on an unseen cohort (different seed).
    print("\nDeploying on a fresh cohort ...")
    deploy_config = SimulationConfig.small().scaled(seed=SimulationConfig.small().seed + 999)
    deploy_data = run_study(deploy_config)
    deploy_obs = build_observations(deploy_data, deploy_data.eligible_participants(2))
    deploy_scores = calibrator.predict_proba(
        device_scores(result, deploy_data, deploy_obs)
    )
    y_deploy = np.array([int(o.is_worker) for o in deploy_obs])
    flagged = deploy_scores >= chosen.threshold
    tp = int(np.sum(flagged & (y_deploy == 1)))
    fp = int(np.sum(flagged & (y_deploy == 0)))
    fn = int(np.sum(~flagged & (y_deploy == 1)))
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    print(
        f"deployment: {int(flagged.sum())}/{len(deploy_obs)} devices flagged, "
        f"precision={precision:.3f}, recall={recall:.3f}"
    )
    print(
        "\nThe fixed, validation-chosen threshold transfers to an unseen "
        "cohort — the §9 deployment story."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
