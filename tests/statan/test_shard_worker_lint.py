"""PAR001/PAR002 gates on the phase-1 shard worker.

The two-phase engine's fan-out (``world._fan_out_day`` submitting
``phases.run_day_shard``) must satisfy the parallel-capture rules: a
module-level picklable worker, no captured Generators, randomness only
via the pre-drawn ``seeds`` parameter.  The broken fixtures rebuild the
shard worker the tempting-but-wrong ways and must fire.
"""

from pathlib import Path

from repro.statan.engine import analyze_tree

SRC = Path(__file__).resolve().parents[2] / "src"


def rules_fired(root, rule):
    findings, _ = analyze_tree([str(root)])
    return [f for f in findings if f.rule == rule]


class TestShardWorkerIsClean:
    def test_real_day_engine_passes_the_parallel_rules(self):
        findings, _ = analyze_tree([str(SRC)])
        day_engine = [
            f
            for f in findings
            if f.rule.startswith("PAR")
            and Path(f.path).name in ("phases.py", "world.py")
        ]
        assert day_engine == [], "\n".join(f.format_text() for f in day_engine)


class TestBrokenShardWorkers:
    def test_nested_worker_capturing_day_rng_fires_par001(self, write_tree):
        # The tempting shortcut: close over one Generator for the whole
        # day instead of shipping per-device seeds.
        root = write_tree({
            "simulation/fanout.py": (
                "import numpy as np\n"
                "from repro.parallel import parallel_map\n"
                "\n"
                "def fan_out_day(day_start, tasks):\n"
                "    rng = np.random.default_rng(0)\n"
                "    def run_day_shard(task):\n"
                "        return task.index + rng.normal()\n"
                "    return parallel_map(run_day_shard, [(t,) for t in tasks])\n"
            ),
        })
        findings = rules_fired(root, "PAR001")
        assert len(findings) == 1
        assert "run_day_shard" in findings[0].message

    def test_seedless_shard_worker_fires_par002(self, write_tree):
        # A worker that mints its own randomness instead of taking the
        # pre-drawn seeds: not reproducible across worker counts.
        root = write_tree({
            "simulation/fanout.py": (
                "import numpy as np\n"
                "from repro.parallel import parallel_map\n"
                "\n"
                "def run_day_shard(day_start, tasks):\n"
                "    rng = np.random.default_rng()\n"
                "    return [task.index + rng.normal() for task in tasks]\n"
                "\n"
                "def fan_out_day(day_start, tasks):\n"
                "    return parallel_map(\n"
                "        run_day_shard, [(day_start, (t,)) for t in tasks]\n"
                "    )\n"
            ),
        })
        findings = rules_fired(root, "PAR002")
        assert len(findings) == 1
        assert "no explicit seed parameter" in findings[0].message

    def test_shipping_generators_in_shard_tasks_fires_par002(self, write_tree):
        root = write_tree({
            "simulation/fanout.py": (
                "import numpy as np\n"
                "from repro.parallel import parallel_map\n"
                "\n"
                "def run_day_shard(day_start, tasks, rng):\n"
                "    return [task.index + rng.normal() for task in tasks]\n"
                "\n"
                "def fan_out_day(day_start, tasks):\n"
                "    rng = np.random.default_rng(0)\n"
                "    return parallel_map(\n"
                "        run_day_shard, [(day_start, (t,), rng) for t in tasks]\n"
                "    )\n"
            ),
        })
        findings = rules_fired(root, "PAR002")
        assert len(findings) == 1
        assert "Generator 'rng'" in findings[0].message
