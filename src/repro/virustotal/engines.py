"""Simulated VirusTotal detection-engine panel.

§6.4: "VirusTotal uses 62 detection engines to process apk files"; the
paper counts, per apk hash, how many engines flag it, and treats >1 flag
as suspicious and >7 flags (a threshold exceeding the value 4 from
TESSERACT [Pendlebury et al. 2019]) as confidently malicious.

Each simulated engine has a sensitivity (true-positive rate on actual
malware) and a small false-positive rate, so flag counts per hash form
the familiar bimodal pattern: benign apps draw 0-2 stray flags, malware
draws a binomial around ~60% of the panel.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["Engine", "EnginePanel", "N_ENGINES", "ScanResult"]

#: Panel size matching the paper.
N_ENGINES = 62

_VENDOR_STEMS = (
    "Avast", "AVG", "Avira", "BitDefender", "ClamAV", "Comodo", "CrowdStrike",
    "Cylance", "DrWeb", "Emsisoft", "ESET", "Fortinet", "FSecure", "GData",
    "Ikarus", "Jiangmin", "K7", "Kaspersky", "Kingsoft", "Lionic", "Malwarebytes",
    "MAX", "McAfee", "Microsoft", "NANO", "Paloalto", "Panda", "Qihoo360",
    "Rising", "Sangfor", "SentinelOne", "Sophos", "Symantec", "Tencent",
    "TrendMicro", "VBA32", "VIPRE", "ViRobot", "Webroot", "Yandex", "Zillya",
    "ZoneAlarm",
)


@dataclass(frozen=True)
class Engine:
    """One AV engine with fixed detection characteristics."""

    name: str
    sensitivity: float        # P(flag | malware)
    false_positive_rate: float  # P(flag | benign)

    def scans(self, apk_hash: str, is_malware: bool) -> bool:
        """Deterministic per-(engine, hash) verdict.

        Derives a uniform draw from hash(engine || apk_hash) so repeated
        scans of the same sample agree — like real VT report caching.
        """
        digest = hashlib.sha256(f"{self.name}|{apk_hash}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        threshold = self.sensitivity if is_malware else self.false_positive_rate
        return draw < threshold


@dataclass(frozen=True)
class ScanResult:
    """Aggregated report for one apk hash."""

    apk_hash: str
    positives: int
    total_engines: int
    flagged_by: tuple[str, ...]

    @property
    def detection_ratio(self) -> str:
        return f"{self.positives}/{self.total_engines}"


class EnginePanel:
    """The 62-engine scanning panel."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.engines: list[Engine] = []
        for i in range(N_ENGINES):
            stem = _VENDOR_STEMS[i % len(_VENDOR_STEMS)]
            suffix = "" if i < len(_VENDOR_STEMS) else f"-{i // len(_VENDOR_STEMS) + 1}"
            self.engines.append(
                Engine(
                    name=f"{stem}{suffix}",
                    sensitivity=float(np.clip(rng.normal(0.62, 0.15), 0.15, 0.95)),
                    false_positive_rate=float(np.clip(rng.normal(0.004, 0.003), 0.0, 0.02)),
                )
            )

    def scan(self, apk_hash: str, is_malware: bool) -> ScanResult:
        flagged = tuple(
            engine.name
            for engine in self.engines
            if engine.scans(apk_hash, is_malware)
        )
        return ScanResult(
            apk_hash=apk_hash,
            positives=len(flagged),
            total_engines=len(self.engines),
            flagged_by=flagged,
        )
