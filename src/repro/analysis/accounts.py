"""§6.2 registered accounts (Figure 5): Gmail counts, account types,
non-Gmail accounts, for devices that reported account data."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from .common import GroupComparison, compare_feature

__all__ = ["AccountsResult", "compute_accounts"]


@dataclass
class AccountsResult:
    """The three panels of Figure 5."""

    gmail: GroupComparison
    account_types: GroupComparison
    non_gmail: GroupComparison
    reporting_worker_devices: int
    reporting_regular_devices: int
    worker_devices_over_100_gmail: int
    total_worker_gmail_accounts: int

    def panels(self) -> list[GroupComparison]:
        return [self.gmail, self.account_types, self.non_gmail]


def compute_accounts(observations: list[DeviceObservation]) -> AccountsResult:
    """Account statistics over devices whose slow snapshots carried the
    GET_ACCOUNTS data (the paper's 145 regular / 390 worker subset)."""
    reporting = [
        obs
        for obs in observations
        if obs.reported_account_data and obs.reported_accounts
    ]
    workers = [o for o in reporting if o.is_worker]
    regulars = [o for o in reporting if not o.is_worker]

    return AccountsResult(
        gmail=compare_feature(
            "gmail_accounts",
            [o.n_gmail_accounts for o in workers],
            [o.n_gmail_accounts for o in regulars],
        ),
        account_types=compare_feature(
            "account_types",
            [o.n_account_types for o in workers],
            [o.n_account_types for o in regulars],
        ),
        non_gmail=compare_feature(
            "non_gmail_accounts",
            [o.n_non_gmail_accounts for o in workers],
            [o.n_non_gmail_accounts for o in regulars],
        ),
        reporting_worker_devices=len(workers),
        reporting_regular_devices=len(regulars),
        worker_devices_over_100_gmail=sum(
            1 for o in workers if o.n_gmail_accounts > 100
        ),
        total_worker_gmail_accounts=sum(o.n_gmail_accounts for o in workers),
    )
