#!/usr/bin/env python3
"""Privacy-preserving on-device detection (§9).

Trains the app and device classifiers server-side once, then "ships"
them to each device: features are computed locally and only an
aggregate :class:`OnDeviceReport` leaves the device — no package names,
no accounts, no usage traces.  Compares the on-device verdicts against
ground truth.

Run:  python examples/privacy_ondevice.py
"""

import sys
from dataclasses import fields

from repro.core import DetectionPipeline, OnDeviceDetector
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def main() -> int:
    data = run_study(SimulationConfig.small())
    result = DetectionPipeline(n_splits=5).run(data)

    detector = OnDeviceDetector(result.app_model, result.device_model)
    sample = detector.scan(result.observations[0], data.catalog)
    print("Fields in the report each device emits (nothing else leaves):")
    print("  " + ", ".join(f.name for f in fields(sample)))

    rows = []
    correct = 0
    for obs in result.observations:
        report = detector.scan(obs, data.catalog, data.vt_client)
        correct += int(report.device_flagged == obs.is_worker)
        if len(rows) < 8:
            rows.append(
                (
                    obs.install_id,
                    "worker" if obs.is_worker else "regular",
                    report.n_apps_scanned,
                    report.n_apps_flagged,
                    f"{report.app_suspiciousness:.2f}",
                    "FLAG" if report.device_flagged else "ok",
                )
            )
    print(
        render_table(
            ["install", "truth", "apps scanned", "flagged", "suspiciousness", "verdict"],
            rows,
        )
    )
    print(
        f"\non-device verdict accuracy: {correct}/{len(result.observations)} "
        f"({correct/len(result.observations):.1%}) with zero raw data leaving "
        "any device"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
