"""CLI behaviours new in the whole-program analyzer: parallel identity,
``--changed`` scoping, and stale-baseline failure."""

import json

from repro.cli import main
from repro.statan import cli as statan_cli

FILES = {
    "pkg/clean.py": "def f(x):\n    return x\n",
    "pkg/buggy.py": "def f(xs=[]):\n    return xs\n",
    "pkg/wall.py": "import time\n\ndef now():\n    return time.time()\n",
}


def write(tmp_path, files=FILES):
    root = tmp_path / "tree"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


class TestParallelIdentity:
    def test_reports_are_byte_identical_at_any_worker_count(
        self, tmp_path, capsys
    ):
        root = write(tmp_path)
        baseline = tmp_path / "b.json"
        outputs = []
        for jobs in ("1", "3"):
            main(["lint", str(root), "--baseline", str(baseline),
                  "--format", "json", "--n-jobs", jobs])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert payload["summary"]["new"] == 2  # BUG001 + DET002

    def test_global_n_jobs_flag_reaches_lint(self, tmp_path, capsys):
        # The subcommand default is SUPPRESSed so the root parser's
        # --n-jobs value survives subparser parsing.
        root = write(tmp_path)
        main(["--n-jobs", "2", "lint", str(root),
              "--baseline", str(tmp_path / "b.json"), "--format", "json"])
        serial = capsys.readouterr().out
        main(["lint", str(root), "--baseline", str(tmp_path / "b.json"),
              "--format", "json"])
        assert json.loads(serial)["findings"] == json.loads(
            capsys.readouterr().out
        )["findings"]


class TestChangedScoping:
    def test_changed_limits_per_file_rules(self, tmp_path, capsys, monkeypatch):
        root = write(tmp_path)
        monkeypatch.setattr(
            statan_cli, "_changed_labels", lambda paths: {"pkg/buggy.py"}
        )
        code = main(["lint", str(root), "--changed",
                     "--baseline", str(tmp_path / "b.json"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in payload["findings"]}
        assert code == 1
        assert rules == {"BUG001"}  # wall.py's DET002 is out of scope
        assert payload["stats"]["files_checked_per_file"] == 1
        assert payload["stats"]["files_indexed"] == 3  # project pass is full

    def test_changed_skips_stale_baseline_check(self, tmp_path, capsys, monkeypatch):
        root = write(tmp_path)
        baseline = tmp_path / "b.json"
        assert main(["lint", str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        monkeypatch.setattr(
            statan_cli, "_changed_labels", lambda paths: {"pkg/clean.py"}
        )
        # Scoped run sees none of the baselined findings; that must not
        # read as a stale baseline.
        code = main(["lint", str(root), "--changed",
                     "--baseline", str(baseline), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["summary"]["stale_baseline"] == 0

    def test_changed_without_git_falls_back_to_full_tree(
        self, tmp_path, capsys, monkeypatch
    ):
        root = write(tmp_path)
        monkeypatch.setattr(statan_cli, "_git_changed_files", lambda: None)
        code = main(["lint", str(root), "--changed",
                     "--baseline", str(tmp_path / "b.json"), "--format", "json"])
        captured = capsys.readouterr()
        assert code == 1
        assert "git unavailable" in captured.err
        assert json.loads(captured.out)["summary"]["new"] == 2

    def test_changed_conflicts_with_update_baseline(self, tmp_path, capsys):
        root = write(tmp_path)
        assert main(["lint", str(root), "--changed", "--update-baseline",
                     "--baseline", str(tmp_path / "b.json")]) == 2

    def test_changed_labels_map_repo_paths_to_scan_labels(
        self, tmp_path, monkeypatch
    ):
        write(tmp_path)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            statan_cli, "_git_changed_files",
            lambda: ["tree/pkg/buggy.py", "elsewhere/x.py"],
        )
        assert statan_cli._changed_labels(["tree"]) == {"pkg/buggy.py"}


class TestStaleBaseline:
    def test_stale_entry_fails_with_fingerprint_and_hint(self, tmp_path, capsys):
        root = write(tmp_path)
        baseline = tmp_path / "b.json"
        assert main(["lint", str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        # Fix the wall-clock finding: its baseline entry goes stale.
        (root / "pkg" / "wall.py").write_text("def now(clock):\n    return clock()\n")
        code = main(["lint", str(root), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale baseline" in out
        entries = json.loads(baseline.read_text())["findings"]
        stale = [e for e in entries if e["rule"] == "DET002"]
        assert stale and stale[0]["fingerprint"] in out
        assert "--update-baseline" in out

    def test_stale_entries_counted_in_json(self, tmp_path, capsys):
        root = write(tmp_path)
        baseline = tmp_path / "b.json"
        main(["lint", str(root), "--baseline", str(baseline), "--update-baseline"])
        (root / "pkg" / "wall.py").write_text("def now(clock):\n    return clock()\n")
        capsys.readouterr()
        code = main(["lint", str(root), "--baseline", str(baseline),
                     "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["summary"]["stale_baseline"] == 1
        assert payload["summary"]["new"] == 0
