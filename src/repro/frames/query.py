"""Compile Mongo-style queries to vectorized boolean masks over a frame.

The operator language is exactly the document store's (``$eq``, ``$ne``,
``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$exists``) with the
same semantics, including the corner cases:

* a missing key reads as ``None`` for every operator except ``$exists``,
  which tests key *presence* (so ``field: None`` satisfies
  ``{"$exists": True}`` while an absent key does not);
* ordering operators never match ``None``;
* comparing incomparable types raises ``TypeError`` exactly where the
  per-document path would.

Numeric typed columns compare as whole numpy arrays; string columns use
elementwise object comparison; everything else falls back to a single
python pass with the scalar semantics above.  Either way one call
produces the complete row mask — no per-document dict probing.
"""

from __future__ import annotations

import operator

import numpy as np

from .frame import ColumnFrame

__all__ = ["mask_for", "QUERY_OPERATORS"]

#: The operator names this compiler understands (the store's language).
QUERY_OPERATORS = ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$exists")

_ORDERING = {
    "$gt": operator.gt,
    "$gte": operator.ge,
    "$lt": operator.lt,
    "$lte": operator.le,
}
_ORDERING_UFUNC = {
    "$gt": np.greater,
    "$gte": np.greater_equal,
    "$lt": np.less,
    "$lte": np.less_equal,
}

_NUMERIC_KINDS = ("float", "int", "bool")


def _vector_comparable(frame: ColumnFrame, fieldname: str, operand) -> bool:
    """Whether ``column <op> operand`` is safe as one numpy expression."""
    kind = frame.native_kind(fieldname)
    if kind in _NUMERIC_KINDS:
        return isinstance(operand, (int, float, bool)) and not isinstance(
            operand, np.ndarray
        )
    if kind == "str":
        return isinstance(operand, str)
    return False


def _eq_mask(frame: ColumnFrame, fieldname: str, operand) -> np.ndarray:
    if _vector_comparable(frame, fieldname, operand):
        return frame.column(fieldname) == operand
    return np.fromiter(
        (value == operand for value in frame.cells(fieldname)),
        np.bool_,
        len(frame),
    )


def _ordering_mask(
    frame: ColumnFrame, fieldname: str, op: str, operand
) -> np.ndarray:
    if _vector_comparable(frame, fieldname, operand):
        return _ORDERING_UFUNC[op](frame.column(fieldname), operand)
    compare = _ORDERING[op]
    return np.fromiter(
        (
            value is not None and compare(value, operand)
            for value in frame.cells(fieldname)
        ),
        np.bool_,
        len(frame),
    )


def _op_mask(frame: ColumnFrame, fieldname: str, op: str, operand) -> np.ndarray:
    if op == "$exists":
        present = frame.present(fieldname)
        return present if operand else ~present
    if op == "$eq":
        return _eq_mask(frame, fieldname, operand)
    if op == "$ne":
        return ~_eq_mask(frame, fieldname, operand)
    if op == "$in":
        return np.fromiter(
            (value in operand for value in frame.cells(fieldname)),
            np.bool_,
            len(frame),
        )
    if op in _ORDERING:
        return _ordering_mask(frame, fieldname, op, operand)
    raise ValueError(f"unknown query operator {op!r}")


def mask_for(frame: ColumnFrame, query: dict | None) -> np.ndarray:
    """Boolean row mask of the documents matching ``query``."""
    mask = np.ones(len(frame), dtype=bool)
    for fieldname, condition in (query or {}).items():
        if isinstance(condition, dict) and any(
            key.startswith("$") for key in condition
        ):
            for op, operand in condition.items():
                mask &= _op_mask(frame, fieldname, op, operand)
        else:
            mask &= _eq_mask(frame, fieldname, condition)
    return mask
