"""Classification metrics used throughout the paper's evaluation.

Tables 1 and 2 report precision, recall and F1-measure; the text also
reports AUC and false-positive rate.  All metrics here follow the usual
binary-classification conventions with label ``1`` as the positive
("promotion" / "worker") class unless ``pos_label`` says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "false_positive_rate",
    "roc_curve",
    "roc_auc_score",
    "precision_recall_fscore",
    "ClassificationReport",
    "classification_report",
]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true shape {y_true.shape} != y_pred shape {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[i, j]`` = truth ``i`` predicted ``j``."""
    y_true, y_pred = _validate(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[t], index[p]] += 1
    return matrix


def _binary_counts(y_true, y_pred, pos_label) -> tuple[int, int, int, int]:
    y_true, y_pred = _validate(y_true, y_pred)
    positive_truth = y_true == pos_label
    positive_pred = y_pred == pos_label
    tp = int(np.sum(positive_truth & positive_pred))
    fp = int(np.sum(~positive_truth & positive_pred))
    fn = int(np.sum(positive_truth & ~positive_pred))
    tn = int(np.sum(~positive_truth & ~positive_pred))
    return tp, fp, fn, tn


def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, pos_label=1) -> float:
    """TP / (TP + FP); 0.0 when nothing was predicted positive."""
    tp, fp, _, _ = _binary_counts(y_true, y_pred, pos_label)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, pos_label=1) -> float:
    """TP / (TP + FN); 0.0 when no positives exist in the truth."""
    tp, _, fn, _ = _binary_counts(y_true, y_pred, pos_label)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred, pos_label=1) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, pos_label)
    recall = recall_score(y_true, y_pred, pos_label)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def false_positive_rate(y_true, y_pred, pos_label=1) -> float:
    """FP / (FP + TN) — the paper reports 1.94% (apps) and 1.41% (devices)."""
    _, fp, _, tn = _binary_counts(y_true, y_pred, pos_label)
    return fp / (fp + tn) if fp + tn else 0.0


def precision_recall_fscore(y_true, y_pred, pos_label=1) -> tuple[float, float, float]:
    return (
        precision_score(y_true, y_pred, pos_label),
        recall_score(y_true, y_pred, pos_label),
        f1_score(y_true, y_pred, pos_label),
    )


def roc_curve(y_true, y_score, pos_label=1) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve (fpr, tpr, thresholds) by descending-score sweep."""
    y_true = np.asarray(y_true)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must have the same shape")
    positive = (y_true == pos_label).astype(np.float64)
    order = np.argsort(-y_score, kind="mergesort")
    y_score = y_score[order]
    positive = positive[order]

    # Collapse ties: keep the last index of each distinct score.
    distinct = np.where(np.diff(y_score))[0]
    threshold_idx = np.r_[distinct, positive.size - 1]

    tps = np.cumsum(positive)[threshold_idx]
    fps = (threshold_idx + 1) - tps
    total_pos = positive.sum()
    total_neg = positive.size - total_pos
    tpr = tps / total_pos if total_pos else np.zeros_like(tps)
    fpr = fps / total_neg if total_neg else np.zeros_like(fps)
    tpr = np.r_[0.0, tpr]
    fpr = np.r_[0.0, fpr]
    thresholds = np.r_[np.inf, y_score[threshold_idx]]
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score, pos_label=1) -> float:
    """Area under the ROC curve via the trapezoid rule.

    Equals the Mann-Whitney probability that a random positive outranks a
    random negative, which is the property the paper's "AUC above 0.99"
    claims rely on.
    """
    fpr, tpr, _ = roc_curve(y_true, y_score, pos_label)
    return float(np.trapezoid(tpr, fpr))


@dataclass(frozen=True)
class ClassificationReport:
    """Bundle of the metrics reported in Tables 1 and 2."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    auc: float
    false_positive_rate: float
    support_positive: int
    support_negative: int

    def as_row(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
            "auc": self.auc,
            "fpr": self.false_positive_rate,
        }


def classification_report(y_true, y_pred, y_score=None, pos_label=1) -> ClassificationReport:
    """Compute the full per-run report; AUC falls back to hard labels."""
    y_true, y_pred = _validate(y_true, y_pred)
    if y_score is None:
        y_score = (y_pred == pos_label).astype(np.float64)
    auc = roc_auc_score(y_true, y_score, pos_label)
    return ClassificationReport(
        precision=precision_score(y_true, y_pred, pos_label),
        recall=recall_score(y_true, y_pred, pos_label),
        f1=f1_score(y_true, y_pred, pos_label),
        accuracy=accuracy_score(y_true, y_pred),
        auc=auc,
        false_positive_rate=false_positive_rate(y_true, y_pred, pos_label),
        support_positive=int(np.sum(y_true == pos_label)),
        support_negative=int(np.sum(y_true != pos_label)),
    )
