"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["--scale", "small", "simulate"])
        assert args.scale == "small"
        with pytest.raises(SystemExit):
            parser.parse_args(["--scale", "huge", "simulate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["--scale", "small", "simulate"]) == 0
        out = capsys.readouterr().out
        assert "eligible devices" in out
        assert "reviews crawled" in out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig15" in out

    def test_experiment_table3(self, capsys):
        assert main(["--scale", "small", "experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Snap. fingerprint" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["--scale", "small", "experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_handler_keyerror_propagates(self, monkeypatch):
        """A KeyError raised *inside* a command handler is a real bug and
        must not be misreported as an unknown command (exit code 2)."""
        import repro.cli as cli

        def boom(args):
            raise KeyError("missing-internal-key")

        monkeypatch.setitem(cli._COMMANDS, "simulate", boom)
        with pytest.raises(KeyError, match="missing-internal-key"):
            main(["--scale", "small", "simulate"])

    def test_dashboard(self, capsys):
        assert main(["--scale", "small", "dashboard"]) == 0
        out = capsys.readouterr().out
        assert "validation issues: 0" in out

    def test_train_then_classify(self, tmp_path, capsys):
        models = tmp_path / "detectors.json"
        assert main(["--scale", "small", "train", "--out", str(models)]) == 0
        payload = json.loads(models.read_text())
        assert set(payload) == {"app", "device"}

        assert main(
            ["--scale", "small", "--seed", "4242", "classify", "--models", str(models)]
        ) == 0
        out = capsys.readouterr().out
        assert "accuracy vs ground truth" in out

    def test_findings_command(self, capsys):
        code = main(["--scale", "small", "findings"])
        out = capsys.readouterr().out
        assert "paper findings hold" in out
        assert "F1" in out and "F18" in out
        assert code in (0, 1)  # small cohorts may miss a power-limited claim

    def test_export_figures(self, tmp_path, capsys):
        out = tmp_path / "figures"
        assert main(["--scale", "small", "export-figures", "--out", str(out)]) == 0
        files = sorted(p.name for p in out.iterdir())
        assert "fig07_install_to_review.csv" in files
        assert "fig15_suspiciousness.csv" in files
        header = (out / "fig09_churn.csv").read_text().splitlines()[0]
        assert header == "install_id,group,daily_installs,daily_uninstalls"

    def test_bench_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_ml.json"
        assert main(["--n-jobs", "2", "bench", "--smoke", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["smoke"] is True
        assert payload["n_jobs"] == 2
        assert payload["cv"] and all(row["outputs_equal"] for row in payload["cv"])
        assert payload["forest"]["outputs_equal"] is True
        assert payload["knn"]["outputs_equal"] is True
        assert {"machine", "dataset", "seed"} <= set(payload)
        assert "serial vs" not in capsys.readouterr().err

    def test_report_accepts_n_jobs(self, capsys):
        assert main(["--scale", "small", "--n-jobs", "1", "report"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig15" in out
