"""Tests for the simulated VirusTotal panel and report client."""

import numpy as np
import pytest

from repro.virustotal.client import VirusTotalClient
from repro.virustotal.engines import N_ENGINES, EnginePanel


@pytest.fixture()
def panel():
    return EnginePanel(np.random.default_rng(0))


class TestEnginePanel:
    def test_panel_size_matches_paper(self, panel):
        assert len(panel.engines) == N_ENGINES == 62

    def test_engine_names_unique(self, panel):
        names = [e.name for e in panel.engines]
        assert len(set(names)) == len(names)

    def test_scan_deterministic(self, panel):
        a = panel.scan("deadbeef", is_malware=True)
        b = panel.scan("deadbeef", is_malware=True)
        assert a.positives == b.positives
        assert a.flagged_by == b.flagged_by

    def test_malware_flagged_much_more(self, panel):
        malware = [panel.scan(f"mal{i}", True).positives for i in range(50)]
        benign = [panel.scan(f"ok{i}", False).positives for i in range(50)]
        assert np.mean(malware) > 20
        assert np.mean(benign) < 2

    def test_detection_ratio_format(self, panel):
        result = panel.scan("x", True)
        assert result.detection_ratio.endswith("/62")


class TestVirusTotalClient:
    def make_client(self, panel, availability=1.0):
        return VirusTotalClient(
            panel, malware_oracle=lambda h: h.startswith("mal"), availability=availability
        )

    def test_report_for_known_hash(self, panel):
        client = self.make_client(panel)
        report = client.report("mal1")
        assert report is not None and report.positives > 5

    def test_benign_low_flags(self, panel):
        client = self.make_client(panel)
        assert client.positives("benign1") <= 3

    def test_availability_gap(self, panel):
        client = self.make_client(panel, availability=0.0)
        assert client.report("mal1") is None
        assert client.positives("mal1") == 0
        assert client.stats.unknown_hashes == 1

    def test_availability_deterministic_per_hash(self, panel):
        client_a = self.make_client(panel, availability=0.5)
        client_b = self.make_client(panel, availability=0.5)
        for i in range(30):
            h = f"hash{i}"
            assert (client_a.report(h) is None) == (client_b.report(h) is None)

    def test_cache_hit_counted(self, panel):
        client = self.make_client(panel)
        client.report("mal1")
        client.report("mal1")
        assert client.stats.lookups == 1
        assert client.stats.cached == 1

    def test_flagged_hashes_filter(self, panel):
        client = self.make_client(panel)
        flagged = client.flagged_hashes(["mal1", "mal2", "ok1"], min_flags=7)
        assert set(flagged) <= {"mal1", "mal2"}
        assert all(count >= 7 for count in flagged.values())

    def test_paper_availability_rate(self, panel):
        """Default availability ≈ 12431/18079 ≈ 0.688 over many hashes."""
        client = VirusTotalClient(panel, malware_oracle=lambda h: False)
        hits = sum(1 for i in range(800) if client.report(f"h{i}") is not None)
        assert hits / 800 == pytest.approx(12_431 / 18_079, abs=0.06)
