"""Symbol table, call graph, and schema extraction over fixture trees."""

import pytest

from repro.statan.engine import index_paths, iter_python_files
from repro.statan.project import ProjectContext
from repro.statan.symbols import module_name_for


def build_project(write_tree, files) -> ProjectContext:
    root = write_tree(files)
    modules, syntax = index_paths(iter_python_files([root]))
    assert syntax == []
    return ProjectContext(modules)


class TestModuleNames:
    @pytest.mark.parametrize(
        "label, expected",
        [
            ("repro/ml/forest.py", "repro.ml.forest"),
            ("repro/frames/__init__.py", "repro.frames"),
            ("single.py", "single"),
        ],
    )
    def test_labels_to_dotted_modules(self, label, expected):
        assert module_name_for(label) == expected


class TestSymbolTable:
    def test_functions_methods_and_nested_defs(self, write_tree):
        project = build_project(write_tree, {
            "pkg/mod.py": (
                "def top():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner()\n"
                "\n"
                "class Thing:\n"
                "    def method(self):\n"
                "        return top()\n"
            ),
        })
        symbols = project.symbols
        assert "pkg.mod.top" in symbols.functions
        assert "pkg.mod.top.<locals>.inner" in symbols.functions
        assert symbols.functions["pkg.mod.top.<locals>.inner"].is_nested
        assert "pkg.mod.Thing.method" in symbols.functions
        assert symbols.functions["pkg.mod.Thing.method"].is_method
        assert symbols.classes["pkg.mod.Thing"].methods["method"] == (
            "pkg.mod.Thing.method"
        )

    def test_decorated_functions_keep_their_symbol(self, write_tree):
        project = build_project(write_tree, {
            "pkg/mod.py": (
                "import functools\n"
                "\n"
                "def wrap(fn):\n"
                "    @functools.wraps(fn)\n"
                "    def inner(*a):\n"
                "        return fn(*a)\n"
                "    return inner\n"
                "\n"
                "@wrap\n"
                "def decorated():\n"
                "    return 1\n"
            ),
        })
        info = project.symbols.functions["pkg.mod.decorated"]
        assert info.decorators == ("wrap",)

    def test_function_at_returns_innermost_span(self, write_tree):
        project = build_project(write_tree, {
            "pkg/mod.py": (
                "def outer():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner()\n"
            ),
        })
        hit = project.symbols.function_at("pkg/mod.py", 3)
        assert hit is not None and hit.qualname == "pkg.mod.outer.<locals>.inner"


class TestCallGraph:
    def test_helper_indirection_across_modules(self, write_tree):
        project = build_project(write_tree, {
            "pkg/helpers.py": "def leaf():\n    return 1\n",
            "pkg/mod.py": (
                "from .helpers import leaf\n"
                "\n"
                "def middle():\n"
                "    return leaf()\n"
                "\n"
                "def entry():\n"
                "    return middle()\n"
            ),
        })
        edges = {s.callee for s in project.callgraph.callees("pkg.mod.entry")}
        assert edges == {"pkg.mod.middle"}
        edges = {s.callee for s in project.callgraph.callees("pkg.mod.middle")}
        assert edges == {"pkg.helpers.leaf"}

    def test_self_dispatch_and_one_base_level(self, write_tree):
        project = build_project(write_tree, {
            "pkg/mod.py": (
                "class Base:\n"
                "    def shared(self):\n"
                "        return 1\n"
                "\n"
                "class Child(Base):\n"
                "    def go(self):\n"
                "        return self.shared()\n"
            ),
        })
        edges = {s.callee for s in project.callgraph.callees("pkg.mod.Child.go")}
        assert "pkg.mod.Base.shared" in edges

    def test_typed_local_dispatch(self, write_tree):
        project = build_project(write_tree, {
            "pkg/mod.py": (
                "class Runner:\n"
                "    def run(self):\n"
                "        return 1\n"
                "\n"
                "def entry():\n"
                "    r = Runner()\n"
                "    return r.run()\n"
            ),
        })
        edges = {s.callee for s in project.callgraph.callees("pkg.mod.entry")}
        assert "pkg.mod.Runner.run" in edges

    def test_known_unsound_container_dispatch_has_no_edge(self, write_tree):
        # Documented soundness hole (DESIGN.md §10): callables stored in
        # containers are invisible — the graph must NOT invent an edge.
        project = build_project(write_tree, {
            "pkg/mod.py": (
                "def leaf():\n"
                "    return 1\n"
                "\n"
                "TABLE = {'k': leaf}\n"
                "\n"
                "def entry():\n"
                "    return TABLE['k']()\n"
            ),
        })
        assert project.callgraph.callees("pkg.mod.entry") == []

    def test_reverse_reachability_with_witness_chain(self, write_tree):
        project = build_project(write_tree, {
            "pkg/mod.py": (
                "def sink():\n"
                "    return 1\n"
                "\n"
                "def mid():\n"
                "    return sink()\n"
                "\n"
                "def entry():\n"
                "    return mid()\n"
            ),
        })
        witness = project.callgraph.reachable_from({"pkg.mod.sink"})
        assert set(witness) == {"pkg.mod.sink", "pkg.mod.mid", "pkg.mod.entry"}
        chain = project.callgraph.chain("pkg.mod.entry", witness)
        assert chain == ["pkg.mod.entry", "pkg.mod.mid", "pkg.mod.sink"]


class TestSchemaExtraction:
    FILES = {
        "frames/schema.py": (
            "from repro.frames.schema import Field, RecordSchema\n"
            "\n"
            'RUN_SCHEMA = RecordSchema("run", (\n'
            '    Field("run_id", "str"),\n'
            '    Field("elapsed", "float", nullable=True),\n'
            "))\n"
            "\n"
            'BY_COLLECTION: dict = {"runs": RUN_SCHEMA}\n'
        ),
    }

    def test_schema_constants_and_collection_map(self, write_tree):
        project = build_project(write_tree, self.FILES)
        assert set(project.schemas) == {"RUN_SCHEMA"}
        schema = project.schemas["RUN_SCHEMA"]
        assert schema.name == "run"
        assert schema.field_names == ("run_id", "elapsed")
        assert schema.field("elapsed").nullable
        assert project.collections["runs"] is schema

    def test_stats_counts(self, write_tree):
        project = build_project(write_tree, self.FILES)
        stats = project.stats()
        assert stats["files_indexed"] == 1
        assert stats["schemas"] == 1
        assert stats["collections"] == 1
