"""Lightweight structured logger.

One log call is an event name plus key=value fields; the line format is
stable and grep-friendly.  Timestamps are seconds since the logger was
configured (monotonic), not wall-clock, so two runs of the same seeded
study produce comparable logs.  The global default is a
:class:`NullLogger`: instrumented code can log unconditionally and pay
one no-op method call when observability is off.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["StructLogger", "NullLogger", "LEVELS"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class StructLogger:
    """Structured key=value logger bound to a component name."""

    __slots__ = ("name", "_stream", "_threshold", "_epoch", "_fields")

    def __init__(
        self,
        name: str = "repro",
        stream: TextIO | None = None,
        level: str = "info",
        _epoch: float | None = None,
        _fields: tuple[tuple[str, object], ...] = (),
    ) -> None:
        self.name = name
        self._stream = stream or sys.stderr
        self._threshold = LEVELS[level]
        self._epoch = time.perf_counter() if _epoch is None else _epoch
        self._fields = _fields

    def bind(self, **fields) -> "StructLogger":
        """Child logger that stamps these fields on every line."""
        child = StructLogger.__new__(StructLogger)
        child.name = self.name
        child._stream = self._stream
        child._threshold = self._threshold
        child._epoch = self._epoch
        child._fields = self._fields + tuple(fields.items())
        return child

    def named(self, name: str) -> "StructLogger":
        child = self.bind()
        child.name = f"{self.name}.{name}" if self.name else name
        return child

    def log(self, level: str, event: str, **fields) -> None:
        if LEVELS.get(level, 0) < self._threshold:
            return
        elapsed = time.perf_counter() - self._epoch
        parts = [f"+{elapsed:9.3f}s", f"{level:<7}", self.name, event]
        for key, value in self._fields + tuple(fields.items()):
            parts.append(f"{key}={value}")
        self._stream.write(" ".join(parts) + "\n")

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


class NullLogger(StructLogger):
    """Logger that drops everything — the global default."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", stream=sys.stderr, level="error")

    def bind(self, **fields) -> "NullLogger":  # noqa: ARG002
        return self

    def named(self, name: str) -> "NullLogger":  # noqa: ARG002
        return self

    def log(self, level: str, event: str, **fields) -> None:  # noqa: ARG002
        pass
