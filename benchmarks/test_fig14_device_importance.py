"""Bench: Figure 14 — top-10 device-feature Gini importances."""

from repro.experiments import run_experiment
from repro.ml import RandomForestClassifier


def test_fig14_device_importance(benchmark, workbench, pipeline_result, emit):
    dataset = pipeline_result.device_dataset
    forest = RandomForestClassifier(n_estimators=80, random_state=0)
    benchmark.pedantic(
        lambda: forest.fit(dataset.X, dataset.y).feature_importances_,
        rounds=1,
        iterations=1,
    )
    report = emit(run_experiment("fig14", workbench))
    # Paper's standout four: total apps reviewed, app suspiciousness,
    # stopped apps, reviews per account.  Require most of that family in
    # our top-6 (correlated aliases accepted).
    assert report.metrics["paper_top4_hits"] >= 3
