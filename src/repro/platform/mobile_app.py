"""The RacketStore mobile app: sign-in, collectors, and daily reporting.

Mirrors §3's component structure:

* **sign-in interface** — validates the 6-digit participant ID issued at
  recruitment and mints the 10-digit random install ID;
* **initial data collector** — device info plus the installed-app list;
* **snapshot collectors** — fast (5 s: foreground app, screen, battery,
  install/uninstall deltas) and slow (2 min: accounts, save mode,
  stopped apps), emitted as run-length-encoded runs over the windows
  in which the collector was scheduled by Android;
* **data buffer** — accumulate/compress/upload with hash-verified
  delivery (see :mod:`repro.platform.buffer`).

Participants may deny either runtime permission (§3): denying
``PACKAGE_USAGE_STATS`` blanks the foreground field, denying
``GET_ACCOUNTS`` blanks the account list — this produces the partially
reporting devices the paper repeatedly notes (e.g. only 145 regular and
390 worker devices reported account data for Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.clock import SECONDS_PER_DAY, hours
from ..simulation.device import SimDevice
from ..simulation.events import EventType
from .buffer import DataBuffer
from .models import (
    AppChangeEvent,
    FastSnapshotRun,
    InitialSnapshot,
    InstalledAppInfo,
    SlowSnapshotRun,
)

__all__ = ["SignInError", "AppState", "RacketStoreApp"]


class SignInError(ValueError):
    """Raised when a participant enters an unknown 6-digit code."""


@dataclass(frozen=True)
class _Permissions:
    usage_stats: bool  # PACKAGE_USAGE_STATS
    get_accounts: bool  # GET_ACCOUNTS


@dataclass(slots=True)
class AppState:
    """Picklable install state (everything but the device reference).

    The phase-split day engine (DESIGN.md §12) ships this to shard
    workers instead of the app object itself: it carries no server,
    transport, or Generator — those are injected per call — so the
    payload satisfies the PAR001/PAR002 shipping rules.  The buffer
    travels because undelivered chunks are retried on later days.
    """

    participant_id: str
    usage_stats: bool
    get_accounts: bool
    idle_hours_median: float
    install_id: str | None
    installed_at: float | None
    uninstalled_at: float | None
    buffer: DataBuffer


class RacketStoreApp:
    """One install of the RacketStore app on one device.

    The server, transport, and Generator bound at construction are
    defaults for standalone use; the study loop instead injects a
    per-device-day rng and a recording uplink into each call
    (:meth:`sign_in` / :meth:`collect_day` / :meth:`uninstall`), which
    is what makes a device-day a pure function of its pre-drawn seed.
    """

    FAST_PERIOD_S = 5.0
    SLOW_PERIOD_S = 120.0

    def __init__(
        self,
        device: SimDevice,
        participant_id: str,
        server=None,
        transport=None,
        rng: np.random.Generator | None = None,
        grant_usage_stats: bool = True,
        grant_get_accounts: bool = True,
        fast_buffer_bytes: int = 100 * 1024,
        slow_buffer_bytes: int = 8 * 1024,
    ) -> None:
        if rng is None:
            # No hidden fallback Generator (statan DET001): the caller
            # must make the randomness source explicit.
            raise ValueError("RacketStoreApp requires an explicit rng")
        self.device = device
        self.participant_id = participant_id
        self._server = server
        self._transport = transport
        self._rng = rng
        self.permissions = _Permissions(grant_usage_stats, grant_get_accounts)
        self.buffer = DataBuffer(fast_buffer_bytes, slow_buffer_bytes)
        self.install_id: str | None = None
        self.installed_at: float | None = None
        self.uninstalled_at: float | None = None
        #: Median daily "collector uptime" outside foreground sessions:
        #: Android throttles background alarms, so idle coverage varies
        #: per device — this is what spreads Figure 4's snapshot counts.
        self._idle_hours_median = float(np.clip(rng.lognormal(np.log(2.2), 0.9), 0.1, 14.0))

    # -- state snapshots (phase-split shipping) ------------------------------
    def snapshot_state(self) -> AppState:
        """The install's current state, detached from device and I/O."""
        return AppState(
            participant_id=self.participant_id,
            usage_stats=self.permissions.usage_stats,
            get_accounts=self.permissions.get_accounts,
            idle_hours_median=self._idle_hours_median,
            install_id=self.install_id,
            installed_at=self.installed_at,
            uninstalled_at=self.uninstalled_at,
            buffer=self.buffer,
        )

    @classmethod
    def from_state(cls, device: SimDevice, state: AppState) -> "RacketStoreApp":
        """Rebuild a detached app (no server/transport/rng) in a worker."""
        app = object.__new__(cls)
        app.device = device
        app.participant_id = state.participant_id
        app._server = None
        app._transport = None
        app._rng = None
        app.permissions = _Permissions(state.usage_stats, state.get_accounts)
        app.buffer = state.buffer
        app.install_id = state.install_id
        app.installed_at = state.installed_at
        app.uninstalled_at = state.uninstalled_at
        app._idle_hours_median = state.idle_hours_median
        return app

    def adopt_state(self, state: AppState) -> None:
        """Fold a worker's returned state back into this install."""
        self.install_id = state.install_id
        self.installed_at = state.installed_at
        self.uninstalled_at = state.uninstalled_at
        self.buffer = state.buffer

    # -- lifecycle -----------------------------------------------------------
    def sign_in(
        self,
        timestamp: float,
        *,
        rng: np.random.Generator | None = None,
        server=None,
        transport=None,
        backoff_rng: np.random.Generator | None = None,
    ) -> str:
        """Validate the participant code with the server and mint the
        install ID.  No data is collected before this succeeds (§3).

        ``backoff_rng`` (optional) jitters upload retry backoff; it is a
        dedicated stream so retry scheduling never perturbs behaviour
        draws from ``rng``."""
        rng = rng if rng is not None else self._rng
        server = server if server is not None else self._server
        transport = transport if transport is not None else self._transport
        if not server.is_valid_participant(self.participant_id):
            raise SignInError(f"unknown participant id {self.participant_id!r}")
        self.install_id = f"{rng.integers(10**9, 10**10 - 1):010d}"
        self.installed_at = float(timestamp)
        server.register_install(
            participant_id=self.participant_id,
            install_id=self.install_id,
            android_id=self.device.android_id,
            timestamp=timestamp,
        )
        self._send_initial_snapshot(timestamp, transport, backoff_rng)
        return self.install_id

    def uninstall(
        self,
        timestamp: float,
        *,
        transport=None,
        backoff_rng: np.random.Generator | None = None,
    ) -> None:
        transport = transport if transport is not None else self._transport
        self.buffer.seal_all()
        self.buffer.drain(
            transport,
            now=float(timestamp),
            deadline=float(timestamp) + SECONDS_PER_DAY,
            rng=backoff_rng,
        )
        self.uninstalled_at = float(timestamp)

    @property
    def active(self) -> bool:
        return self.install_id is not None and self.uninstalled_at is None

    # -- initial collector ------------------------------------------------------
    def _send_initial_snapshot(
        self, timestamp: float, transport, backoff_rng=None
    ) -> None:
        apps = []
        for rec in sorted(self.device.installed.values(), key=lambda r: r.package):
            granted_dangerous = sum(
                1
                for p in rec.granted_permissions
                if p.split(".")[-1] in _DANGEROUS_SUFFIXES
            )
            # Denied permissions are always dangerous ones (normal
            # permissions are granted automatically at install).
            n_dangerous = granted_dangerous + rec.n_denied
            apps.append(
                InstalledAppInfo(
                    package=rec.package,
                    install_time=rec.install_time,
                    last_update_time=rec.last_update_time,
                    apk_hash=rec.apk_hash,
                    n_granted=rec.n_granted,
                    n_denied=rec.n_denied,
                    n_normal_permissions=rec.n_granted - granted_dangerous,
                    n_dangerous_permissions=n_dangerous,
                    stopped=rec.stopped,
                    preinstalled=rec.preinstalled,
                )
            )
        apps = tuple(apps)
        snapshot = InitialSnapshot(
            install_id=self.install_id,
            participant_id=self.participant_id,
            android_id=self.device.android_id,
            api_level=self.device.api_level,
            model=self.device.model,
            manufacturer=self.device.manufacturer,
            timestamp=timestamp,
            installed_apps=apps,
        )
        self.buffer.append("slow", snapshot)
        self.buffer.seal_all()
        self.buffer.drain(
            transport,
            now=float(timestamp),
            deadline=float(timestamp) + SECONDS_PER_DAY,
            rng=backoff_rng,
        )

    # -- daily collection ---------------------------------------------------------
    def collect_day(
        self,
        day_start: float,
        *,
        rng: np.random.Generator | None = None,
        transport=None,
        backoff_rng: np.random.Generator | None = None,
    ) -> None:
        """Run both collectors over one study day and upload."""
        if not self.active:
            raise RuntimeError("collect_day on an inactive install")
        rng = rng if rng is not None else self._rng
        transport = transport if transport is not None else self._transport
        day_end = day_start + SECONDS_PER_DAY
        windows = self._coverage_windows(day_start, day_end, rng)
        self._emit_fast_runs(windows, rng)
        self._emit_slow_runs(windows)
        self._emit_app_changes(day_start, day_end)
        self.buffer.seal_all()
        self.buffer.drain(
            transport, now=day_start, deadline=day_end, rng=backoff_rng
        )

    def _coverage_windows(
        self, day_start: float, day_end: float, rng: np.random.Generator
    ) -> list[tuple[float, float, str | None]]:
        """(start, end, foreground) intervals the collectors were awake.

        Foreground sessions always produce coverage (the device is in
        use); idle coverage is drawn from the per-device uptime budget.
        ``prior_sessions`` covers sessions that started before a day
        view was cut but spill past its start (see SimDevice.day_view).
        """
        sessions = [
            s
            for s in (*self.device.prior_sessions, *self.device.sessions)
            if s.start < day_end and s.end > day_start
        ]
        windows: list[tuple[float, float, str | None]] = [
            (max(s.start, day_start), min(s.end, day_end), s.package) for s in sessions
        ]
        idle_budget = hours(
            float(np.clip(rng.lognormal(np.log(self._idle_hours_median), 0.5), 0.05, 15.0))
        )
        # Spread the idle budget over 1-3 screen-off windows.
        n_windows = int(rng.integers(1, 4))
        for _ in range(n_windows):
            duration = idle_budget / n_windows
            start = float(rng.uniform(day_start, max(day_start, day_end - duration)))
            windows.append((start, min(start + duration, day_end), None))
        # Full-tuple key: ties on start must not fall back to list
        # construction order, or a future refactor that builds windows
        # from an unordered source would silently reorder snapshots.
        windows.sort(key=lambda w: (w[0], w[1], w[2] or ""))
        return windows

    def _emit_fast_runs(self, windows, rng: np.random.Generator) -> None:
        battery = self.device.battery_level
        for start, end, foreground in windows:
            if end <= start:
                continue
            battery = max(0.05, battery - (end - start) / hours(30))
            self.buffer.append(
                "fast",
                FastSnapshotRun(
                    install_id=self.install_id,
                    participant_id=self.participant_id,
                    start=start,
                    end=end,
                    period=self.FAST_PERIOD_S,
                    foreground=foreground if self.permissions.usage_stats else None,
                    screen_on=foreground is not None,
                    battery=round(battery, 3),
                    usage_permission=self.permissions.usage_stats,
                ),
            )
        # Overnight recharge.
        self.device.battery_level = float(rng.uniform(0.6, 1.0))

    def _emit_slow_runs(self, windows) -> None:
        if self.permissions.get_accounts:
            accounts = tuple(
                (a.service, a.identifier) for a in self.device.accounts
            )
        else:
            accounts = ()
        stopped = tuple(self.device.stopped_packages())
        for start, end, _foreground in windows:
            if end <= start:
                continue
            self.buffer.append(
                "slow",
                SlowSnapshotRun(
                    install_id=self.install_id,
                    participant_id=self.participant_id,
                    android_id=self.device.android_id,
                    start=start,
                    end=end,
                    period=self.SLOW_PERIOD_S,
                    accounts=accounts,
                    save_mode=self.device.save_mode,
                    stopped_apps=stopped,
                    accounts_permission=self.permissions.get_accounts,
                ),
            )

    def _emit_app_changes(self, day_start: float, day_end: float) -> None:
        for event in self.device.events:
            if not day_start <= event.timestamp < day_end:
                continue
            if event.event_type is EventType.INSTALL:
                record = self.device.installed.get(event.package)
                self.buffer.append(
                    "fast",
                    AppChangeEvent(
                        install_id=self.install_id,
                        participant_id=self.participant_id,
                        timestamp=event.timestamp,
                        action="install",
                        package=event.package,
                        install_time=record.install_time if record else event.timestamp,
                        apk_hash=record.apk_hash if record else None,
                        n_granted=record.n_granted if record else 0,
                        n_denied=record.n_denied if record else 0,
                    ),
                )
            elif event.event_type is EventType.UNINSTALL:
                self.buffer.append(
                    "fast",
                    AppChangeEvent(
                        install_id=self.install_id,
                        participant_id=self.participant_id,
                        timestamp=event.timestamp,
                        action="uninstall",
                        package=event.package,
                    ),
                )


_DANGEROUS_SUFFIXES = frozenset(
    {
        "READ_CALENDAR", "WRITE_CALENDAR", "CAMERA", "READ_CONTACTS",
        "WRITE_CONTACTS", "GET_ACCOUNTS", "ACCESS_FINE_LOCATION",
        "ACCESS_COARSE_LOCATION", "RECORD_AUDIO", "READ_PHONE_STATE",
        "CALL_PHONE", "READ_CALL_LOG", "WRITE_CALL_LOG", "ADD_VOICEMAIL",
        "USE_SIP", "PROCESS_OUTGOING_CALLS", "BODY_SENSORS", "SEND_SMS",
        "RECEIVE_SMS", "READ_SMS", "RECEIVE_WAP_PUSH", "RECEIVE_MMS",
        "READ_EXTERNAL_STORAGE", "WRITE_EXTERNAL_STORAGE",
    }
)
