"""``repro.obs`` — metrics, tracing, and structured logging.

The paper's deployment leaned on an internal dashboard to watch the
data-collection pipeline (§3); this package is the reproduction's
equivalent nervous system.  It is dependency-free and **off by
default**: the module-level accessors hand out no-op implementations
until :func:`configure` swaps in live ones, so instrumented hot paths
cost one cheap call when observability is disabled and seeded
simulations stay byte-identical either way.

Usage::

    from repro import obs

    obs.configure()                       # enable metrics + tracing
    with obs.trace("ingest.chunk"):
        obs.counter("records_total").inc()
    print(obs.registry().render_prometheus())
    print(obs.tracer().render())
    obs.reset()                           # back to the no-op default
"""

from __future__ import annotations

from typing import TextIO

from .logging import LEVELS, NullLogger, StructLogger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    parse_prometheus,
)
from .tracing import NullTracer, SpanNode, Tracer

__all__ = [
    "configure",
    "reset",
    "enabled",
    "metrics_enabled",
    "tracing_enabled",
    "registry",
    "tracer",
    "trace",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "SpanNode",
    "Tracer",
    "NullTracer",
    "StructLogger",
    "NullLogger",
    "DEFAULT_BUCKETS",
    "LEVELS",
    "parse_prometheus",
]

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()
_NULL_LOGGER = NullLogger()

_registry: MetricsRegistry = _NULL_REGISTRY
_tracer: Tracer = _NULL_TRACER
_logger: StructLogger = _NULL_LOGGER


def configure(
    metrics: bool = True,
    tracing: bool = True,
    logging: bool = False,
    log_stream: TextIO | None = None,
    log_level: str = "info",
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Turn observability on for the whole process.

    Returns the live registry.  Components constructed *after* this call
    attach their series to it; call before building the world.  Passing
    ``registry`` lets tests supply their own collection target.
    """
    global _registry, _tracer, _logger
    if metrics:
        _registry = registry or MetricsRegistry()
    if tracing:
        _tracer = Tracer()
    if logging or log_stream is not None:
        _logger = StructLogger("repro", stream=log_stream, level=log_level)
    return _registry


def reset() -> None:
    """Back to the zero-overhead no-op default."""
    global _registry, _tracer, _logger
    _registry = _NULL_REGISTRY
    _tracer = _NULL_TRACER
    _logger = _NULL_LOGGER


def metrics_enabled() -> bool:
    return _registry is not _NULL_REGISTRY


def tracing_enabled() -> bool:
    return _tracer is not _NULL_TRACER


def enabled() -> bool:
    return metrics_enabled() or tracing_enabled()


def registry() -> MetricsRegistry:
    """The process-wide registry (a no-op sink until configured)."""
    return _registry


def tracer() -> Tracer:
    return _tracer


def trace(name: str):
    """Open a span on the process-wide tracer: ``with obs.trace(...):``."""
    return _tracer.trace(name)


def counter(name: str, labels: dict[str, str] | None = None, help: str = "") -> Counter:
    return _registry.counter(name, labels, help)


def gauge(name: str, labels: dict[str, str] | None = None, help: str = "") -> Gauge:
    return _registry.gauge(name, labels, help)


def histogram(
    name: str,
    labels: dict[str, str] | None = None,
    help: str = "",
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> Histogram:
    return _registry.histogram(name, labels, help, buckets)


def timer(histogram: Histogram | None = None) -> Timer:
    """Time a block of code: ``with obs.timer(hist) as t: ...``.

    All wall-clock duration measurement goes through this (DET002);
    pass a histogram to record the duration, or nothing to just read
    ``t.elapsed`` afterwards.
    """
    return Timer(histogram)


def get_logger(name: str = "") -> StructLogger:
    return _logger.named(name) if name else _logger
