"""Event vocabulary for device timelines.

The numeric values match the y-axis of the paper's Figure 1 ("type 4":
app installation, "type 3": review posting, "type 2": app placed in the
foreground, with uninstalls below).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventType", "DeviceEvent", "ForegroundSession"]


class EventType(enum.IntEnum):
    """On-device interaction event types (Figure 1 y-axis)."""

    STOP = 0
    UNINSTALL = 1
    FOREGROUND = 2
    REVIEW = 3
    INSTALL = 4


@dataclass(frozen=True, slots=True, order=True)
class DeviceEvent:
    """One timestamped interaction with one app on one device."""

    timestamp: float
    event_type: EventType
    package: str


@dataclass(frozen=True, slots=True, order=True)
class ForegroundSession:
    """A contiguous interval during which one app held the foreground.

    Fast snapshots (5 s cadence) sample these intervals; a session of
    ``duration`` seconds yields ``duration / 5`` foreground snapshots
    naming ``package``.
    """

    start: float
    end: float
    package: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"session ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start
