"""Project context: what a whole-program rule gets to see.

Built once per lint run (phase one), shared by every
:class:`~repro.statan.rules.ProjectRule`:

* the parsed :class:`~repro.statan.engine.ModuleContext` per file;
* the :class:`~repro.statan.symbols.SymbolTable` and
  :class:`~repro.statan.callgraph.CallGraph`;
* declared record schemas, extracted *statically* from any indexed
  module that assigns ``NAME = RecordSchema("...", (Field(...), ...))``
  — the scanned tree is never imported, so fixture trees and broken
  checkouts lint the same way as the real package;
* per-file suppression tables so ``# statan: disable=`` keeps working
  for project findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .callgraph import CallGraph
from .engine import matches_tail
from .symbols import SymbolTable

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .engine import ModuleContext

__all__ = ["SchemaField", "SchemaInfo", "ProjectContext", "extract_schemas"]


@dataclass(frozen=True)
class SchemaField:
    """Statically extracted ``Field(name, kind, nullable=...)``."""

    name: str
    kind: str
    nullable: bool = False


@dataclass(frozen=True)
class SchemaInfo:
    """One ``RecordSchema`` literal found in the scanned tree."""

    name: str                   # the schema's declared record name
    const_name: str             # the module-level constant it binds to
    module: str
    path: str
    line: int
    fields: tuple[SchemaField, ...]

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> SchemaField | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __contains__(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)


def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _parse_field(call: ast.Call, ctx: "ModuleContext") -> SchemaField | None:
    """``Field("name", "kind", nullable=True)`` → SchemaField."""
    func = call.func
    named_field = (isinstance(func, ast.Name) and func.id == "Field") or matches_tail(
        ctx.resolve(func), "Field"
    )
    if not named_field:
        return None
    args = list(call.args)
    name = _const_str(args[0]) if args else None
    kind = _const_str(args[1]) if len(args) > 1 else None
    if name is None or kind is None:
        return None
    nullable = False
    for kw in call.keywords:
        if kw.arg == "nullable" and isinstance(kw.value, ast.Constant):
            nullable = bool(kw.value.value)
    return SchemaField(name=name, kind=kind, nullable=nullable)


def extract_schemas(
    modules: list["ModuleContext"],
) -> tuple[dict[str, SchemaInfo], dict[str, SchemaInfo]]:
    """Statically collect schema constants and collection bindings.

    Returns ``(schemas, collections)`` where ``schemas`` maps the bare
    constant name (``SLOW_RUN_SCHEMA``) to its extracted definition and
    ``collections`` maps a store collection name (``slow_runs``) to the
    schema it is declared with — recovered from any module-level dict
    literal whose keys are strings and whose values are all schema
    constants (the ``SCHEMA_BY_COLLECTION`` idiom).
    """
    schemas: dict[str, SchemaInfo] = {}
    collection_candidates: list[tuple[str, dict[str, str]]] = []

    for ctx in sorted(modules, key=lambda m: m.path):
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call) and matches_tail(
                ctx.resolve(value.func)
                or (value.func.id if isinstance(value.func, ast.Name) else None),
                "RecordSchema",
            ):
                schema = _parse_schema(ctx, target.id, value)
                if schema is not None:
                    schemas[target.id] = schema
            elif isinstance(value, ast.Dict):
                mapping = _parse_collection_map(value)
                if mapping:
                    collection_candidates.append((ctx.path, mapping))

    collections: dict[str, SchemaInfo] = {}
    for _path, mapping in sorted(collection_candidates):
        if not all(const in schemas for const in mapping.values()):
            continue
        for coll, const in mapping.items():
            collections[coll] = schemas[const]
    return schemas, collections


def _parse_schema(
    ctx: "ModuleContext", const_name: str, call: ast.Call
) -> SchemaInfo | None:
    args = list(call.args)
    name = _const_str(args[0]) if args else None
    if name is None or len(args) < 2:
        return None
    fields_node = args[1]
    if not isinstance(fields_node, (ast.Tuple, ast.List)):
        return None
    fields: list[SchemaField] = []
    for element in fields_node.elts:
        if not isinstance(element, ast.Call):
            return None
        parsed = _parse_field(element, ctx)
        if parsed is None:
            return None
        fields.append(parsed)
    return SchemaInfo(
        name=name,
        const_name=const_name,
        module=ctx.module,
        path=ctx.path,
        line=call.lineno,
        fields=tuple(fields),
    )


def _parse_collection_map(node: ast.Dict) -> dict[str, str]:
    """``{"slow_runs": SLOW_RUN_SCHEMA, ...}`` → {coll: const name}."""
    mapping: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        coll = _const_str(key) if key is not None else None
        if coll is None or not isinstance(value, ast.Name):
            return {}
        mapping[coll] = value.id
    return mapping


class ProjectContext:
    """Everything the whole-program rules need, built once per run."""

    def __init__(self, modules: list["ModuleContext"]) -> None:
        self.modules: list["ModuleContext"] = sorted(
            modules, key=lambda m: m.path
        )
        self.by_path: dict[str, "ModuleContext"] = {
            ctx.path: ctx for ctx in self.modules
        }
        self.symbols = SymbolTable.build(self.modules)
        self.callgraph = CallGraph.build(self.symbols, self.by_path)
        self.schemas, self.collections = extract_schemas(self.modules)
        #: path -> (per-line suppressions, file-wide suppressions)
        self.suppressions: dict[str, tuple[dict[int, set[str]], set[str]]] = {
            ctx.path: ctx.suppressions for ctx in self.modules
        }

    def stats(self) -> dict[str, int]:
        return {
            "files_indexed": len(self.modules),
            "functions": len(self.symbols),
            "classes": len(self.symbols.classes),
            "call_edges": self.callgraph.n_edges,
            "schemas": len(self.schemas),
            "collections": len(self.collections),
        }

    def is_suppressed(self, finding) -> bool:
        per_line, per_file = self.suppressions.get(finding.path, ({}, set()))
        if finding.rule in per_file or "ALL" in per_file:
            return True
        line_rules = per_line.get(finding.line, set())
        return finding.rule in line_rules or "ALL" in line_rules
