"""Tests for the data buffer and the hash-acknowledged transfer protocol."""

import gzip
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.buffer import DataBuffer, chunk_hash
from repro.platform.models import FastSnapshotRun, record_from_dict
from repro.platform.transport import LossyTransport, Transport


class Receiver:
    """Minimal server double: stores chunks, acks with their hash."""

    def __init__(self):
        self.chunks: list[tuple[str, bytes]] = []

    def receive_chunk(self, kind: str, data: bytes) -> str:
        self.chunks.append((kind, data))
        return chunk_hash(data)

    def records(self):
        out = []
        for _kind, data in self.chunks:
            for line in gzip.decompress(data).decode().splitlines():
                out.append(record_from_dict(json.loads(line)))
        return out


def fast_run(i: int) -> FastSnapshotRun:
    return FastSnapshotRun(
        install_id="inst",
        participant_id="100001",
        start=float(i),
        end=float(i) + 60.0,
        period=5.0,
        foreground=f"com.app{i}",
        screen_on=True,
        battery=0.9,
    )


class TestDataBuffer:
    def test_no_chunk_before_threshold(self):
        buffer = DataBuffer(fast_threshold_bytes=10**6)
        buffer.append("fast", fast_run(0))
        assert buffer.pending_chunks == 0

    def test_seal_on_threshold(self):
        buffer = DataBuffer(fast_threshold_bytes=200)
        buffer.append("fast", fast_run(0))
        buffer.append("fast", fast_run(1))
        assert buffer.pending_chunks >= 1

    def test_seal_all_flushes_partial(self):
        buffer = DataBuffer()
        buffer.append("fast", fast_run(0))
        buffer.append("slow", fast_run(1))  # kind routing only
        buffer.seal_all()
        assert buffer.pending_chunks == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DataBuffer().append("medium", fast_run(0))

    def test_roundtrip_through_reliable_transport(self):
        receiver = Receiver()
        transport = Transport(receiver)
        buffer = DataBuffer()
        originals = [fast_run(i) for i in range(5)]
        for record in originals:
            buffer.append("fast", record)
        buffer.seal_all()
        delivered = buffer.flush(transport)
        assert delivered == 5
        assert buffer.pending_chunks == 0
        assert receiver.records() == originals

    def test_chunks_deleted_only_after_hash_match(self):
        receiver = Receiver()
        buffer = DataBuffer()
        buffer.append("fast", fast_run(0))
        buffer.seal_all()

        class WrongAck:
            def send(self, kind, data):
                return "bogus-hash"

        buffer.flush(WrongAck(), max_attempts=2)
        assert buffer.pending_chunks == 1  # kept for retransmission
        buffer.flush(Transport(receiver))
        assert buffer.pending_chunks == 0

    def test_retransmission_over_lossy_channel(self):
        receiver = Receiver()
        transport = LossyTransport(
            receiver, loss_probability=0.9, rng=np.random.default_rng(1)
        )
        buffer = DataBuffer()
        for i in range(4):
            buffer.append("fast", fast_run(i))
        buffer.seal_all()
        for _ in range(20):  # keep flushing until everything lands
            buffer.flush(transport)
            if buffer.pending_chunks == 0:
                break
        assert buffer.pending_chunks == 0
        assert len(receiver.records()) == 4
        assert buffer.retransmissions > 0

    def test_corruption_detected_by_hash(self):
        receiver = Receiver()
        transport = LossyTransport(
            receiver, corruption_probability=1.0, rng=np.random.default_rng(0)
        )
        buffer = DataBuffer()
        buffer.append("fast", fast_run(0))
        buffer.seal_all()
        buffer.flush(transport, max_attempts=3)
        # Every attempt corrupted: chunk must not be deleted and the
        # receiver must have stored nothing.
        assert buffer.pending_chunks == 1
        assert receiver.chunks == []

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 10_000))
    def test_property_no_loss_no_duplication(self, n_records, seed):
        """Whatever the loss pattern, retry-until-acked delivers every
        record exactly once."""
        receiver = Receiver()
        transport = LossyTransport(
            receiver, loss_probability=0.3, rng=np.random.default_rng(seed)
        )
        buffer = DataBuffer(fast_threshold_bytes=300)
        originals = [fast_run(i) for i in range(n_records)]
        for record in originals:
            buffer.append("fast", record)
        buffer.seal_all()
        for _ in range(200):
            buffer.flush(transport)
            if buffer.pending_chunks == 0:
                break
        assert buffer.pending_chunks == 0
        assert sorted(receiver.records(), key=lambda r: r.start) == originals
