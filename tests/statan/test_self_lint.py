"""The shipped tree must be statan-clean modulo the committed baseline,
and the CLI gate must catch a seeded-run-breaking injection."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.statan import analyze_paths, load_baseline, partition

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "statan-baseline.json"


class TestSelfLint:
    def test_src_is_clean_modulo_committed_baseline(self):
        findings = analyze_paths([SRC])
        new, _grandfathered, stale = partition(findings, load_baseline(BASELINE))
        assert new == [], "\n".join(f.format_text() for f in new)
        assert stale == [], (
            "baseline entries no longer match the tree; run "
            "`python -m repro lint --update-baseline`"
        )

    def test_committed_baseline_is_warning_only(self):
        # Errors (DET/BUG rules) must be fixed, never grandfathered.
        baseline = load_baseline(BASELINE)
        assert {entry["rule"] for entry in baseline.entries} <= {"ML001", "OBS001"}

    def test_cli_exits_zero_on_shipped_tree(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out


class TestInjectionGate:
    """Copy a slice of the tree, inject a violation, expect a red gate."""

    def _lint(self, root: Path, baseline: Path) -> int:
        return main(["lint", str(root), "--baseline", str(baseline)])

    @pytest.fixture()
    def fake_tree(self, tmp_path) -> Path:
        sim = tmp_path / "simulation"
        sim.mkdir()
        (sim / "world.py").write_text(
            (SRC / "repro" / "simulation" / "world.py").read_text()
        )
        return tmp_path

    def test_clean_copy_passes(self, fake_tree, tmp_path, capsys):
        assert self._lint(fake_tree, tmp_path / "b.json") == 0

    def test_bare_random_injection_fails(self, fake_tree, tmp_path, capsys):
        world = fake_tree / "simulation" / "world.py"
        world.write_text(
            world.read_text()
            + "\nimport random\n\ndef _jitter():\n    return random.random()\n"
        )
        assert self._lint(fake_tree, tmp_path / "b.json") == 1
        assert "DET001" in capsys.readouterr().out

    def test_wall_clock_injection_fails(self, fake_tree, tmp_path, capsys):
        world = fake_tree / "simulation" / "world.py"
        world.write_text(
            world.read_text() + "\nimport time\n\ndef _now():\n    return time.time()\n"
        )
        assert self._lint(fake_tree, tmp_path / "b.json") == 1
        assert "DET002" in capsys.readouterr().out

    def test_unsorted_listing_injection_fails(self, fake_tree, tmp_path, capsys):
        world = fake_tree / "simulation" / "world.py"
        world.write_text(
            world.read_text()
            + "\nimport os\n\ndef _chunks(d):\n    return [p for p in os.listdir(d)]\n"
        )
        assert self._lint(fake_tree, tmp_path / "b.json") == 1
        assert "DET003" in capsys.readouterr().out

    def test_two_hop_rng_injection_fails_interprocedurally(
        self, fake_tree, tmp_path, capsys
    ):
        world = fake_tree / "simulation" / "world.py"
        world.write_text(
            world.read_text()
            + "\nimport numpy as _inj_np\n"
            "\ndef _inj_noise():\n    return _inj_np.random.normal()\n"
            "\ndef _inj_middle():\n    return _inj_noise()\n"
            "\ndef _inj_entry():\n    return _inj_middle()\n"
        )
        assert self._lint(fake_tree, tmp_path / "b.json") == 1
        out = capsys.readouterr().out
        assert "DET004" in out
        assert "_inj_entry" in out  # two hops above the sink

    def test_generator_capturing_closure_to_executor_fails(
        self, fake_tree, tmp_path, capsys
    ):
        world = fake_tree / "simulation" / "world.py"
        world.write_text(
            world.read_text()
            + "\nfrom repro.parallel import ProcessExecutor as _InjExec\n"
            "import numpy as _inj_np2\n"
            "\ndef _inj_submit(tasks):\n"
            "    rng = _inj_np2.random.default_rng(1)\n"
            "    def _inj_worker(t):\n"
            "        return rng.normal() + t\n"
            "    ex = _InjExec(2)\n"
            "    return ex.map(_inj_worker, [(t,) for t in tasks])\n"
        )
        assert self._lint(fake_tree, tmp_path / "b.json") == 1
        assert "PAR001" in capsys.readouterr().out

    def test_undeclared_field_query_fails(self, fake_tree, tmp_path, capsys):
        frames = fake_tree / "frames"
        frames.mkdir()
        (frames / "schema.py").write_text(
            "from repro.frames.schema import Field, RecordSchema\n"
            '\nRUN_SCHEMA = RecordSchema("run", (Field("run_id", "str"),))\n'
            '\nBY_COLLECTION = {"runs": RUN_SCHEMA}\n'
        )
        world = fake_tree / "simulation" / "world.py"
        world.write_text(
            world.read_text()
            + "\ndef _inj_query(store):\n"
            '    return store["runs"].find({"not_a_field": 1})\n'
        )
        assert self._lint(fake_tree, tmp_path / "b.json") == 1
        assert "SCH001" in capsys.readouterr().out


class TestCliOptions:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "DET003", "DET004", "BUG001", "ML001",
            "OBS001", "PAR001", "PAR002", "SCH001", "SCH002",
        ):
            assert rule_id in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f(xs=[]):\n    return xs\n")
        code = main(["lint", str(tmp_path), "--format", "json",
                     "--baseline", str(tmp_path / "b.json")])
        assert code == 1
        out = capsys.readouterr().out
        assert '"rule": "BUG001"' in out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f(xs=[]):\n    return xs\n")
        baseline = tmp_path / "b.json"
        assert main(["lint", str(tmp_path), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "does/not/exist"]) == 2
