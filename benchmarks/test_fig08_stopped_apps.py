"""Bench: Figure 8 stopped-apps boxplot."""

from repro.analysis import compute_stopped_apps
from repro.experiments import run_experiment


def test_fig08_stopped_apps(benchmark, workbench, emit):
    benchmark(compute_stopped_apps, workbench.observations)
    report = emit(run_experiment("fig08", workbench))
    assert report.metrics["worker_median"] > report.metrics["regular_median"]
    assert report.metrics["significant"] == 1.0
