"""repro.faults — deterministic fault injection for the upload path.

The fault plane stresses the §3 "resilient communications" pipeline end
to end: a seeded :class:`FaultPlan` threads from
:class:`~repro.simulation.config.SimulationConfig` through the
two-phase day engine into a :class:`FaultyTransport` /
:class:`FaultableServer` wrapper pair, while the client buffer answers
with virtual-clock exponential backoff, a retry budget, a dead-letter
queue and a Retry-After circuit breaker, and the server answers with an
idempotent receive (SHA-256 dedup window) and atomic chunk commit.

The contract under test — exactly-once ingest — is asserted by the
chaos harness (``python -m repro chaos``): the same seeded study run
under a clean plan and under escalating fault plans produces a
byte-identical ``study_digest`` at any worker count.  Faults may change
*when* data arrives; they may never change *what* the study contains.
"""

from .errors import FaultInjected, InjectedThrottle, ServerCrash, StoreRejected
from .plan import (
    FAULT_STREAM_BACKOFF,
    FAULT_STREAM_SERVER,
    FAULT_STREAM_TRANSPORT,
    FaultPlan,
    FaultSpec,
)
from .server import FaultableServer
from .transport import FaultyTransport

__all__ = [
    "FAULT_STREAM_BACKOFF",
    "FAULT_STREAM_SERVER",
    "FAULT_STREAM_TRANSPORT",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FaultableServer",
    "FaultyTransport",
    "InjectedThrottle",
    "ServerCrash",
    "StoreRejected",
]
