"""Dataset assembly for the app (§7.2) and device (§8.2) classifiers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ml.preprocessing import SimpleImputer
from ..simulation.world import StudyData
from .app_features import APP_FEATURE_NAMES, app_feature_matrix, app_feature_vector
from .device_features import (
    DEVICE_FEATURE_NAMES,
    device_feature_matrix,
    device_feature_vector,
)
from .labeling import LabelingConfig, LabelingResult, label_apps
from .observations import DeviceObservation, build_observations

__all__ = [
    "AppInstance",
    "AppDataset",
    "DeviceDataset",
    "build_app_dataset",
    "build_device_dataset",
]


def _check_features(features: str) -> None:
    if features not in ("batch", "scalar"):
        raise ValueError(
            f"features must be 'batch' or 'scalar', got {features!r}"
        )


@dataclass(frozen=True)
class AppInstance:
    """Provenance of one row of the app-usage dataset."""

    package: str
    install_id: str
    is_worker_device: bool
    label: int  # 1 = promotion usage, 0 = personal usage


@dataclass
class AppDataset:
    """The §7.2 train-and-validate app-usage dataset."""

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]
    instances: list[AppInstance]
    labeling: LabelingResult

    @property
    def n_suspicious(self) -> int:
        return int(np.sum(self.y == 1))

    @property
    def n_regular(self) -> int:
        return int(np.sum(self.y == 0))


@dataclass
class DeviceDataset:
    """The §8.2 device-usage dataset."""

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]
    observations: list[DeviceObservation]

    @property
    def n_worker(self) -> int:
        return int(np.sum(self.y == 1))

    @property
    def n_regular(self) -> int:
        return int(np.sum(self.y == 0))


def build_app_dataset(
    data: StudyData,
    observations: list[DeviceObservation] | None = None,
    labeling_config: LabelingConfig | None = None,
    impute: bool = True,
    features: str = "batch",
) -> AppDataset:
    """Label apps via §7.2 rules, then extract one instance per
    (labeled app, held-out device carrying it).

    ``features`` selects the extraction path: ``"batch"`` computes each
    device's rows in one :func:`app_feature_matrix` pass over column
    slices, ``"scalar"`` stacks per-package
    :func:`app_feature_vector` calls.  Both are byte-identical.
    """
    _check_features(features)
    if observations is None:
        observations = build_observations(
            data, data.eligible_participants(min_days=2)
        )
    labeling = label_apps(data, observations, labeling_config)

    rows: list[np.ndarray] = []
    labels: list[int] = []
    instances: list[AppInstance] = []
    for obs, label_set, label in (
        *((o, labeling.suspicious_apps, 1) for o in labeling.holdout_worker),
        *((o, labeling.regular_apps, 0) for o in labeling.holdout_regular),
    ):
        packages = sorted(obs.observed_packages & label_set)
        if not packages:
            continue
        if features == "batch":
            rows.append(
                app_feature_matrix(obs, packages, data.catalog, data.vt_client)
            )
        else:
            rows.extend(
                app_feature_vector(obs, package, data.catalog, data.vt_client)
                for package in packages
            )
        for package in packages:
            labels.append(label)
            instances.append(
                AppInstance(
                    package=package,
                    install_id=obs.install_id,
                    is_worker_device=obs.is_worker,
                    label=label,
                )
            )

    if not rows:
        raise ValueError(
            "labeling produced no instances — cohort too small or labeling "
            "thresholds too strict for this simulation scale"
        )
    X = np.vstack(rows)
    if impute:
        X = SimpleImputer(strategy="median").fit_transform(X)
    return AppDataset(
        X=X,
        y=np.asarray(labels, dtype=np.int64),
        feature_names=APP_FEATURE_NAMES,
        instances=instances,
        labeling=labeling,
    )


def build_device_dataset(
    data: StudyData,
    observations: list[DeviceObservation] | None = None,
    suspiciousness: dict[str, float] | None = None,
    impute: bool = True,
    features: str = "batch",
) -> DeviceDataset:
    """One row per eligible device; label 1 = worker-controlled.

    ``suspiciousness`` maps install_id -> fraction of installed apps the
    app classifier flagged (feature (2) of §8.1); omitted entries are NaN.
    ``features`` selects the (byte-identical) batch or scalar extraction
    path.
    """
    _check_features(features)
    if observations is None:
        observations = build_observations(
            data, data.eligible_participants(min_days=2)
        )
    suspiciousness = suspiciousness or {}
    if features == "batch":
        X = device_feature_matrix(
            observations,
            [suspiciousness.get(obs.install_id) for obs in observations],
        )
    else:
        X = np.vstack(
            [
                device_feature_vector(obs, suspiciousness.get(obs.install_id))
                for obs in observations
            ]
        )
    if impute:
        X = SimpleImputer(strategy="median").fit_transform(X)
    return DeviceDataset(
        X=X,
        y=np.asarray([int(o.is_worker) for o in observations], dtype=np.int64),
        feature_names=DEVICE_FEATURE_NAMES,
        observations=observations,
    )
