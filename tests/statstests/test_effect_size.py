"""Tests for effect sizes and bootstrap confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statstests import bootstrap_ci, cliffs_delta, cohens_d, effect_sizes


class TestCohensD:
    def test_known_value(self):
        # Two unit-variance groups one mean apart: d = 1.
        rng = np.random.default_rng(0)
        a = rng.normal(1, 1, 5000)
        b = rng.normal(0, 1, 5000)
        assert cohens_d(a, b) == pytest.approx(1.0, abs=0.07)

    def test_sign_follows_direction(self, rng):
        a = rng.normal(0, 1, 100)
        b = rng.normal(2, 1, 100)
        assert cohens_d(a, b) < 0
        assert cohens_d(b, a) > 0

    def test_identical_groups_zero(self, rng):
        a = rng.normal(0, 1, 50)
        assert cohens_d(a, a) == pytest.approx(0.0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            cohens_d([1.0], [2.0, 3.0])


class TestCliffsDelta:
    def test_complete_dominance(self):
        assert cliffs_delta([10, 11, 12], [1, 2, 3]) == 1.0
        assert cliffs_delta([1, 2, 3], [10, 11, 12]) == -1.0

    def test_identical_groups_zero(self):
        assert cliffs_delta([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_matches_naive_computation(self, rng):
        a = rng.integers(0, 20, 40).astype(float)
        b = rng.integers(5, 25, 35).astype(float)
        naive = np.mean(
            [np.sign(x - y) for x in a for y in b]
        )
        assert cliffs_delta(a, b) == pytest.approx(naive, abs=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
    )
    def test_property_bounded_and_antisymmetric(self, a, b):
        delta = cliffs_delta(a, b)
        assert -1.0 <= delta <= 1.0
        assert cliffs_delta(b, a) == pytest.approx(-delta, abs=1e-12)

    def test_magnitude_bands(self, rng):
        huge = effect_sizes(rng.normal(5, 1, 200), rng.normal(0, 1, 200))
        tiny = effect_sizes(rng.normal(0.02, 1, 200), rng.normal(0, 1, 200))
        assert huge.magnitude() == "large"
        assert tiny.magnitude() in ("negligible", "small")


class TestBootstrapCI:
    def test_ci_contains_true_mean(self, rng):
        sample = rng.normal(10, 2, 300)
        lo, hi = bootstrap_ci(sample, random_state=0)
        assert lo <= 10.2 and hi >= 9.8
        assert lo < sample.mean() < hi

    def test_ci_narrows_with_sample_size(self, rng):
        small = rng.normal(0, 1, 30)
        large = rng.normal(0, 1, 3000)
        lo_s, hi_s = bootstrap_ci(small, random_state=0)
        lo_l, hi_l = bootstrap_ci(large, random_state=0)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_custom_statistic(self, rng):
        sample = rng.exponential(1, 500)
        lo, hi = bootstrap_ci(sample, statistic=np.median, random_state=0)
        assert lo < np.median(sample) < hi

    def test_deterministic_given_seed(self, rng):
        sample = rng.normal(0, 1, 100)
        assert bootstrap_ci(sample, random_state=7) == bootstrap_ci(sample, random_state=7)
