#!/usr/bin/env python3
"""Quickstart: simulate a small study, run the detection pipeline, and
print the headline results (Tables 1-2, Figure 15 organic split).

Run:  python examples/quickstart.py
Takes ~30 s (small cohort; pass --full for the paper-calibrated cohort).
"""

import argparse
import sys

from repro.core import DetectionPipeline
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper-calibrated 178+88 cohort (slower)",
    )
    args = parser.parse_args()

    config = SimulationConfig() if args.full else SimulationConfig.small()
    print(
        f"Simulating study: {config.n_worker_devices} worker + "
        f"{config.n_regular_devices} regular devices, {config.study_days} days ..."
    )
    data = run_study(config)
    print(
        f"  collected {data.server.store.total_documents():,} snapshot records, "
        f"crawled {data.review_crawler.collected_total():,} reviews\n"
    )

    n_splits = 10 if args.full else 5
    print("Running detection pipeline (app + device classifiers) ...")
    result = DetectionPipeline(n_splits=n_splits).run(data)

    print("\nApp classifier (paper Table 1 — promotion vs personal installs):")
    print(
        render_table(
            ["algorithm", "precision", "recall", "F1"],
            result.app_evaluation.table_rows(),
        )
    )

    print("\nDevice classifier (paper Table 2 — worker vs regular devices):")
    print(
        render_table(
            ["algorithm", "precision", "recall", "F1"],
            result.device_evaluation.table_rows(),
        )
    )

    organic, dedicated = result.organic_split()
    print(
        f"\nWorker-device split (paper Fig 15): {organic} organic-indicative, "
        f"{dedicated} promotion-only (paper: 123 / 55)"
    )
    detected = sum(1 for v in result.worker_verdicts() if v.predicted_worker)
    print(
        f"Worker devices detected: {detected}/{len(result.worker_verdicts())}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
