"""Struct-of-arrays record container.

A :class:`ColumnFrame` holds N records as per-field columns instead of
N dicts.  Values are kept as python objects in per-column lists (the
source of truth, so a reconstructed row is exactly what was appended —
same objects for nested values, bit-identical scalars) and materialize
on demand into *incrementally maintained* numpy buffers for vectorized
query masks and batch feature extraction.  Appends never throw the
materialized arrays away: each column keeps an amortized-growth buffer
(capacity doubling, one dtype-coercion pass per unread tail), so an
interleaved insert/query workload re-coerces only the rows appended
since the last read instead of the whole column.

Frames come in two modes:

* **typed** — constructed with a :class:`~repro.frames.schema.RecordSchema`;
  every record must carry exactly the schema's fields.  Numeric fields
  materialize as ``float64``/``int64``/``bool_`` columns.
* **generic** — no schema; columns are discovered from the documents
  (in first-seen order, which is deterministic: it follows document
  insertion order, never set iteration) and key *absence* is tracked
  per cell so ``$exists`` can distinguish a missing key from an
  explicit ``None``.

Batch writes go through :meth:`ColumnFrame.extend_batch`: one key-set
validation pass over the documents, then one ``list.extend`` per column
— the append-optimized ingest path the server's chunk handler uses.

:class:`FrameRow` is a zero-copy read-only mapping view of one row,
usable anywhere a document dict is read (``row["field"]``,
``row.get(...)``, ``{**row}``).  :class:`ColumnRun` is the multi-row
counterpart: a read-only sequence view over a fixed set of row
positions that yields :class:`FrameRow` views lazily and exposes the
underlying column slices (``run.column("start")``) so per-device
traversals can consume contiguous arrays instead of materializing one
view object per record.
"""

from __future__ import annotations

import operator
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from .schema import RecordSchema

__all__ = ["ColumnFrame", "ColumnRun", "FrameRow", "SchemaMismatchError"]

#: Cell marker for "this document did not carry the key" (generic mode).
_ABSENT = object()

_NUMPY_DTYPES = {"float": np.float64, "int": np.int64, "bool": np.bool_}

#: Smallest buffer allocation; doubles from here.
_MIN_CAPACITY = 16


class SchemaMismatchError(ValueError):
    """A document does not carry exactly the schema's fields."""


class FrameRow(Mapping):
    """Read-only mapping view of one frame row (no dict materialized)."""

    __slots__ = ("_frame", "_index")

    def __init__(self, frame: "ColumnFrame", index: int) -> None:
        self._frame = frame
        self._index = index

    def __getitem__(self, key: str) -> Any:
        return self._frame.cell(key, self._index)

    def __iter__(self) -> Iterator[str]:
        return self._frame.row_keys(self._index)

    def __len__(self) -> int:
        return sum(1 for _ in self._frame.row_keys(self._index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrameRow({dict(self)!r})"


class ColumnRun(Sequence):
    """Read-only sequence view over selected rows of one frame.

    Holds the frame and a position array; rows materialize lazily as
    :class:`FrameRow` views on access, and whole-field reads come back
    as numpy slices (:meth:`column`) so batch consumers never touch the
    per-row path at all.
    """

    __slots__ = ("frame", "positions")

    def __init__(self, frame: "ColumnFrame", positions) -> None:
        self.frame = frame
        self.positions = np.asarray(positions, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.positions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnRun(self.frame, self.positions[index])
        return FrameRow(self.frame, int(self.positions[index]))

    def __iter__(self) -> Iterator[FrameRow]:
        frame = self.frame
        for position in self.positions.tolist():
            yield FrameRow(frame, position)

    def __reversed__(self) -> Iterator[FrameRow]:
        frame = self.frame
        for position in self.positions[::-1].tolist():
            yield FrameRow(frame, position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnRun({len(self)} rows)"

    def column(self, name: str) -> np.ndarray:
        """This run's slice of one column (native dtype when typed)."""
        return self.frame.column(name)[self.positions]

    def cells(self, name: str) -> list:
        """Raw python values for one field over the run (absent -> None)."""
        values = self.frame._columns.get(name)
        if values is None:
            return [None] * len(self.positions)
        out = [values[position] for position in self.positions.tolist()]
        return [None if value is _ABSENT else value for value in out]

    def rows(self) -> list[dict]:
        """Materialize every row as a plain dict."""
        return [self.frame.row(position) for position in self.positions.tolist()]


class _ColumnBuffer:
    """Amortized-growth numpy shadow of one value list.

    ``array[:filled]`` always mirrors the first ``filled`` entries of
    the backing list; reads coerce only the unseen tail.  Returned
    views are read-only slices of the shared buffer — safe because
    filled positions are never rewritten (the frame is append-only).
    """

    __slots__ = ("array", "filled")

    def __init__(self, dtype) -> None:
        self.array = np.empty(_MIN_CAPACITY, dtype=dtype)
        self.filled = 0

    def _reserve(self, length: int) -> None:
        capacity = len(self.array)
        if capacity >= length:
            return
        while capacity < length:
            capacity *= 2
        grown = np.empty(capacity, dtype=self.array.dtype)
        grown[: self.filled] = self.array[: self.filled]
        self.array = grown

    def view(self, length: int) -> np.ndarray:
        view = self.array[:length]
        view.flags.writeable = False
        return view


class ColumnFrame:
    """Columnar storage for homogeneous (typed) or ad-hoc (generic) records."""

    def __init__(self, schema: RecordSchema | None = None) -> None:
        self.schema = schema
        self._length = 0
        self._columns: dict[str, list] = {}
        # name -> (view, length-at-build): reads reuse the view until
        # the frame grows, preserving identity between appends.
        self._views: dict[str, tuple[np.ndarray, int]] = {}
        self._present_views: dict[str, tuple[np.ndarray, int]] = {}
        self._buffers: dict[str, _ColumnBuffer] = {}
        self._present_buffers: dict[str, _ColumnBuffer] = {}
        if schema is not None:
            for field in schema.fields:
                self._columns[field.name] = []
            self._field_names = frozenset(schema.field_names)
        else:
            self._field_names = frozenset()

    # -- writes ---------------------------------------------------------
    def append(self, document: Mapping) -> None:
        if self.schema is not None:
            if document.keys() != self._field_names:
                raise SchemaMismatchError(
                    f"document keys {sorted(document.keys())} do not match "
                    f"schema {self.schema.name!r} fields"
                )
            for name, column in self._columns.items():
                column.append(document[name])
        else:
            for key in document:
                if key not in self._columns:
                    # Backfill: rows appended before this key was first
                    # seen did not carry it.
                    self._columns[key] = [_ABSENT] * self._length
            for name, column in self._columns.items():
                column.append(document.get(name, _ABSENT))
        self._length += 1

    def extend(self, documents) -> int:
        count = 0
        for document in documents:
            self.append(document)
            count += 1
        return count

    def extend_batch(self, documents: Sequence[Mapping]) -> int:
        """Append a batch column-wise, one C-level pass per column.

        Raises :class:`SchemaMismatchError` (never a partial write —
        the frame is untouched or rolled back to its pre-call state)
        when any document mismatches; the store then falls back to the
        per-document path, which degrades at exactly the offending
        record.  Semantics are identical to appending each document in
        order.

        The typed fast path avoids per-document python work entirely:
        key-set validation is one ``sum(map(len, ...))`` check (every
        document that survives the per-column ``itemgetter`` extraction
        carries all schema fields, so an exact total length means no
        extras either), and each column fills through
        ``list.extend(map(itemgetter(name), documents))``.
        """
        documents = (
            documents if isinstance(documents, (list, tuple)) else list(documents)
        )
        if not documents:
            return 0
        if self.schema is not None:
            try:
                total = sum(map(len, documents))
            except TypeError:
                raise SchemaMismatchError("documents must be sized mappings")
            if total != len(self._field_names) * len(documents):
                raise SchemaMismatchError(
                    f"batch key sets do not match schema {self.schema.name!r} "
                    "fields"
                )
            start = self._length
            try:
                for name, column in self._columns.items():
                    column.extend(map(operator.itemgetter(name), documents))
            except (KeyError, TypeError, AttributeError):
                for column in self._columns.values():
                    del column[start:]
                raise SchemaMismatchError(
                    f"batch documents do not match schema "
                    f"{self.schema.name!r} fields"
                )
        else:
            new_columns: dict[str, None] = {}
            try:
                for document in documents:
                    for key in document.keys():
                        if key not in self._columns:
                            new_columns[key] = None
                staged = {
                    name: [document.get(name, _ABSENT) for document in documents]
                    for name in (*self._columns, *new_columns)
                }
            except (TypeError, AttributeError):
                raise SchemaMismatchError("documents must be mappings")
            for key in new_columns:
                self._columns[key] = [_ABSENT] * self._length
            for name, values in staged.items():
                self._columns[name].extend(values)
        self._length += len(documents)
        return len(documents)

    # -- basic reads ----------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def values(self, name: str) -> list:
        """The raw value list backing one column (do not mutate)."""
        return self._columns[name]

    def cell(self, name: str, index: int) -> Any:
        """One cell; raises ``KeyError`` for an absent key (like a dict)."""
        column = self._columns.get(name)
        if column is None:
            raise KeyError(name)
        value = column[index]
        if value is _ABSENT:
            raise KeyError(name)
        return value

    def cell_or_none(self, name: str, index: int) -> Any:
        """One cell; absent keys and unknown columns read as ``None``
        (the ``dict.get`` view every query operator except ``$exists``
        sees)."""
        column = self._columns.get(name)
        if column is None:
            return None
        value = column[index]
        return None if value is _ABSENT else value

    def row_keys(self, index: int) -> Iterator[str]:
        for name, column in self._columns.items():
            if column[index] is not _ABSENT:
                yield name

    def row(self, index: int) -> dict:
        """Materialize one row as a dict (schema/first-seen key order)."""
        return {
            name: column[index]
            for name, column in self._columns.items()
            if column[index] is not _ABSENT
        }

    def view(self, index: int) -> FrameRow:
        return FrameRow(self, index)

    def run(self, positions) -> ColumnRun:
        """A :class:`ColumnRun` view over the given row positions."""
        return ColumnRun(self, positions)

    # -- numpy materialization -----------------------------------------
    def column(self, name: str) -> np.ndarray:
        """The column as a numpy array (incrementally maintained).

        Typed non-nullable ``float``/``int``/``bool`` fields come back
        with their native dtype; everything else is an ``object`` array
        in which absent cells read as ``None`` (mirroring ``dict.get``).
        An unknown column reads as all-``None``.  Successive reads with
        no intervening append return the same (read-only) view; after
        appends only the new tail is coerced.
        """
        cached = self._views.get(name)
        if cached is not None and cached[1] == self._length:
            return cached[0]
        values = self._columns.get(name)
        if values is None:
            view = np.full(self._length, None, dtype=object)
            view.flags.writeable = False
        else:
            buffer = self._buffers.get(name)
            if buffer is None:
                dtype = self._native_dtype(name)
                buffer = _ColumnBuffer(dtype if dtype is not None else object)
                self._buffers[name] = buffer
            if buffer.filled < self._length:
                tail = values[buffer.filled : self._length]
                if buffer.array.dtype == object:
                    coerced = np.empty(len(tail), dtype=object)
                    for i, value in enumerate(tail):
                        coerced[i] = None if value is _ABSENT else value
                else:
                    coerced = np.asarray(tail, dtype=buffer.array.dtype)
                buffer._reserve(self._length)
                buffer.array[buffer.filled : self._length] = coerced
                buffer.filled = self._length
            view = buffer.view(self._length)
        self._views[name] = (view, self._length)
        return view

    def present(self, name: str) -> np.ndarray:
        """Boolean mask of rows whose document carried ``name`` at all."""
        cached = self._present_views.get(name)
        if cached is not None and cached[1] == self._length:
            return cached[0]
        values = self._columns.get(name)
        if values is None:
            view = np.zeros(self._length, dtype=bool)
            view.flags.writeable = False
        elif self.schema is not None:
            view = np.ones(self._length, dtype=bool)
            view.flags.writeable = False
        else:
            buffer = self._present_buffers.get(name)
            if buffer is None:
                buffer = _ColumnBuffer(np.bool_)
                self._present_buffers[name] = buffer
            if buffer.filled < self._length:
                tail = values[buffer.filled : self._length]
                buffer._reserve(self._length)
                buffer.array[buffer.filled : self._length] = np.fromiter(
                    (value is not _ABSENT for value in tail), np.bool_, len(tail)
                )
                buffer.filled = self._length
            view = buffer.view(self._length)
        self._present_views[name] = (view, self._length)
        return view

    def cells(self, name: str) -> Iterator[Any]:
        """Iterate effective cell values (absent/unknown keys -> ``None``)."""
        values = self._columns.get(name)
        if values is None:
            return iter([None] * self._length)
        return (None if value is _ABSENT else value for value in values)

    def _native_dtype(self, name: str):
        if self.schema is None or name not in self.schema:
            return None
        field = self.schema.field(name)
        if field.nullable:
            return None
        return _NUMPY_DTYPES.get(field.kind)

    def native_kind(self, name: str) -> str | None:
        """The schema kind when the column materializes with a native
        numpy dtype (``float``/``int``/``bool``); ``None`` otherwise."""
        if self.schema is None or name not in self.schema:
            return None
        field = self.schema.field(name)
        if field.nullable:
            return "str" if field.kind == "str" else None
        return field.kind if field.kind != "object" else None
