"""World driver: build the ecosystem, enroll the cohort, run the study.

This is the top-level substitute for the paper's deployment: it creates
the Play Store catalog, the ASO campaign board, the Gmail directory and
VirusTotal panel, enrolls worker and regular participant devices, runs
the study day by day — each device generating behaviour and its
RacketStore install reporting snapshots to the backend — and returns a
:class:`StudyData` handle exposing everything the §6-§8 analyses need.

Each study day runs through the two-phase engine (DESIGN.md §12):
phase 1 simulates every active device against frozen start-of-day
state — fanned out over device shards via :mod:`repro.parallel` when
``n_jobs`` (or ``$REPRO_N_JOBS``) asks for workers — and phase 2
commits the devices' action logs in deterministic ``(device_id, seq)``
order, advances rank tracking, and runs the crawler rounds.  The
resulting :class:`StudyData` is byte-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..faults.plan import FAULT_STREAM_SERVER
from ..faults.server import FaultableServer
from ..parallel import draw_seeds, parallel_map, resolve_n_jobs
from ..platform.mobile_app import RacketStoreApp
from ..platform.server import RacketStoreServer
from ..platform.store import DocumentStore
from ..playstore.catalog import Catalog
from ..playstore.google_id import GmailDirectory, GoogleIdCrawler
from ..playstore.rank import SearchRankModel
from ..playstore.rank_tracker import RankTracker
from ..playstore.reviews import ReviewCrawler, ReviewStore
from ..virustotal.client import VirusTotalClient
from ..virustotal.engines import EnginePanel
from .accounts import AccountFactory
from .behavior import BehaviorEngine
from .campaigns import CampaignBoard
from .clock import SECONDS_PER_DAY
from .config import SimulationConfig
from .device import SimDevice
from .personas import Persona, dedicated_worker, organic_worker, regular_user
from .phases import DeviceDayTask, build_day_params, commit_day, run_day_shard
from .recruitment import sample_country

__all__ = ["Participant", "StudyData", "build_world", "run_study"]


@dataclass
class Participant:
    """One enrolled device: its simulated owner and RacketStore install."""

    device: SimDevice
    persona: Persona
    app: RacketStoreApp
    participant_id: str
    enrolled_day: int
    active_days: int

    @property
    def is_worker(self) -> bool:
        return self.persona.is_worker

    @property
    def is_dropout(self) -> bool:
        return self.active_days < 2

    def active_on(self, day: int) -> bool:
        return self.enrolled_day <= day < self.enrolled_day + self.active_days


@dataclass
class StudyData:
    """Everything the analyses consume after a study run."""

    config: SimulationConfig
    catalog: Catalog
    review_store: ReviewStore
    review_crawler: ReviewCrawler
    gmail_directory: GmailDirectory
    id_crawler: GoogleIdCrawler
    vt_client: VirusTotalClient
    board: CampaignBoard
    server: RacketStoreServer
    rank_model: SearchRankModel
    participants: list[Participant] = field(default_factory=list)
    #: Daily keyword-rank series for every advertised package, advanced
    #: by the phase-2 commit (None until the study loop starts).
    rank_tracker: RankTracker | None = None

    # -- cohort views ----------------------------------------------------
    def worker_participants(self, min_days: int = 0) -> list[Participant]:
        return [
            p
            for p in self.participants
            if p.is_worker and p.active_days >= min_days
        ]

    def regular_participants(self, min_days: int = 0) -> list[Participant]:
        return [
            p
            for p in self.participants
            if not p.is_worker and p.active_days >= min_days
        ]

    def eligible_participants(self, min_days: int = 2) -> list[Participant]:
        """Devices with >= ``min_days`` of snapshots (§7.2/§8.2 filter)."""
        return [p for p in self.participants if p.active_days >= min_days]

    def apk_hash_oracle(self) -> dict[str, bool]:
        """apk hash -> is-malware ground truth for the VT panel."""
        return {
            h: app.is_malware
            for app in self.catalog.all_apps()
            for h in app.apk_hashes
        }


def _malware_oracle_factory(catalog: Catalog):
    lookup = {
        h: app.is_malware for app in catalog.all_apps() for h in app.apk_hashes
    }

    def oracle(apk_hash: str) -> bool:
        return lookup.get(apk_hash, False)

    return oracle


def build_world(config: SimulationConfig | None = None) -> tuple[StudyData, BehaviorEngine, AccountFactory, np.random.Generator]:
    """Construct (but do not run) the full ecosystem."""
    config = config or SimulationConfig()
    rng = np.random.default_rng(config.seed)

    catalog = Catalog(rng)
    for _ in range(config.n_popular_apps):
        catalog.add_popular_app()
    promoted = [catalog.add_promoted_app() for _ in range(config.n_promoted_apps)]
    for _ in range(config.n_third_party_apps):
        catalog.add_third_party_app()
    for _ in range(config.n_antivirus_apps):
        catalog.add_antivirus_app()

    board = CampaignBoard(rng)
    for app in promoted:
        board.post_campaign(app)

    review_store = ReviewStore()
    review_crawler = ReviewCrawler(review_store, first_crawl_cap=100_000)
    directory = GmailDirectory()
    id_crawler = GoogleIdCrawler(directory)
    panel = EnginePanel(np.random.default_rng(config.seed + 1))
    vt_client = VirusTotalClient(
        panel, _malware_oracle_factory(catalog), availability=config.vt_availability
    )

    if config.fault_plan is not None:
        # Server-side fault draws come from a dedicated per-study stream
        # (never the world rng), consumed in deterministic phase-2
        # commit order — so injections are identical at any n_jobs and
        # the world realization matches the clean run byte for byte.
        server: RacketStoreServer = FaultableServer(
            DocumentStore(backend=config.store_backend),
            review_crawler=review_crawler,
            plan=config.fault_plan,
            rng=np.random.default_rng([config.seed, FAULT_STREAM_SERVER]),
        )
    else:
        server = RacketStoreServer(
            DocumentStore(backend=config.store_backend), review_crawler=review_crawler
        )
    engine = BehaviorEngine(config, catalog, review_store, board, rng)
    factory = AccountFactory(directory, rng)

    data = StudyData(
        config=config,
        catalog=catalog,
        review_store=review_store,
        review_crawler=review_crawler,
        gmail_directory=directory,
        id_crawler=id_crawler,
        vt_client=vt_client,
        board=board,
        server=server,
        rank_model=SearchRankModel(catalog),
    )
    return data, engine, factory, rng


def _enroll(
    data: StudyData,
    engine: BehaviorEngine,
    factory: AccountFactory,
    rng: np.random.Generator,
    persona: Persona,
    active_days: int,
    enrolled_day: int = 0,
    device: SimDevice | None = None,
) -> Participant:
    """Enroll a participant; pass ``device`` to model a *repeat install*
    on an already-set-up device (Appendix A: workers reinstalling under
    a new participant identity to collect the install payment again)."""
    config = data.config
    if device is None:
        device = SimDevice(
            persona_kind=persona.kind,
            is_worker=persona.is_worker,
            rng=rng,
            android_id_missing=bool(rng.random() < 0.05),
        )
        device.country = sample_country(rng, persona.is_worker)
        engine.setup_device(device, persona, factory)

    participant_id = data.server.issue_participant_id()
    # Stream-compatibility draw: this seed fed the app-bound transport
    # before the phase split (transports now live inside the day phases
    # and draw loss from the per-day device rng).  Consuming it keeps
    # the world rng stream — and with it every paper-calibrated
    # realization downstream — byte-identical to the calibrated seed.
    rng.integers(2**31)
    # The app gets no server/transport binding: during the study every
    # sign-in/collect/uninstall call runs in phase 1 against a per-day
    # rng and a recording uplink whose chunks replay at commit time.
    app = RacketStoreApp(
        device=device,
        participant_id=participant_id,
        rng=np.random.default_rng(rng.integers(2**31)),
        # Permission grant rates reproduce the partial-reporting cohort
        # sizes of Figs 5/6 (not every device reports accounts/usage).
        grant_usage_stats=bool(rng.random() < config.grant_usage_stats_prob),
        grant_get_accounts=bool(rng.random() < config.grant_get_accounts_prob),
        fast_buffer_bytes=config.fast_buffer_bytes,
        slow_buffer_bytes=config.slow_buffer_bytes,
    )
    # Sign-in (and the initial snapshot) happens on the enrollment day
    # inside the study loop, so repeat installs capture the device state
    # *at that time* — required for Appendix-A app-set fingerprints and
    # for install/uninstall deltas to be consistent.
    participant = Participant(
        device=device,
        persona=persona,
        app=app,
        participant_id=participant_id,
        enrolled_day=enrolled_day,
        active_days=active_days,
    )
    data.participants.append(participant)
    return participant


def run_study(
    config: SimulationConfig | None = None, n_jobs: int | None = None
) -> StudyData:
    """Build the world, enroll the cohort, simulate every study day.

    ``n_jobs`` fans the device-local phase of each day out over worker
    processes (``None`` defers to ``$REPRO_N_JOBS``, ``<= 0`` means all
    cores); the returned :class:`StudyData` is byte-identical at any
    worker count.
    """
    config = config or SimulationConfig()
    with obs.trace("simulate"):
        data = _run_study_traced(config, n_jobs)
    # The load is complete: run the tuple-mover so analytical reads
    # start from settled, read-optimized columns.
    data.server.store.compact()
    obs.get_logger("simulate").info(
        "study_complete",
        participants=len(data.participants),
        records=data.server.stats.records_inserted,
        reviews=data.review_crawler.collected_total(),
    )
    return data


def _run_study_traced(
    config: SimulationConfig, n_jobs: int | None = None
) -> StudyData:
    with obs.trace("simulate.build_world"):
        data, engine, factory, rng = build_world(config)

    with obs.trace("simulate.enroll"):
        _enroll_cohort(data, engine, factory, rng)

    # Rank tracking (§2): every advertised package is followed for its
    # title's lead keyword; the phase-2 commit advances the series.
    data.rank_tracker = RankTracker(data.catalog, data.rank_model)
    for package in sorted(data.board.advertised_packages()):
        keyword = data.catalog.get(package).title.split()[0].lower()
        data.rank_tracker.track(package, keyword)

    params = build_day_params(engine)
    resolved_jobs = resolve_n_jobs(n_jobs)

    # Metric handles resolved once, outside the day loop: re-resolving
    # with help= on every device-day was measurable registry overhead.
    track_events = obs.metrics_enabled()
    if track_events:
        event_counters = {
            kind: obs.counter(
                "sim_events_total",
                {"persona": kind},
                help="device events generated per persona",
            )
            for kind in sorted({p.persona.kind for p in data.participants})
        }
        device_days_counter = obs.counter("sim_device_days_total")
        days_counter = obs.counter("sim_days_total")

    faultable = isinstance(data.server, FaultableServer)

    # -- study days ------------------------------------------------------
    with obs.trace("simulate.days"):
        for day in range(config.study_days):
            day_start = day * SECONDS_PER_DAY
            with obs.trace("simulate.day"):
                if faultable:
                    # Start-of-day reconciliation: chunks whose commit
                    # failed on an earlier day are redelivered before
                    # anything else happens today.
                    data.server.set_day(day)
                    data.server.redeliver_pending()
                # Phase 1 (device-local): one task and one pre-drawn seed
                # per active device-day, in participant order — the
                # historical RNG order the seeds contract requires.
                active = [
                    (index, participant)
                    for index, participant in enumerate(data.participants)
                    if participant.active_on(day)
                ]
                seeds = draw_seeds(rng, len(active))
                tasks = [
                    DeviceDayTask(
                        index=index,
                        device=participant.device.day_view(day_start),
                        app_state=participant.app.snapshot_state(),
                        persona=participant.persona,
                        favorites=engine.favorites_for(participant.device.device_id),
                        pending=engine.pending_for(participant.device.device_id),
                        reviewed=engine.reviewed_mirror(participant.device),
                        needs_sign_in=participant.app.install_id is None,
                        final_day=day
                        == participant.enrolled_day + participant.active_days - 1,
                    )
                    for index, participant in active
                ]
                results = _fan_out_day(
                    day_start, tasks, seeds, data.board.freeze(), params, resolved_jobs
                )

                # Fold device-local deltas back (submission order).
                for result in results:
                    participant = data.participants[result.index]
                    participant.device.absorb_day(result.device)
                    participant.app.adopt_state(result.app_state)
                    engine.set_pending(result.device_id, result.pending)
                    engine.set_reviewed_mirror(result.device_id, result.reviewed)
                    if track_events:
                        event_counters[participant.persona.kind].inc(
                            len(result.device.events)
                        )
                        device_days_counter.inc()

                # Phase 2 (global commit) in (device_id, seq) order, then
                # rank tracking over the committed delivery totals.
                commit_day(
                    results,
                    board=data.board,
                    review_store=data.review_store,
                    server=data.server,
                )
                if faultable and day == config.study_days - 1:
                    # Study close: deliver every still-parked chunk with
                    # injection off *before* the final crawl rounds, so
                    # late-tracked apps still get their first crawl and
                    # the crawled corpus matches the clean run.
                    data.server.drain_redelivery()
                data.rank_tracker.record_day(day, boosts=_promo_boosts(data.board))
                # §5: the review crawler runs every 12 hours.
                data.review_crawler.crawl_round()
                data.review_crawler.crawl_round()
            if track_events:
                days_counter.inc()

    return data


def _fan_out_day(
    day_start: float,
    tasks: list[DeviceDayTask],
    seeds: list[int],
    frozen_board,
    params,
    n_jobs: int,
) -> list:
    """Run phase 1 over contiguous device shards; order-stable results.

    Shard boundaries cannot affect the outcome — each device-day is a
    pure function of its (task, seed, frozen board, params) — so the
    flattened submission-order list is identical at any worker count.
    """
    if not tasks:
        return []
    n_shards = max(1, min(n_jobs, len(tasks)))
    base, extra = divmod(len(tasks), n_shards)
    shard_args = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        shard_args.append(
            (
                day_start,
                tuple(tasks[start : start + size]),
                tuple(seeds[start : start + size]),
                frozen_board,
                params,
            )
        )
        start += size
    shards = parallel_map(run_day_shard, shard_args, n_jobs=n_jobs)
    return [result for shard in shards for result in shard]


def _promo_boosts(board: CampaignBoard) -> dict[str, tuple[int, int]]:
    """Cumulative (installs, reviews) delivered per promoted package."""
    boosts: dict[str, tuple[int, int]] = {}
    for campaign in board.campaigns():
        installs, reviews = boosts.get(campaign.app_package, (0, 0))
        boosts[campaign.app_package] = (
            installs + campaign.delivered_installs,
            reviews + campaign.delivered_reviews,
        )
    return boosts


def _enroll_cohort(
    data: StudyData,
    engine: BehaviorEngine,
    factory: AccountFactory,
    rng: np.random.Generator,
) -> None:
    """Enroll workers, regulars, dropouts, and Appendix-A repeat installs."""
    config = data.config
    n_organic = int(round(config.n_worker_devices * config.organic_worker_fraction))
    # Organic workers span a wide intensity range — from novices hiding a
    # trickle of ASO work to heavy moonlighters (§8.2's Fig 15 continuum).
    worker_personas = [
        organic_worker(intensity=float(np.clip(rng.lognormal(0.0, 0.65), 0.08, 3.0)))
        for _ in range(n_organic)
    ] + [dedicated_worker()] * (config.n_worker_devices - n_organic)
    for persona in worker_personas:
        _enroll(
            data, engine, factory, rng, persona,
            active_days=int(rng.integers(2, config.study_days + 1)) if rng.random() < 0.35 else config.study_days,
        )
    for _ in range(config.n_regular_devices):
        _enroll(
            data, engine, factory, rng, regular_user(),
            active_days=int(rng.integers(2, config.study_days + 1)) if rng.random() < 0.35 else config.study_days,
        )
    # Dropouts: devices that keep RacketStore for under two days and get
    # filtered out of the classifier cohorts (§7.2).
    for i in range(config.n_dropout_devices):
        persona = organic_worker() if i % 2 == 0 else regular_user()
        _enroll(data, engine, factory, rng, persona, active_days=1)

    # Repeat installs (Appendix A): some workers uninstall and reinstall
    # under a fresh participant identity to collect the $1 install
    # payment twice.  The snapshot-fingerprinting procedure must coalesce
    # these install pairs back into single devices.
    n_repeat = max(2, config.n_worker_devices // 25)
    repeaters = [
        p
        for p in data.participants
        if p.is_worker and not p.is_dropout
        and p.enrolled_day + p.active_days + 2 <= config.study_days
    ]
    if len(repeaters) < n_repeat:
        # Not enough naturally short stays: truncate a few full-stay
        # workers so their device frees up for the repeat install.
        repeater_ids = {p.participant_id for p in repeaters}
        for participant in data.participants:
            if len(repeaters) >= n_repeat:
                break
            if (
                participant.is_worker
                and participant.participant_id not in repeater_ids
                and participant.active_days >= 4
                and participant.enrolled_day == 0
            ):
                participant.active_days = max(2, config.study_days - 3)
                if participant.enrolled_day + participant.active_days + 2 <= config.study_days:
                    repeaters.append(participant)
                    repeater_ids.add(participant.participant_id)
    rng.shuffle(repeaters)
    for original in repeaters[:n_repeat]:
        # Short repeat installs: they earn the bounty, get coalesced by
        # Appendix A, and (being < 2 days) stay out of the classifier
        # cohorts, like the paper's filtered repeat installs.
        _enroll(
            data,
            engine,
            factory,
            rng,
            original.persona,
            active_days=1,
            enrolled_day=original.enrolled_day + original.active_days + 1,
            device=original.device,
        )
