"""Analysis engine: parse modules, run rules, apply suppressions.

Since PR 7 the engine runs **two phases** (DESIGN.md §10):

1. **Index** — every file is parsed once into a
   :class:`ModuleContext` (import alias table, suppression tables,
   dotted module name).  Files that fail to parse become ``SYNTAX``
   findings and drop out of the later phases.
2. **Check** — the per-file rules run over each indexed module
   (optionally fanned out across worker processes via
   :mod:`repro.parallel`, findings collected in submission order so the
   report is byte-identical at any worker count), then the project
   rules run once against the shared
   :class:`~repro.statan.project.ProjectContext` (symbol table, call
   graph, extracted schemas).

Suppression comments work identically for both kinds of rule:

* ``# statan: disable=RULE1,RULE2`` on the flagged line suppresses
  those rules for that line only;
* ``# statan: disable-file=RULE1`` anywhere in the file suppresses the
  rules for the whole file;
* the rule list may be ``ALL``.

Findings come back fingerprinted (see :mod:`repro.statan.findings`) so
the baseline layer can match them across line-number drift.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from .findings import SEVERITY_ERROR, Finding, assign_fingerprints
from .rules import Rule, all_project_rules, all_rules
from .symbols import module_name_for

__all__ = [
    "ModuleContext",
    "analyze_source",
    "analyze_paths",
    "analyze_tree",
    "index_paths",
    "iter_python_files",
    "collect_suppressions",
]

#: Pseudo-rule id attached to files that fail to parse.
SYNTAX_RULE = "SYNTAX"

_DISABLE_RE = re.compile(
    r"#\s*statan:\s*disable(?P<scope>-file)?\s*=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def collect_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Return (line -> suppressed rule ids, file-wide rule ids)."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        if match.group("scope"):
            per_file |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return per_line, per_file


def _collect_imports(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted modules/objects they refer to.

    Relative imports are normalised by dropping the leading dots, so
    ``from .. import obs`` maps ``obs`` to ``obs`` and rules match on
    dotted-name *tails*.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # `import numpy.random` binds only the root name.
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                dotted = f"{base}.{alias.name}" if base else alias.name
                table[alias.asname or alias.name] = dotted
    return table


class ModuleContext:
    """Everything a rule needs to analyse one module."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.segments = PurePosixPath(path).parts
        self.imports = _collect_imports(tree)
        self.module = module_name_for(path)
        self.suppressions = collect_suppressions(source)
        #: Absolute source path, set by index_paths (worker re-reads).
        self.source_file = path

    # -- helpers rules lean on ------------------------------------------------
    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of a Name/Attribute chain with aliases expanded,
        or None when the chain roots in a local (unimported) name."""
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def in_package(self, names: Iterable[str]) -> bool:
        wanted = set(names)
        return any(segment in wanted for segment in self.segments)


def matches_tail(resolved: str | None, tail: str) -> bool:
    """True when ``resolved`` is ``tail`` or ends with ``.tail`` on a
    segment boundary (``repro.obs.configure`` matches ``obs.configure``,
    ``myobs.configure`` does not)."""
    if resolved is None:
        return False
    return resolved == tail or resolved.endswith("." + tail)


def _load_rule_modules() -> None:
    # Rules register on import; deferred to avoid cycles at module load.
    from . import checks, project_checks, schema_checks  # noqa: F401


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule=SYNTAX_RULE,
        severity=SEVERITY_ERROR,
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
    )


def _check_module(ctx: ModuleContext, rules: Sequence[Rule]) -> list[Finding]:
    """Run per-file rules over one parsed module, suppressions applied.
    Findings are *not* fingerprinted here (callers batch that)."""
    per_line, per_file = ctx.suppressions
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if finding.rule in per_file or "ALL" in per_file:
                continue
            line_rules = per_line.get(finding.line, set())
            if finding.rule in line_rules or "ALL" in line_rules:
                continue
            findings.append(finding)
    return findings


def analyze_source(
    source: str,
    path: str = "<snippet>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyse one module's source with the per-file rules; returns
    fingerprinted findings with suppressions already applied."""
    _load_rule_modules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return assign_fingerprints([_syntax_finding(path, exc)])
    ctx = ModuleContext(path, source, tree)
    findings = _check_module(ctx, rules if rules is not None else all_rules())
    return assign_fingerprints(findings)


def iter_python_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """Expand files/directories into (absolute file, relative label)
    pairs.  Directory trees are walked in sorted order so reports and
    fingerprints are independent of filesystem enumeration order."""
    out: list[tuple[Path, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for file in sorted(root.rglob("*.py")):
                out.append((file, file.relative_to(root).as_posix()))
        else:
            out.append((root, root.name))
    return out


def index_paths(
    pairs: Sequence[tuple[Path, str]],
) -> tuple[list[ModuleContext], list[Finding]]:
    """Phase one: parse every file once.  Returns the indexed modules
    and the (unfingerprinted) SYNTAX findings for files that failed."""
    modules: list[ModuleContext] = []
    syntax: list[Finding] = []
    for file, label in pairs:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            syntax.append(_syntax_finding(label, exc))
            continue
        ctx = ModuleContext(label, source, tree)
        ctx.source_file = str(file)
        modules.append(ctx)
    return modules, syntax


def _lint_chunk(chunk: tuple[tuple[str, str], ...]) -> list[Finding]:
    """Per-file worker job: re-read and check a chunk of files.

    Module-level (picklable) and seed-free by construction — the rules
    are pure functions of the source text, so chunk results concatenated
    in submission order equal the serial pass byte for byte.
    """
    findings: list[Finding] = []
    for file, label in chunk:
        findings.extend(
            analyze_source(Path(file).read_text(encoding="utf-8"), path=label)
        )
    return findings


def _per_file_findings(
    modules: list[ModuleContext], n_jobs: int | None
) -> list[Finding]:
    """Phase two (per-file): serial over the already-parsed modules, or
    fanned out in chunks through :mod:`repro.parallel` with
    deterministic (submission-order) collection."""
    resolved = 1
    if n_jobs is None or n_jobs != 1:
        from ..parallel import resolve_n_jobs

        resolved = resolve_n_jobs(n_jobs)
    if resolved > 1 and len(modules) >= 2:
        from ..parallel import parallel_map

        # Chunk to amortise pickling; chunk count is a pure function of
        # the file and worker counts, so output order never varies.
        n_chunks = min(len(modules), resolved * 4)
        chunks: list[list[tuple[str, str]]] = [[] for _ in range(n_chunks)]
        for i, ctx in enumerate(modules):
            chunks[i % n_chunks].append((ctx.source_file, ctx.path))
        results = parallel_map(
            _lint_chunk,
            [(tuple(chunk),) for chunk in chunks if chunk],
            n_jobs=resolved,
        )
        findings: list[Finding] = []
        for chunk_findings in results:
            findings.extend(chunk_findings)
        return findings
    findings = []
    for ctx in modules:
        findings.extend(assign_fingerprints(_check_module(ctx, all_rules())))
    return findings


def analyze_project(modules: list[ModuleContext]) -> tuple[list[Finding], dict]:
    """Phase two (whole-program): run every project rule against the
    shared ProjectContext; returns (fingerprinted findings, stats)."""
    _load_rule_modules()
    from .project import ProjectContext

    project = ProjectContext(modules)
    findings: list[Finding] = []
    for rule in all_project_rules():
        for finding in rule.check_project(project):
            if not project.is_suppressed(finding):
                findings.append(finding)
    return assign_fingerprints(findings), project.stats()


def analyze_tree(
    paths: Sequence[str | Path],
    *,
    n_jobs: int | None = None,
    per_file_labels: set[str] | None = None,
    project: bool = True,
) -> tuple[list[Finding], dict]:
    """Full two-phase analysis of every ``*.py`` under ``paths``.

    ``per_file_labels`` (``lint --changed``) restricts the per-file
    rules to that subset of file labels; the project pass always indexes
    and checks the whole tree, since call graphs and schema bindings
    cross file boundaries.  Returns findings sorted by
    (path, line, col, rule) plus project stats for the reporters.
    """
    _load_rule_modules()
    pairs = iter_python_files(paths)
    modules, syntax = index_paths(pairs)

    scope = modules
    if per_file_labels is not None:
        scope = [ctx for ctx in modules if ctx.path in per_file_labels]

    findings = assign_fingerprints(syntax)
    findings.extend(_per_file_findings(scope, n_jobs))

    stats = {
        "files": len(pairs),
        "files_checked_per_file": len(scope),
    }
    if project and modules:
        project_findings, project_stats = analyze_project(modules)
        findings.extend(project_findings)
        stats.update(project_stats)
    return sorted(findings, key=Finding.sort_key), stats


def analyze_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    *,
    n_jobs: int | None = None,
    project: bool = True,
) -> list[Finding]:
    """Analyse every ``*.py`` under ``paths``; findings are sorted by
    (path, line, col, rule).

    With an explicit ``rules`` sequence only those per-file rules run
    (no project pass) — the narrow mode unit tests use.  The default
    runs the full two-phase analysis.
    """
    if rules is not None:
        findings: list[Finding] = []
        for file, label in iter_python_files(paths):
            source = file.read_text(encoding="utf-8")
            findings.extend(analyze_source(source, path=label, rules=rules))
        return sorted(findings, key=Finding.sort_key)
    found, _stats = analyze_tree(
        paths, n_jobs=n_jobs, project=project
    )
    return found
