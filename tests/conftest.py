"""Shared fixtures: one small simulated study (and pipeline run) per
test session, reused by the simulation/core/analysis/integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetectionPipeline
from repro.core.observations import build_observations
from repro.simulation import SimulationConfig, run_study


@pytest.fixture(scope="session")
def small_config() -> SimulationConfig:
    return SimulationConfig.small()


@pytest.fixture(scope="session")
def study(small_config):
    """One small end-to-end study, shared across the whole session."""
    return run_study(small_config)


@pytest.fixture(scope="session")
def observations(study):
    return build_observations(study, study.eligible_participants(min_days=2))


@pytest.fixture(scope="session")
def pipeline_result(study):
    """One small pipeline run (5-fold CV), shared across the session."""
    return DetectionPipeline(n_splits=5).run(study)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def blobs(rng):
    """Two well-separated Gaussian blobs for classifier sanity tests."""
    n = 150
    X = np.vstack(
        [rng.normal(0.0, 1.0, (n, 4)), rng.normal(2.5, 1.0, (n, 4))]
    )
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    order = rng.permutation(2 * n)
    return X[order], y[order]
