"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from .findings import Finding

__all__ = ["LintResult", "render_text", "render_json"]


class LintResult:
    """What one lint run produced, pre-split against the baseline."""

    def __init__(
        self,
        new: list[Finding],
        baselined: list[Finding],
        stale: list[dict],
        files_checked: int,
    ) -> None:
        self.new = new
        self.baselined = baselined
        self.stale = stale
        self.files_checked = files_checked

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def render_text(result: LintResult, verbose_baseline: bool = False) -> str:
    lines: list[str] = []
    for finding in result.new:
        lines.append(finding.format_text())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose_baseline:
        for finding in result.baselined:
            lines.append(f"{finding.format_text()}  (baselined)")
    if lines:
        lines.append("")
    counts: dict[str, int] = {}
    for finding in result.new:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    by_rule = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
    summary = (
        f"checked {result.files_checked} files: "
        f"{len(result.new)} new finding(s)"
        + (f" ({by_rule})" if by_rule else "")
        + f", {len(result.baselined)} baselined"
    )
    if result.stale:
        summary += f", {len(result.stale)} stale baseline entr(y/ies)"
    lines.append(summary)
    if result.stale:
        lines.append("stale baseline entries (fixed findings — prune with --update-baseline):")
        for entry in result.stale:
            lines.append(f"    {entry['path']}: {entry['rule']}: {entry['snippet']}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "summary": {
            "new": len(result.new),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale),
        },
        "findings": (
            [dict(f.to_json(), baselined=False) for f in result.new]
            + [dict(f.to_json(), baselined=True) for f in result.baselined]
        ),
        "stale_baseline": result.stale,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
