"""Privacy-preserving on-device classification (§9).

The paper proposes shipping the pre-trained models inside a
pre-installed client (e.g. the Play Store app) so sensitive usage data
never leaves the device: features are computed locally and only a
boolean/aggregate *report* is emitted.  :class:`OnDeviceDetector`
implements that contract — its report type contains no account
identifiers, package names, or usage traces, and the raw feature
matrices are discarded after scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..playstore.catalog import Catalog
from ..virustotal.client import VirusTotalClient
from .app_classifier import AppClassifier
from .app_features import app_feature_vector
from .device_classifier import DeviceClassifier
from .device_features import device_feature_vector
from .observations import DeviceObservation

__all__ = ["OnDeviceReport", "OnDeviceDetector"]


@dataclass(frozen=True)
class OnDeviceReport:
    """The only thing that leaves the device.

    Deliberately excludes every raw observable: no package names, no
    account identifiers, no timestamps — just the aggregate verdict the
    app store needs for enforcement.
    """

    n_apps_scanned: int
    n_apps_flagged: int
    app_suspiciousness: float
    device_flagged: bool
    worker_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.app_suspiciousness <= 1.0:
            raise ValueError("suspiciousness must be a fraction")


class OnDeviceDetector:
    """Pre-trained models executing locally on one device's data."""

    def __init__(self, app_model: AppClassifier, device_model: DeviceClassifier) -> None:
        self._app_model = app_model
        self._device_model = device_model

    def scan(
        self,
        obs: DeviceObservation,
        catalog: Catalog,
        vt_client: VirusTotalClient | None = None,
    ) -> OnDeviceReport:
        """Compute features locally, score, and emit only the report."""
        packages = [
            a["package"]
            for a in obs.initial_apps
            if not a["preinstalled"]
            and a["package"] in catalog
            and catalog.get(a["package"]).on_play_store
        ]
        if packages:
            X = np.vstack(
                [
                    app_feature_vector(obs, package, catalog, vt_client)
                    for package in packages
                ]
            )
            flags = self._app_model.predict(X)
            n_flagged = int(np.sum(flags == 1))
            suspiciousness = n_flagged / len(packages)
        else:
            n_flagged = 0
            suspiciousness = 0.0

        x_device = device_feature_vector(obs, suspiciousness)
        proba = self._device_model.predict_proba(x_device)[0]
        classes = self._device_model._model.classes_
        worker_col = int(np.nonzero(classes == 1)[0][0]) if 1 in classes else 0
        p_worker = float(proba[worker_col])

        return OnDeviceReport(
            n_apps_scanned=len(packages),
            n_apps_flagged=n_flagged,
            app_suspiciousness=suspiciousness,
            device_flagged=p_worker >= 0.5,
            worker_probability=p_worker,
        )
