"""Calibration targets: every quantitative finding the paper reports.

This module is the single source of truth for the numbers in §4-§8 of
the paper.  The persona generators are parameterised against these
targets, the analysis benchmarks print "paper vs measured" rows from
them, and the integration tests assert that the simulated cohort lands
within tolerance of the calibrated quantities.

All values are transcribed directly from the paper text; section/figure
references are given inline.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperStat",
    "RECRUITMENT",
    "DATASET",
    "ACCOUNTS",
    "INSTALLED_APPS",
    "INSTALL_TO_REVIEW",
    "CHURN",
    "ENGAGEMENT",
    "MALWARE",
    "APP_CLASSIFIER",
    "DEVICE_CLASSIFIER",
    "SUSPICIOUSNESS",
]


@dataclass(frozen=True)
class PaperStat:
    """One reported statistic with its provenance."""

    name: str
    value: float
    source: str


class RECRUITMENT:
    """§4 recruitment funnel and cohort composition."""

    ADS_SHOWN = 136_022
    ADS_REACHED = 61_748
    ADS_CLICKED = 2_471
    REGULAR_EMAILED = 614
    REGULAR_INSTALLS = 233
    WORKER_INSTALLS = 672
    WORKER_UNIQUE_DEVICES_RAW = 549
    TOTAL_INSTALLS = 943
    UNIQUE_DEVICES = 803
    WORKER_DEVICES = 580
    REGULAR_DEVICES = 223
    WORKERS_RECRUITED = 587
    REGULARS_RECRUITED = 233
    FACEBOOK_GROUPS = 16
    FACEBOOK_GROUP_MEMBERS = 86_718
    AD_SPEND_USD = 79.23
    PAY_INSTALL_USD = 1.0
    PAY_PER_DAY_USD = 0.2
    COUNTRIES = {"PK": (364, 56), "IN": (57, 153), "BD": (143, 5), "US": (8, 2)}


class DATASET:
    """§5 dataset sizes."""

    SLOW_SNAPSHOTS = 592_045
    FAST_SNAPSHOTS = 57_770_204
    TOTAL_SNAPSHOTS = 58_362_249
    APPS_ON_DEVICES = 12_341
    PLAY_REVIEWS = 110_511_637
    WORKER_GMAIL_ACCOUNTS = 10_310
    WORKER_ACCOUNT_REVIEWS = 217_041
    FIRST_CRAWL_CAP = 100_000
    CRAWL_PERIOD_HOURS = 12
    DISTINCT_APK_HASHES = 18_079
    HASHES_WITH_VT_REPORT = 12_431
    UNIQUE_APP_IDS_HASHED = 9_911
    DEVICES_WITH_HASHES = 713


class ACCOUNTS:
    """§6.2 / Figure 5: registered accounts per device."""

    WORKER_GMAIL_MEAN = 28.87
    WORKER_GMAIL_MEDIAN = 21
    WORKER_GMAIL_SD = 29.37
    WORKER_GMAIL_MAX = 163
    WORKER_DEVICES_OVER_100_GMAIL = 13
    REGULAR_GMAIL_MEDIAN = 2
    REGULAR_GMAIL_SD = 1.66
    REGULAR_GMAIL_MAX = 10
    REGULAR_ACCOUNT_TYPES_MEAN = 6
    REGULAR_ACCOUNT_TYPES_MAX = 19
    REPORTING_REGULAR_DEVICES = 145
    REPORTING_WORKER_DEVICES = 390


class INSTALLED_APPS:
    """§6.3 / Figure 6: installed, reviewed, stopped apps."""

    REGULAR_INSTALLED_MEAN = 65.45
    WORKER_INSTALLED_MEAN = 77.56
    WORKER_REVIEWED_OF_INSTALLED_MEAN = 40.51
    REGULAR_REVIEWED_OF_INSTALLED_MEAN = 0.7
    WORKER_TOTAL_REVIEWS_MEAN = 208.91
    REGULAR_TOTAL_REVIEWS_MEAN = 1.91
    REGULAR_TOTAL_REVIEWS_MAX = 36
    WORKER_DEVICES_OVER_1000_REVIEWS = 11
    REPORTING_REGULAR_DEVICES = 143
    REPORTING_WORKER_DEVICES = 400
    # ANOVA on installed-app counts is the one *non*-significant test.
    INSTALLED_ANOVA_P = 0.301
    INSTALLED_KS_P = 0.008


class INSTALL_TO_REVIEW:
    """§6.3 / Figure 7: delay between app install and review."""

    WORKER_REVIEWS_WITH_INSTALL_TIME = 40_397
    WORKER_REVIEWS_WITHIN_1_DAY = 13_376
    WORKER_WAIT_MEAN_DAYS = 10.4
    WORKER_WAIT_MEDIAN_DAYS = 5.0
    WORKER_WAIT_SD_DAYS = 13.72
    WORKER_WAIT_MAX_DAYS = 574
    REGULAR_REVIEWS_WITH_INSTALL_TIME = 35
    REGULAR_REVIEWS_WITHIN_1_DAY = 4
    REGULAR_WAIT_MEAN_DAYS = 85.09
    REGULAR_WAIT_MEDIAN_DAYS = 21.92
    REGULAR_WAIT_SD_DAYS = 140.56
    REGULAR_WAIT_MAX_DAYS = 606.11


class CHURN:
    """§6.3 / Figure 9: daily install and uninstall events."""

    WORKER_DAILY_INSTALLS_MEAN = 15.94
    WORKER_DAILY_INSTALLS_MEDIAN = 6.41
    WORKER_DAILY_INSTALLS_SD = 27.37
    REGULAR_DAILY_INSTALLS_MEAN = 3.88
    REGULAR_DAILY_INSTALLS_MEDIAN = 2.0
    REGULAR_DAILY_INSTALLS_SD = 7.29
    WORKER_DAILY_UNINSTALLS_MEAN = 7.02
    WORKER_DAILY_UNINSTALLS_MEDIAN = 2.73
    WORKER_DAILY_UNINSTALLS_SD = 15.69
    REGULAR_DAILY_UNINSTALLS_MEAN = 3.29
    REGULAR_DAILY_UNINSTALLS_MEDIAN = 1.8
    REGULAR_DAILY_UNINSTALLS_SD = 6.87


class ENGAGEMENT:
    """§6.1 / Figure 4: snapshots per day."""

    REGULAR_SNAPSHOTS_PER_DAY_MEAN = 9_430.71
    REGULAR_SNAPSHOTS_PER_DAY_MEDIAN = 3_097.67
    REGULAR_SNAPSHOTS_PER_DAY_SD = 12_789.14
    REGULAR_SNAPSHOTS_PER_DAY_MAX = 63_452
    WORKER_SNAPSHOTS_PER_DAY_MEAN = 8_208.10
    WORKER_SNAPSHOTS_PER_DAY_MEDIAN = 3_669
    WORKER_SNAPSHOTS_PER_DAY_SD = 10_303.42
    DEVICES_OVER_100_PER_DAY = 529
    FAST_PERIOD_SECONDS = 5.0
    SLOW_PERIOD_SECONDS = 120.0


class MALWARE:
    """§6.4 / Figure 12: malware prevalence."""

    FLAGGED_APPS_MULTI_ENGINE = 177
    DEVICES_WITH_FLAGGED_APP = 183
    WORKER_DEVICES_WITH_FLAGGED = 122
    REGULAR_DEVICES_WITH_FLAGGED = 61
    FLAGGED_APPS_REVIEWED = 70
    FLAGGED_REVIEWED_BY_WORKERS = 64
    FLAGGED_REVIEWED_BY_REGULAR = 9
    HIGH_CONFIDENCE_FLAGS = 7
    AV_APPS_IN_PLAY = 250
    DEVICES_WITH_AV = 19
    AV_APPS_INSTALLED = 15


class APP_CLASSIFIER:
    """§7.2 / Table 1: app-usage classification."""

    HELD_OUT_WORKER_DEVICES = 38
    HELD_OUT_REGULAR_DEVICES = 37
    SUSPICIOUS_APPS = 1_041
    NON_SUSPICIOUS_APPS = 474
    SUSPICIOUS_INSTANCES = 2_994
    REGULAR_INSTANCES = 345
    MIN_WORKER_DEVICES_FOR_SUSPICIOUS = 5
    MIN_REVIEWS_FOR_REGULAR = 15_000
    CV_FOLDS = 10
    CV_REPEATS = 5
    KNN_K = 5
    TABLE1 = {
        "XGB": {"precision": 0.9978, "recall": 0.9967, "f1": 0.9972},
        "RF": {"precision": 0.9933, "recall": 0.9923, "f1": 0.9927},
        "LR": {"precision": 0.9922, "recall": 0.9900, "f1": 0.9911},
        "KNN": {"precision": 0.9688, "recall": 0.9688, "f1": 0.9688},
        "LVQ": {"precision": 0.9099, "recall": 0.9454, "f1": 0.9273},
    }
    XGB_F1_UNDERSAMPLE = 0.9876
    XGB_F1_OVERSAMPLE = 0.9922
    XGB_FPR_OVERSAMPLE = 0.0194
    AUC_FLOOR = 0.99
    KNN_AUC_UNDERSAMPLE = 0.90
    KNN_AUC_OVERSAMPLE = 0.92
    TOP_FEATURES = (
        "accounts_reviewed_during",
        "install_to_review_mean",
    )


class DEVICE_CLASSIFIER:
    """§8.2 / Table 2: device classification."""

    WORKER_DEVICES = 178
    REGULAR_DEVICES = 88
    MIN_DAYS_OF_SNAPSHOTS = 2
    CV_FOLDS = 10
    KNN_K = 5
    TABLE2 = {
        "XGB": {"precision": 0.9681, "recall": 0.9381, "f1": 0.9529},
        "RF": {"precision": 0.9395, "recall": 0.9606, "f1": 0.9499},
        "SVM": {"precision": 0.9664, "recall": 0.8903, "f1": 0.9268},
        "KNN": {"precision": 0.9429, "recall": 0.9058, "f1": 0.9240},
        "LVQ": {"precision": 0.9640, "recall": 0.8284, "f1": 0.8911},
    }
    XGB_AUC = 0.9455
    XGB_FPR = 0.0141
    XGB_RECALL_UNDERSAMPLE = 0.9297
    XGB_F1_UNDERSAMPLE = 0.9518
    XGB_AUC_UNDERSAMPLE = 0.9074
    XGB_F1_NO_SAMPLING = 0.9686
    XGB_AUC_NO_SAMPLING = 0.9083
    TOP_FEATURES = (
        "total_apps_reviewed",
        "app_suspiciousness",
        "stopped_apps",
        "reviews_per_account_mean",
    )


class SUSPICIOUSNESS:
    """§8.2 / Figure 15: organic vs promotion-dedicated worker devices."""

    WORKER_DEVICES_ANALYZED = 178
    ORGANIC_INDICATIVE = 123
    PROMOTION_ONLY = 55
    ORGANIC_FRACTION = 123 / 178  # = 69.1% quoted in the abstract/intro
    PROMOTION_ONLY_GMAIL_MEDIAN = 31
    PROMOTION_ONLY_GMAIL_MEAN = 37.18
    PROMOTION_ONLY_GMAIL_MAX = 114
    PROMOTION_ONLY_STOPPED_MEDIAN = 23
    PROMOTION_ONLY_STOPPED_MEAN = 66.23
