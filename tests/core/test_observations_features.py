"""Tests for device observations and the §7.1/§8.1 feature extractors."""

import math

import numpy as np
import pytest

from repro.core.app_features import (
    APP_FEATURE_NAMES,
    NEVER_REVIEWED_SENTINEL_DAYS,
    app_feature_vector,
    extract_app_features,
)
from repro.core.device_features import (
    DEVICE_FEATURE_NAMES,
    device_feature_vector,
    extract_device_features,
)
from repro.core.observations import build_observations


class TestObservations:
    def test_one_observation_per_eligible_participant(self, study, observations):
        assert len(observations) == len(study.eligible_participants(min_days=2))

    def test_google_ids_resolved_from_slow_snapshots(self, observations):
        reporting = [o for o in observations if o.reported_account_data and o.gmail_addresses]
        assert reporting
        for obs in reporting[:10]:
            assert len(obs.google_ids) == len(obs.gmail_addresses)

    def test_accounts_blank_when_permission_denied(self, observations):
        denied = [o for o in observations if not o.reported_account_data]
        for obs in denied:
            assert obs.reported_accounts == ()
            assert obs.n_gmail_accounts == 0

    def test_install_times_cover_initial_apps(self, observations):
        obs = observations[0]
        for app in obs.initial_apps:
            assert app["package"] in obs.install_times

    def test_install_to_review_never_negative(self, observations):
        for obs in observations[:15]:
            for package in obs.device_reviews:
                for delta in obs.install_to_review_days(package):
                    assert delta > 0

    def test_snapshot_counts_positive(self, observations):
        for obs in observations:
            assert obs.total_snapshots > 0
            assert obs.snapshots_per_day > 0

    def test_worker_devices_review_more(self, observations):
        worker = np.mean([o.total_account_reviews for o in observations if o.is_worker])
        regular = np.mean([o.total_account_reviews for o in observations if not o.is_worker])
        assert worker > regular * 10

    def test_preinstalled_counted(self, observations):
        for obs in observations[:10]:
            assert obs.n_preinstalled >= 10
            assert obs.n_installed_apps == obs.n_preinstalled + obs.n_user_installed

    def test_foreground_days_only_with_permission(self, observations):
        for obs in observations:
            has_fg = any(run["foreground"] for run in obs.fast_runs)
            if not any(run.get("usage_permission", True) for run in obs.fast_runs):
                assert not has_fg


class TestAppFeatures:
    def test_vector_matches_names(self, study, observations):
        obs = observations[0]
        package = obs.initial_apps[0]["package"]
        features = extract_app_features(obs, package, study.catalog, study.vt_client)
        assert set(features) == set(APP_FEATURE_NAMES)
        vector = app_feature_vector(obs, package, study.catalog, study.vt_client)
        assert vector.shape == (len(APP_FEATURE_NAMES),)

    def test_never_reviewed_sentinel(self, study, observations):
        for obs in observations:
            unreviewed = [
                a["package"]
                for a in obs.initial_apps
                if a["package"] not in obs.device_reviews
            ]
            if unreviewed:
                features = extract_app_features(obs, unreviewed[0], study.catalog)
                assert features["install_to_review_mean_days"] == NEVER_REVIEWED_SENTINEL_DAYS
                assert features["accounts_reviewed_total"] == 0.0
                break
        else:
            pytest.fail("no unreviewed app found")

    def test_reviewed_app_has_finite_delay(self, study, observations):
        for obs in observations:
            if not obs.is_worker:
                continue
            for package in obs.device_reviews:
                if obs.install_to_review_days(package):
                    features = extract_app_features(obs, package, study.catalog)
                    assert features["install_to_review_mean_days"] < NEVER_REVIEWED_SENTINEL_DAYS
                    assert features["accounts_reviewed_total"] >= 1
                    return
        pytest.fail("no reviewed installed app found on worker devices")

    def test_unknown_package_features_still_valid(self, study, observations):
        obs = observations[0]
        features = extract_app_features(obs, "com.never.installed", study.catalog)
        assert features["inner_retention_days"] != features["inner_retention_days"]  # NaN
        assert features["n_install_events"] == 0.0

    def test_promo_apps_separable_from_personal(self, study, observations):
        """The core claim: promotion instances differ on review features."""
        promo_totals, personal_totals = [], []
        for obs in observations:
            truth = {
                rec.package: rec.promo_install
                for rec in obs.participant.device.installed.values()
            }
            for app in obs.initial_apps[:30]:
                package = app["package"]
                if app["preinstalled"] or package not in truth:
                    continue
                features = extract_app_features(obs, package, study.catalog)
                target = promo_totals if truth[package] else personal_totals
                target.append(features["accounts_reviewed_total"])
        assert np.mean(promo_totals) > np.mean(personal_totals) + 0.5


class TestDeviceFeatures:
    def test_vector_matches_names(self, observations):
        obs = observations[0]
        features = extract_device_features(obs, app_suspiciousness=0.5)
        assert set(features) == set(DEVICE_FEATURE_NAMES)
        assert device_feature_vector(obs, 0.5).shape == (len(DEVICE_FEATURE_NAMES),)

    def test_suspiciousness_nan_when_missing(self, observations):
        features = extract_device_features(observations[0], None)
        assert math.isnan(features["app_suspiciousness"])

    def test_workers_dominate_review_features(self, observations):
        def mean_feature(name, worker):
            values = [
                extract_device_features(o)[name]
                for o in observations
                if o.is_worker == worker
            ]
            return np.mean(values)

        assert mean_feature("total_reviews", True) > mean_feature("total_reviews", False) * 5
        assert mean_feature("n_stopped_apps", True) > mean_feature("n_stopped_apps", False)
        assert mean_feature("n_gmail_accounts", True) > mean_feature("n_gmail_accounts", False)


class TestTruncation:
    def test_truncated_limits_active_days(self, observations):
        obs = observations[0]
        clipped = obs.truncated(1.0)
        assert clipped.active_days == 1
        assert obs.active_days >= clipped.active_days

    def test_truncated_runs_within_cutoff(self, observations):
        obs = max(observations, key=lambda o: o.active_days)
        clipped = obs.truncated(2.0)
        cutoff = obs.installed_at + 2.0 * 86_400.0
        for run in clipped.fast_runs + clipped.slow_runs:
            assert run["start"] < cutoff
            assert run["end"] <= cutoff
        for event in clipped.app_changes:
            assert event["timestamp"] < cutoff

    def test_truncated_preserves_reviews(self, observations):
        obs = observations[0]
        clipped = obs.truncated(1.0)
        assert clipped.device_reviews == obs.device_reviews
        assert clipped.google_ids == obs.google_ids

    def test_truncation_reduces_snapshots(self, observations):
        obs = max(observations, key=lambda o: o.active_days)
        if obs.active_days < 3:
            pytest.skip("no long-running device in this cohort")
        clipped = obs.truncated(1.0)
        assert clipped.total_snapshots < obs.total_snapshots

    def test_original_untouched(self, observations):
        obs = observations[0]
        before = obs.total_snapshots
        obs.truncated(1.0)
        assert obs.total_snapshots == before
