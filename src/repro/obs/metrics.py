"""Dependency-free metrics primitives: counters, gauges, histograms.

The registry mirrors the Prometheus data model — a metric *family* is a
name plus a type and help string; each (name, label-set) pair owns one
time series.  Two export formats are supported: the Prometheus text
exposition format (``render_prometheus``) and a JSON document
(``to_json``) that benches archive as ``BENCH_*.json`` perf
trajectories.

Everything here is plain Python with no locks: the reproduction is
single-threaded, and the hot-path cost of an increment is one attribute
add.  A :class:`NullRegistry` (the process-wide default — see
``repro.obs.configure``) turns every operation into a no-op so that
instrumented code costs nothing when observability is off.
"""

from __future__ import annotations

import time
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DEFAULT_BUCKETS",
    "parse_prometheus",
]

# Prometheus' classic latency buckets (seconds), plus +Inf implicitly.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str] | None) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelPairs, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count (events, records, bytes)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Instantaneous value that can go up and down (queue depths)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed distribution (latencies, batch sizes).

    ``buckets`` are the finite upper bounds; an implicit +Inf bucket
    catches the tail.  Counts are stored per-bucket (non-cumulative) and
    rendered cumulatively, Prometheus style.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """[(upper_bound, cumulative_count), ...] ending with +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self._counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        running = 0
        lower = 0.0
        for bound, n in zip(self.buckets, self._counts):
            if running + n >= target:
                if n == 0:
                    return bound
                frac = (target - running) / n
                return lower + frac * (bound - lower)
            running += n
            lower = bound
        return self.buckets[-1]


class Timer:
    """Context manager measuring one wall-clock duration.

    ``repro.obs`` owns every ``time.perf_counter`` read in the codebase
    (statan rule DET002); instrumented code times a block with
    ``with obs.timer(histogram): ...`` instead of touching the clock.
    The elapsed duration is observed into ``histogram`` (when given) on
    exit — including early returns and exceptions — and stays available
    as ``.elapsed`` for callers that also want the raw number.
    """

    __slots__ = ("histogram", "elapsed", "_started")

    def __init__(self, histogram: "Histogram | None" = None) -> None:
        self.histogram = histogram
        self.elapsed = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._started
        if self.histogram is not None:
            self.histogram.observe(self.elapsed)


class MetricsRegistry:
    """Named collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with the same name + labels return the same series, so
    instrumented code never needs module-level metric globals.
    """

    def __init__(self) -> None:
        # family name -> (kind, help)
        self._families: dict[str, tuple[str, str]] = {}
        # (family name, label key) -> metric instance
        self._series: dict[tuple[str, LabelPairs], object] = {}

    # -- get-or-create ---------------------------------------------------
    def _get(self, kind: str, cls, name: str, labels: dict[str, str] | None,
             help: str, **kwargs):
        family = self._families.get(name)
        if family is None:
            self._families[name] = (kind, help)
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family[0]}, not a {kind}"
            )
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(name, key[1], **kwargs)
            self._series[key] = series
        return series

    def counter(self, name: str, labels: dict[str, str] | None = None,
                help: str = "") -> Counter:
        return self._get("counter", Counter, name, labels, help)

    def gauge(self, name: str, labels: dict[str, str] | None = None,
              help: str = "") -> Gauge:
        return self._get("gauge", Gauge, name, labels, help)

    def histogram(self, name: str, labels: dict[str, str] | None = None,
                  help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get("histogram", Histogram, name, labels, help,
                         buckets=buckets)

    # -- queries ---------------------------------------------------------
    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        """Current value of a counter/gauge series (0.0 when absent)."""
        series = self._series.get((name, _label_key(labels)))
        if series is None:
            return 0.0
        return series.value  # type: ignore[union-attr]

    def series(self, name: str) -> list[object]:
        """Every series of one family, label-sorted."""
        return [m for (n, _), m in sorted(self._series.items()) if n == name]

    def families(self) -> dict[str, str]:
        """family name -> kind."""
        return {name: kind for name, (kind, _) in self._families.items()}

    # -- worker round-trip -----------------------------------------------
    def snapshot(self) -> dict:
        """Picklable dump of every series, for cross-process merging.

        Parallel workers (``repro.parallel``) collect metrics into a
        private registry, snapshot it, and ship the snapshot back so the
        parent can :meth:`merge` it — per-fold timings survive the
        process boundary.  Series are emitted in sorted order so the
        merge sequence is deterministic.
        """
        series: list[tuple[str, LabelPairs, dict]] = []
        for (name, labels), metric in sorted(self._series.items()):
            if isinstance(metric, Histogram):
                state = {
                    "kind": "histogram",
                    "buckets": metric.buckets,
                    "counts": list(metric._counts),
                    "sum": metric._sum,
                    "count": metric._count,
                }
            elif isinstance(metric, Counter):
                state = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                state = {"kind": "gauge", "value": metric.value}
            else:  # pragma: no cover - registry only creates the above
                continue
            series.append((name, labels, state))
        return {"families": dict(self._families), "series": series}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add, histograms add per-bucket, gauges take the
        snapshot's value (last write wins — gauges are instantaneous).
        """
        families = snapshot.get("families", {})
        for name, labels, state in snapshot.get("series", ()):
            _kind, help_text = families.get(name, (state["kind"], ""))
            labels_dict = dict(labels)
            if state["kind"] == "counter":
                self.counter(name, labels_dict, help_text).inc(state["value"])
            elif state["kind"] == "gauge":
                self.gauge(name, labels_dict, help_text).set(state["value"])
            elif state["kind"] == "histogram":
                buckets = tuple(state["buckets"])
                hist = self.histogram(name, labels_dict, help_text, buckets=buckets)
                if hist.buckets != buckets:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket layout differs"
                    )
                for i, count in enumerate(state["counts"]):
                    hist._counts[i] += count
                hist._sum += state["sum"]
                hist._count += state["count"]
            else:
                raise ValueError(f"unknown metric kind {state['kind']!r} in snapshot")

    # -- export ----------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serialisable snapshot of every series."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for (name, labels), metric in sorted(self._series.items()):
            key = name + _render_labels(labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            elif isinstance(metric, Histogram):
                histograms[key] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean,
                    "p50": metric.quantile(0.5),
                    "p95": metric.quantile(0.95),
                    "buckets": {
                        ("+Inf" if bound == float("inf") else repr(bound)): n
                        for bound, n in metric.cumulative_buckets()
                    },
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            kind, help_text = self._families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for metric in self.series(name):
                labels = metric.labels  # type: ignore[union-attr]
                if isinstance(metric, (Counter, Gauge)):
                    lines.append(f"{name}{_render_labels(labels)} {_fmt(metric.value)}")
                elif isinstance(metric, Histogram):
                    for bound, n in metric.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        lines.append(
                            f"{name}_bucket{_render_labels(labels, (('le', le),))} {n}"
                        )
                    lines.append(f"{name}_sum{_render_labels(labels)} {_fmt(metric.sum)}")
                    lines.append(f"{name}_count{_render_labels(labels)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition-format samples back to ``{sample_name: value}``.

    Supports exactly what ``render_prometheus`` emits (the round-trip is
    unit-tested); sample names keep their label braces verbatim.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float("inf") if value == "+Inf" else float(value)
    return samples


# -- the zero-overhead disabled path ------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:  # noqa: ARG002
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """Registry whose series discard every write — the global default."""

    def snapshot(self) -> dict:
        return {"families": {}, "series": []}

    def merge(self, snapshot: dict) -> None:  # noqa: ARG002
        # Merging into the no-op registry must not mutate the shared
        # NULL_* singletons its getters hand out.
        pass

    def counter(self, name: str, labels: dict[str, str] | None = None,
                help: str = "") -> Counter:  # noqa: ARG002
        return NULL_COUNTER

    def gauge(self, name: str, labels: dict[str, str] | None = None,
              help: str = "") -> Gauge:  # noqa: ARG002
        return NULL_GAUGE

    def histogram(self, name: str, labels: dict[str, str] | None = None,
                  help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:  # noqa: ARG002
        return NULL_HISTOGRAM
