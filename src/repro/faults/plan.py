"""Seeded fault plans for the device → transport → server → store path.

A :class:`FaultPlan` names one :class:`FaultSpec` per injection site.
Each spec carries a firing probability and an optional day window, and
every firing decision is drawn from an *injected* seeded
``numpy.random.Generator`` (statan DET001: no fallback Generators).
Fault randomness always comes from dedicated streams derived from the
study seed — never from the behaviour stream — so switching plans
changes *when* data arrives (retries, redeliveries, backoff) but never
*what* the simulated world contains.  That separation is what lets the
chaos harness assert ``study_digest`` byte-equality between a clean run
and an arbitrarily hostile plan.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = [
    "FAULT_STREAM_BACKOFF",
    "FAULT_STREAM_SERVER",
    "FAULT_STREAM_TRANSPORT",
    "FaultPlan",
    "FaultSpec",
]

#: Stream tags mixed into ``default_rng([seed, TAG])`` so each fault
#: consumer draws from its own seeded stream, independent of the
#: behaviour stream and of each other.
FAULT_STREAM_TRANSPORT = 0xFA017
FAULT_STREAM_BACKOFF = 0xBAC0FF
FAULT_STREAM_SERVER = 0x5E4FE4


@dataclass(frozen=True)
class FaultSpec:
    """One injection site: firing probability plus an optional day window.

    ``days=None`` means the site is armed on every study day;
    ``days=(1, 2)`` schedules e.g. an overload window.  A probability of
    ``1.0`` fires without consuming a draw, so scheduled deterministic
    faults do not shift the fault stream for other sites.
    """

    probability: float = 0.0
    days: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.days is not None:
            object.__setattr__(self, "days", tuple(int(d) for d in self.days))

    @property
    def enabled(self) -> bool:
        return self.probability > 0.0

    def active_on(self, day: int) -> bool:
        return self.days is None or day in self.days

    def fires(self, rng: np.random.Generator, day: int) -> bool:
        """One seeded firing decision for ``day``.

        The Generator is required: a hidden fallback would correlate
        every site and break cross-plan byte-identity (DET001 — the
        statan injection gate pins this signature).
        """
        if rng is None:
            raise ValueError("FaultSpec.fires requires an explicit rng")
        if not self.enabled or not self.active_on(day):
            return False
        if self.probability >= 1.0:
            return True
        return float(rng.random()) < self.probability


@dataclass(frozen=True)
class FaultPlan:
    """Per-site fault specs for one study run (all sites default off).

    Client-observed sites (drawn on the transport stream):

    * ``transport_loss`` — the chunk vanishes in transit; no ack.
    * ``transport_corruption`` — damaged bytes reach the server, which
      counts a malformed chunk and acks the wrong hash.
    * ``ack_loss`` — the server durably stores the chunk but the ack is
      lost on the way back: the classic duplicate-delivery fault the
      dedup window absorbs.

    Server sites (drawn on the server stream):

    * ``receive_crash`` — the server dies mid-chunk after inserting a
      prefix of the records; atomic commit rolls the prefix back.
    * ``store_reject`` — the document store refuses the write.
    * ``overload`` — 429 windows; the client's circuit breaker honours
      ``overload_retry_after_s``.

    ``retry_budget`` bounds client attempts per chunk before
    dead-lettering (0 = unlimited); ``dedup_window`` sizes the server's
    idempotent-receive memory.
    """

    transport_loss: FaultSpec = FaultSpec()
    transport_corruption: FaultSpec = FaultSpec()
    ack_loss: FaultSpec = FaultSpec()
    receive_crash: FaultSpec = FaultSpec()
    store_reject: FaultSpec = FaultSpec()
    overload: FaultSpec = FaultSpec()
    overload_retry_after_s: float = 900.0
    retry_budget: int = 64
    dedup_window: int = 4096

    def __post_init__(self) -> None:
        if self.overload_retry_after_s <= 0:
            raise ValueError("overload_retry_after_s must be positive")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.dedup_window < 1:
            raise ValueError("dedup_window must be >= 1")

    def _sites(self) -> list[tuple[str, FaultSpec]]:
        return [
            (spec_field.name, getattr(self, spec_field.name))
            for spec_field in fields(self)
            if spec_field.type == "FaultSpec"
        ]

    @property
    def any_enabled(self) -> bool:
        return any(spec.enabled for _name, spec in self._sites())

    def describe(self) -> str:
        """Compact one-line summary, e.g. ``loss=0.2 ack_loss=0.25``."""
        parts = []
        for name, spec in self._sites():
            if not spec.enabled:
                continue
            label = f"{name}={spec.probability:g}"
            if spec.days is not None:
                label += f"@days{spec.days}"
            parts.append(label)
        return " ".join(parts) if parts else "clean"
