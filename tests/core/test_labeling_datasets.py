"""Tests for §7.2 labeling rules and dataset assembly."""

import numpy as np
import pytest

from repro.core.datasets import build_app_dataset, build_device_dataset
from repro.core.labeling import LabelingConfig, label_apps, split_holdout


class TestHoldoutSplit:
    def test_fractions_respected(self, observations):
        config = LabelingConfig()
        holdout_w, holdout_r, remaining = split_holdout(observations, config)
        n_workers = sum(1 for o in observations if o.is_worker)
        n_regular = len(observations) - n_workers
        assert len(holdout_w) == pytest.approx(0.2 * n_workers, abs=1)
        assert len(holdout_r) == pytest.approx(0.42 * n_regular, abs=1)
        assert len(holdout_w) + len(holdout_r) + len(remaining) == len(observations)

    def test_deterministic_given_seed(self, observations):
        config = LabelingConfig(seed=3)
        a = split_holdout(observations, config)
        b = split_holdout(observations, config)
        assert [o.install_id for o in a[0]] == [o.install_id for o in b[0]]

    def test_groups_pure(self, observations):
        holdout_w, holdout_r, _ = split_holdout(observations, LabelingConfig())
        assert all(o.is_worker for o in holdout_w)
        assert not any(o.is_worker for o in holdout_r)


class TestLabelingRules:
    @pytest.fixture()
    def labeling(self, study, observations):
        return label_apps(study, observations)

    def test_suspicious_subset_of_advertised(self, study, labeling):
        assert labeling.suspicious_apps <= study.board.advertised_packages()

    def test_suspicious_and_regular_disjoint(self, labeling):
        assert not labeling.suspicious_apps & labeling.regular_apps

    def test_suspicious_coinstall_threshold(self, study, labeling):
        config_min = study.config.min_worker_devices_for_suspicious
        for package in labeling.suspicious_apps:
            count = sum(
                1 for obs in labeling.holdout_worker if package in obs.observed_packages
            )
            assert count >= config_min

    def test_suspicious_absent_from_holdout_regular(self, labeling):
        for obs in labeling.holdout_regular:
            assert not obs.observed_packages & labeling.suspicious_apps

    def test_regular_apps_never_on_worker_devices(self, study, observations, labeling):
        worker_packages = set()
        for obs in observations:
            if obs.is_worker:
                worker_packages.update(obs.observed_packages)
        assert not labeling.regular_apps & worker_packages

    def test_regular_apps_popular(self, study, labeling):
        for package in labeling.regular_apps:
            app = study.catalog.get(package)
            assert app.review_count >= study.config.popular_review_threshold

    def test_ground_truth_purity(self, study, labeling):
        """Labeled-suspicious apps should overwhelmingly be actual
        promoted apps (validity of the weak-label heuristic)."""
        promoted = study.board.advertised_packages()
        assert labeling.suspicious_apps <= promoted
        assert len(labeling.suspicious_apps) >= 5
        assert len(labeling.regular_apps) >= 5


class TestDatasets:
    def test_app_dataset_shapes(self, study, observations):
        dataset = build_app_dataset(study, observations)
        assert dataset.X.shape[0] == len(dataset.y) == len(dataset.instances)
        assert dataset.X.shape[1] == len(dataset.feature_names)
        # Both classes populated (the paper's ~9:1 suspicious imbalance
        # only materialises at the default cohort scale; the bench
        # asserts it there).
        assert dataset.n_suspicious >= 10 and dataset.n_regular >= 10
        assert not np.isnan(dataset.X).any()  # imputed

    def test_app_instances_from_holdout_devices_only(self, study, observations):
        dataset = build_app_dataset(study, observations)
        holdout_ids = {
            o.install_id
            for o in dataset.labeling.holdout_worker + dataset.labeling.holdout_regular
        }
        assert {inst.install_id for inst in dataset.instances} <= holdout_ids

    def test_labels_match_device_class(self, study, observations):
        dataset = build_app_dataset(study, observations)
        for instance in dataset.instances:
            assert instance.label == int(instance.is_worker_device)

    def test_device_dataset_shapes(self, study, observations):
        dataset = build_device_dataset(study, observations)
        assert dataset.X.shape == (len(observations), len(dataset.feature_names))
        assert dataset.n_worker + dataset.n_regular == len(observations)

    def test_device_dataset_uses_suspiciousness(self, study, observations):
        scores = {o.install_id: 0.77 for o in observations}
        dataset = build_device_dataset(study, observations, scores, impute=False)
        column = dataset.feature_names.index("app_suspiciousness")
        np.testing.assert_allclose(dataset.X[:, column], 0.77)
