"""Learning Vector Quantization ("LVQ" in Tables 1 and 2).

Kohonen's LVQ1 with optional LVQ2.1-style window updates: a small
codebook of labelled prototypes is pulled toward same-class samples and
pushed away from other-class samples, with a linearly decaying learning
rate.  LVQ is the weakest algorithm in both of the paper's tables, which
this implementation reproduces.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_random_state, check_X_y

__all__ = ["LVQClassifier"]


class LVQClassifier(BaseEstimator, ClassifierMixin):
    """LVQ1 prototype classifier.

    Parameters
    ----------
    prototypes_per_class:
        Codebook size per class; prototypes are initialised on random
        same-class training samples.
    learning_rate:
        Initial step size, decayed linearly to zero over training.
    epochs:
        Passes over the (shuffled) training data.
    lvq2:
        If true, applies the LVQ2.1 update (move both nearest prototypes
        when they straddle the class boundary inside ``window``).
    """

    def __init__(
        self,
        prototypes_per_class: int = 4,
        learning_rate: float = 0.3,
        epochs: int = 30,
        lvq2: bool = False,
        window: float = 0.3,
        standardize: bool = True,
        random_state: int | None = None,
    ) -> None:
        self.prototypes_per_class = prototypes_per_class
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.lvq2 = lvq2
        self.window = window
        self.standardize = standardize
        self.random_state = random_state

    def fit(self, X, y) -> "LVQClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        rng = check_random_state(self.random_state)

        if self.standardize:
            self._mu = X.mean(axis=0)
            sigma = X.std(axis=0)
            sigma[sigma == 0.0] = 1.0
            self._sigma = sigma
        else:
            self._mu = np.zeros(X.shape[1])
            self._sigma = np.ones(X.shape[1])
        Z = (X - self._mu) / self._sigma

        prototypes, labels = [], []
        for class_index in range(len(self.classes_)):
            members = np.nonzero(encoded == class_index)[0]
            k = min(self.prototypes_per_class, members.size)
            chosen = rng.choice(members, size=k, replace=False)
            prototypes.append(Z[chosen])
            labels.extend([class_index] * k)
        self.prototypes_ = np.vstack(prototypes).astype(np.float64)
        self.prototype_labels_ = np.asarray(labels)

        n = Z.shape[0]
        total_steps = self.epochs * n
        step = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                rate = self.learning_rate * (1.0 - step / total_steps)
                step += 1
                x = Z[i]
                d2 = np.sum((self.prototypes_ - x) ** 2, axis=1)
                nearest = int(np.argmin(d2))
                if self.lvq2:
                    order = np.argsort(d2)
                    a, b = int(order[0]), int(order[1]) if order.size > 1 else (int(order[0]), int(order[0]))
                    la, lb = self.prototype_labels_[a], self.prototype_labels_[b]
                    da, db = np.sqrt(d2[a]) + 1e-12, np.sqrt(d2[b]) + 1e-12
                    in_window = min(da / db, db / da) > (1 - self.window) / (1 + self.window)
                    if la != lb and in_window and (la == encoded[i] or lb == encoded[i]):
                        correct, wrong = (a, b) if la == encoded[i] else (b, a)
                        self.prototypes_[correct] += rate * (x - self.prototypes_[correct])
                        self.prototypes_[wrong] -= rate * (x - self.prototypes_[wrong])
                        continue
                if self.prototype_labels_[nearest] == encoded[i]:
                    self.prototypes_[nearest] += rate * (x - self.prototypes_[nearest])
                else:
                    self.prototypes_[nearest] -= rate * (x - self.prototypes_[nearest])
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Soft scores from inverse distance to the nearest prototype of
        each class (sufficient for ranking/AUC)."""
        Z = (check_array(X) - self._mu) / self._sigma
        scores = np.zeros((Z.shape[0], len(self.classes_)), dtype=np.float64)
        d2 = (
            np.sum(Z**2, axis=1)[:, None]
            - 2.0 * Z @ self.prototypes_.T
            + np.sum(self.prototypes_**2, axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        for class_index in range(len(self.classes_)):
            mask = self.prototype_labels_ == class_index
            nearest = np.min(d2[:, mask], axis=1)
            scores[:, class_index] = 1.0 / (np.sqrt(nearest) + 1e-9)
        totals = scores.sum(axis=1, keepdims=True)
        return scores / totals
