"""Bench: Figure 7 install-to-review delay distributions."""

from repro.analysis import compute_install_to_review
from repro.experiments import run_experiment


def test_fig07_install_to_review(benchmark, workbench, emit):
    benchmark(compute_install_to_review, workbench.observations)
    report = emit(run_experiment("fig07", workbench))
    # Workers post far more install-time-joined reviews and much sooner.
    assert report.metrics["worker_n"] > 100 * report.metrics["regular_n"]
    assert report.metrics["worker_median"] < report.metrics["regular_median"]
    # ~1/3 of worker reviews land within a day (paper: 13,376/40,397).
    assert 0.2 <= report.metrics["worker_fast_fraction"] <= 0.55
    assert report.metrics["significant"] == 1.0
