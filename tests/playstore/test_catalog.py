"""Tests for the Play Store catalog and permission model."""

import numpy as np
import pytest

from repro.playstore.catalog import PREINSTALLED_PACKAGES, Catalog
from repro.playstore.permissions import (
    DANGEROUS_PERMISSIONS,
    NORMAL_PERMISSIONS,
    PermissionProfile,
    sample_permission_profile,
)


@pytest.fixture()
def catalog(rng):
    return Catalog(rng)


class TestCatalog:
    def test_preinstalled_registered_at_construction(self, catalog):
        assert len(catalog.preinstalled()) == len(PREINSTALLED_PACKAGES)
        assert "com.android.vending" in catalog

    def test_popular_apps_meet_review_threshold(self, catalog):
        for _ in range(50):
            app = catalog.add_popular_app()
            assert app.review_count >= 15_000
            assert app.on_play_store

    def test_promoted_apps_are_obscure(self, catalog):
        for _ in range(50):
            app = catalog.add_promoted_app()
            assert app.review_count < 15_000

    def test_promoted_malware_rate_controllable(self, catalog):
        clean = [catalog.add_promoted_app(malware_probability=0.0) for _ in range(30)]
        assert not any(a.is_malware for a in clean)
        dirty = [catalog.add_promoted_app(malware_probability=1.0) for _ in range(5)]
        assert all(a.is_malware for a in dirty)

    def test_third_party_apps_off_play(self, catalog):
        app = catalog.add_third_party_app()
        assert not app.on_play_store
        assert app not in catalog.hosted_on_play()

    def test_antivirus_category_join(self, catalog):
        for _ in range(4):
            catalog.add_antivirus_app()
        assert len(catalog.antivirus_apps()) == 4
        assert all(a.category == "ANTIVIRUS" for a in catalog.antivirus_apps())

    def test_unique_packages(self, catalog):
        apps = [catalog.add_popular_app() for _ in range(100)]
        assert len({a.package for a in apps}) == 100

    def test_apk_hashes_stable_and_distinct(self, catalog):
        a = catalog.add_popular_app()
        b = catalog.add_popular_app()
        assert a.current_apk_hash != b.current_apk_hash
        assert catalog.get(a.package).current_apk_hash == a.current_apk_hash

    def test_update_unknown_package_raises(self, catalog):
        app = catalog.add_popular_app()
        ghost = app.with_counts(1, 1, 1.0)
        object.__setattr__(ghost, "package", "com.ghost.app")
        with pytest.raises(KeyError):
            catalog.update(ghost)

    def test_with_counts_returns_new_app(self, catalog):
        app = catalog.add_popular_app()
        boosted = app.with_counts(app.install_count + 10, app.review_count + 5, 4.9)
        assert boosted is not app
        assert boosted.install_count == app.install_count + 10


class TestPermissions:
    def test_profile_counts(self):
        profile = PermissionProfile(
            normal=("android.permission.INTERNET",),
            dangerous=("android.permission.CAMERA", "android.permission.READ_SMS"),
        )
        assert profile.total == 3
        assert profile.n_dangerous == 2
        assert profile.dangerous_ratio == pytest.approx(2 / 3)

    def test_empty_profile(self):
        assert PermissionProfile().dangerous_ratio == 0.0

    def test_sampled_profiles_valid(self, rng):
        for _ in range(50):
            profile = sample_permission_profile(rng)
            assert set(profile.dangerous) <= set(DANGEROUS_PERMISSIONS)
            assert set(profile.normal) <= set(NORMAL_PERMISSIONS)
            assert len(set(profile.all_permissions())) == profile.total

    def test_aggressive_profiles_request_more_dangerous(self, rng):
        normal_mean = np.mean(
            [sample_permission_profile(rng).n_dangerous for _ in range(100)]
        )
        aggressive_mean = np.mean(
            [
                sample_permission_profile(rng, aggressive=True).n_dangerous
                for _ in range(100)
            ]
        )
        assert aggressive_mean > normal_mean + 2
