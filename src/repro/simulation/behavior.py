"""Behaviour engine: turns personas into concrete device histories.

Two phases per device:

* :meth:`BehaviorEngine.setup_device` builds the *pre-study* state —
  registered accounts, installed apps with historical install times,
  stopped apps, and the review history of every account (§6.2/§6.3 all
  measure state that mostly predates the RacketStore install);
* :meth:`BehaviorEngine.simulate_day` advances one study day — foreground
  sessions, app churn, promotion jobs pulled from the campaign board,
  and scheduled review postings with persona-calibrated install-to-
  review delays (Figure 7).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..playstore.catalog import App, Catalog
from ..playstore.reviews import ReviewStore
from .campaigns import CampaignBoard
from .clock import SECONDS_PER_DAY, hours
from .config import SimulationConfig
from .device import SimDevice
from .personas import Persona

__all__ = ["BehaviorEngine", "PendingReview"]


@dataclass(order=True, slots=True)
class PendingReview:
    """A review scheduled for the future (heap-ordered by due time)."""

    due: float
    package: str = field(compare=False)
    min_rating: int = field(compare=False)
    stop_after: bool = field(compare=False, default=False)


class BehaviorEngine:
    """Generates device histories against the shared world state."""

    def __init__(
        self,
        config: SimulationConfig,
        catalog: Catalog,
        review_store: ReviewStore,
        board: CampaignBoard,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self.review_store = review_store
        self.board = board
        self.rng = rng

        apps = catalog.all_apps()
        self._popular = [a for a in apps if a.on_play_store and not a.preinstalled
                         and not a.is_antivirus and a.review_count >= config.popular_review_threshold]
        # Zipf installation weights over the popular pool: everyone
        # concentrates on the head, but the long tail is what lets some
        # popular apps appear only on regular devices (§7.2 labeling).
        ranks = np.arange(1, len(self._popular) + 1, dtype=np.float64)
        weights = ranks ** -config.zipf_exponent
        self._popular_weights = weights / weights.sum()
        self._promoted_pool = sorted(board.advertised_packages())
        self._third_party = [a for a in apps if not a.on_play_store]
        self._av_apps = catalog.antivirus_apps()

        self._pending: dict[str, list[PendingReview]] = {}
        self._favorites: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Setup: pre-study history
    # ------------------------------------------------------------------
    def setup_device(self, device: SimDevice, persona: Persona, factory) -> None:
        rng = self.rng
        config = self.config

        for account in factory.accounts_for_persona(persona):
            device.register_account(account)

        # Pre-installed system apps, present since "device purchase".
        for app in self.catalog.preinstalled():
            device.install(
                app,
                timestamp=-config.history_days * SECONDS_PER_DAY,
                grant_probability=1.0,
                rng=rng,
                preinstalled=True,
            )

        # Historical user installs: personal apps plus (for workers) promo
        # apps still retained from past campaigns.  Promotion volume
        # scales with the *base* install count; the hoarder tail is all
        # personal use.
        n_base, n_hoard = persona.sample_initial_app_mix(rng)
        n_promo = int(round(n_base * persona.initial_promo_fraction))
        n_personal = n_base - n_promo + n_hoard

        installed_apps: list[tuple[App, bool]] = []
        personal_choices = rng.choice(
            len(self._popular),
            size=min(n_personal, len(self._popular)),
            replace=False,
            p=self._popular_weights,
        )
        installed_apps.extend((self._popular[i], False) for i in personal_choices)
        if n_promo and self._promoted_pool:
            promo_choices = rng.choice(
                len(self._promoted_pool), size=min(n_promo, len(self._promoted_pool)), replace=False
            )
            installed_apps.extend(
                (self.catalog.get(self._promoted_pool[i]), True) for i in promo_choices
            )

        for app, promo in installed_apps:
            install_time = -float(rng.uniform(1.0, config.history_days)) * SECONDS_PER_DAY
            device.install(
                app,
                timestamp=install_time,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
                promo=promo,
            )

        for _ in range(persona.sample_third_party_apps(rng)):
            if not self._third_party:
                break
            app = self._third_party[int(rng.integers(0, len(self._third_party)))]
            if app.package in device.installed:
                continue
            device.install(
                app,
                timestamp=-float(rng.uniform(1.0, config.history_days / 2)) * SECONDS_PER_DAY,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
            )

        if self._av_apps and rng.random() < persona.av_app_prob:
            app = self._av_apps[int(rng.integers(0, len(self._av_apps)))]
            device.install(app, timestamp=-float(rng.uniform(1, 200)) * SECONDS_PER_DAY,
                           grant_probability=persona.dangerous_permission_grant_prob, rng=rng)

        self._assign_stopped_state(device, persona)
        self._favorites[device.device_id] = self._pick_favorites(device)
        self._generate_review_history(device, persona)

    def _pick_favorites(self, device: SimDevice) -> list[str]:
        """Apps the owner actually uses day to day (sessions draw from
        these; §8.1 notes even pre-installed app use is discriminative)."""
        rng = self.rng
        personal = [
            rec.package
            for rec in device.installed.values()
            if not rec.promo_install
        ]
        k = min(len(personal), max(4, int(rng.integers(6, 14))))
        if k == 0:
            return []
        chosen = rng.choice(len(personal), size=k, replace=False)
        return [personal[i] for i in chosen]

    def _assign_stopped_state(self, device: SimDevice, persona: Persona) -> None:
        """Mark the persona-appropriate number of apps stopped; promoted
        apps are stopped preferentially (§6.3: workers never open many of
        the apps they install)."""
        rng = self.rng
        target = persona.sample_stopped_apps(rng)
        user_apps = device.user_installed()
        promo_first = sorted(user_apps, key=lambda rec: (not rec.promo_install, rec.package))
        for i, record in enumerate(promo_first):
            record.stopped = i < target
        # Pre-installed apps are never stopped.
        for record in device.installed.values():
            if record.preinstalled:
                record.stopped = False

    def _review_rating(self, promo: bool) -> int:
        """Promo reviews are 4-5 stars; organic ratings span the scale."""
        rng = self.rng
        if promo:
            return int(rng.choice((4, 5), p=(0.2, 0.8)))
        return int(rng.choice((1, 2, 3, 4, 5), p=(0.07, 0.06, 0.12, 0.3, 0.45)))

    def _generate_review_history(self, device: SimDevice, persona: Persona) -> None:
        """Create the pre-study Play-review footprint of the device's
        accounts: reviews for installed apps (the Fig 6-center and Fig 7
        joins) plus reviews for apps no longer installed (Fig 6-right)."""
        rng = self.rng
        gmail = device.gmail_accounts()
        if not gmail:
            return
        config = self.config
        volume_mult = (
            config.worker_review_volume_multiplier if persona.is_worker else 1.0
        )
        delay_mult = (
            config.worker_review_delay_multiplier if persona.is_worker else 1.0
        )

        posted = 0
        # Reviews for currently installed apps.
        for record in device.user_installed():
            if record.promo_install:
                review_probability = persona.review_prob_per_promo_install * volume_mult
                n_accounts = min(1 + int(rng.poisson(1.4)), len(gmail))
            else:
                review_probability = persona.review_prob_per_personal_install
                n_accounts = 1
            if rng.random() >= review_probability:
                continue
            reviewers = rng.choice(len(gmail), size=n_accounts, replace=False)
            for reviewer_index in reviewers:
                account = gmail[int(reviewer_index)]
                delay_days = persona.sample_review_delay_days(rng) * delay_mult
                review_time = record.install_time + delay_days * SECONDS_PER_DAY
                if review_time >= 0.0:
                    # Falls inside the study window: schedule it live.
                    # It still counts toward the device's review output,
                    # otherwise the historical top-up below would refill
                    # the quota and negate evasion delay multipliers.
                    heapq.heappush(
                        self._pending.setdefault(device.device_id, []),
                        PendingReview(
                            due=review_time,
                            package=record.package,
                            min_rating=4 if record.promo_install else 1,
                        ),
                    )
                    posted += 1
                    continue
                self.review_store.post_review(
                    record.package,
                    account.google_id,
                    self._review_rating(record.promo_install),
                    review_time,
                )
                device.record_review_event(record.package, review_time)
                posted += 1

        # Reviews for apps since uninstalled (past campaigns): these pad
        # the "total reviews from registered accounts" histogram.
        target_total = int(persona.sample_historical_reviews(rng) * volume_mult)
        pool = self._promoted_pool if persona.is_worker else [a.package for a in self._popular]
        # Exclude currently installed apps: these reviews stand for past
        # campaigns whose apps were since uninstalled, so they must not
        # pollute the install-to-review join (Fig 7).
        installed_now = device.installed_packages()
        pool = [package for package in pool if package not in installed_now]
        attempts = 0
        while posted < target_total and pool and attempts < target_total * 3:
            attempts += 1
            account = gmail[int(rng.integers(0, len(gmail)))]
            package = pool[int(rng.integers(0, len(pool)))]
            if self.review_store.has_reviewed(account.google_id, package):
                continue
            review_time = -float(rng.uniform(0.5, self.config.history_days)) * SECONDS_PER_DAY
            self.review_store.post_review(
                package,
                account.google_id,
                self._review_rating(persona.is_worker),
                review_time,
            )
            posted += 1

    # ------------------------------------------------------------------
    # Study-time simulation
    # ------------------------------------------------------------------
    def simulate_day(self, device: SimDevice, persona: Persona, day_start: float) -> None:
        """Advance one study day for one device."""
        self._run_sessions(device, persona, day_start)
        promo_installs = (
            self._run_promotion(device, persona, day_start) if persona.is_worker else 0
        )
        self._run_churn(device, persona, day_start, promo_installs)
        self._post_due_reviews(device, persona, day_start + SECONDS_PER_DAY)

    def _waking_time(self, day_start: float) -> tuple[float, float]:
        """Waking interval: 7am - midnight local time."""
        return day_start + hours(7), day_start + hours(24)

    def _run_sessions(self, device: SimDevice, persona: Persona, day_start: float) -> None:
        rng = self.rng
        wake_start, wake_end = self._waking_time(day_start)
        favorites = self._favorites.get(device.device_id) or []
        for _ in range(persona.sample_sessions(rng)):
            session_start = float(rng.uniform(wake_start, wake_end - 60.0))
            t = session_start
            for _ in range(persona.sample_apps_in_session(rng)):
                if favorites and rng.random() < 0.8:
                    package = favorites[int(rng.integers(0, len(favorites)))]
                else:
                    candidates = list(device.installed)
                    package = candidates[int(rng.integers(0, len(candidates)))]
                if package not in device.installed:
                    continue
                duration = persona.sample_session_minutes(rng) * 60.0
                device.open_app(package, t, duration)
                t += duration + float(rng.uniform(1.0, 20.0))

    def _run_churn(
        self, device: SimDevice, persona: Persona, day_start: float, promo_installs: int = 0
    ) -> None:
        """Personal install/uninstall churn (Fig 9).  Uninstall volume
        tracks *total* install volume (promo installs included): workers
        clear out expired-retention promotions to free storage."""
        rng = self.rng
        wake_start, wake_end = self._waking_time(day_start)
        n_installs = persona.sample_daily_installs(rng)
        for _ in range(n_installs):
            # Retry a few draws: the owner picks something they do not
            # already have (avoids undercounting churn on small catalogs).
            app = None
            for _attempt in range(6):
                candidate = self._popular[
                    int(rng.choice(len(self._popular), p=self._popular_weights))
                ]
                if candidate.package not in device.installed:
                    app = candidate
                    break
            if app is None:
                continue
            timestamp = float(rng.uniform(wake_start, wake_end))
            device.install(
                app,
                timestamp=timestamp,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
            )
            if rng.random() < persona.open_after_install_prob:
                # The owner tries the app right away (clears its
                # Android stopped state).
                device.open_app(
                    app.package,
                    timestamp + 30.0,
                    persona.sample_session_minutes(rng) * 60.0,
                )
            if rng.random() < persona.review_prob_per_personal_install:
                delay_days = persona.sample_review_delay_days(rng)
                heapq.heappush(
                    self._pending.setdefault(device.device_id, []),
                    PendingReview(
                        due=timestamp + delay_days * SECONDS_PER_DAY,
                        package=app.package,
                        min_rating=1,
                    ),
                )

        n_uninstalls = persona.sample_daily_uninstalls(rng, n_installs + promo_installs)
        removable = [
            rec.package
            for rec in device.user_installed()
            if rec.retention_until < day_start or not rec.promo_install
        ]
        rng.shuffle(removable)
        for package in removable[:n_uninstalls]:
            # An app installed earlier the same day must be uninstalled
            # *after* its install event (the delta stream is ordered).
            earliest = max(
                wake_start, device.installed[package].install_time + 120.0
            )
            if earliest >= wake_end:
                continue
            device.uninstall(package, float(rng.uniform(earliest, wake_end)))

    def _run_promotion(self, device: SimDevice, persona: Persona, day_start: float) -> int:
        """Pull jobs from the board: install, schedule the paid review,
        sometimes stop the app afterwards (§6.3 stopped-apps findings).
        Returns the number of promo installs performed."""
        rng = self.rng
        wake_start, wake_end = self._waking_time(day_start)
        config = self.config

        # Retention checks: clients demand proof the app stays installed
        # and gets used, so workers briefly open a couple of promoted
        # apps most days (§6.3: retention installs; this is also why the
        # paper's foreground data could not cleanly separate promo apps).
        promos = device.promo_installed()
        if promos:
            for _ in range(int(rng.integers(0, 3))):
                record = promos[int(rng.integers(0, len(promos)))]
                device.open_app(
                    record.package,
                    float(rng.uniform(wake_start, wake_end - 300.0)),
                    float(rng.uniform(30.0, 240.0)),
                )

        installs_done = 0
        for _ in range(persona.sample_promo_installs(rng)):
            job = self.board.next_job(exclude_packages=device.installed_packages())
            if job is None:
                return installs_done
            timestamp = float(rng.uniform(wake_start, wake_end))
            device.install(
                self.catalog.get(job.app_package),
                timestamp=timestamp,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
                promo=True,
                retention_days=job.retention_days,
            )
            installs_done += 1
            if rng.random() < persona.open_after_install_prob:
                device.open_app(job.app_package, timestamp + 30.0, 90.0)
            if job.wants_review and rng.random() < persona.review_prob_per_promo_install * config.worker_review_volume_multiplier:
                delay_days = (
                    persona.sample_review_delay_days(rng)
                    * config.worker_review_delay_multiplier
                )
                heapq.heappush(
                    self._pending.setdefault(device.device_id, []),
                    PendingReview(
                        due=timestamp + delay_days * SECONDS_PER_DAY,
                        package=job.app_package,
                        min_rating=job.min_rating,
                        stop_after=bool(rng.random() < 0.35),
                    ),
                )
        return installs_done

    def _post_due_reviews(self, device: SimDevice, persona: Persona, until: float) -> None:
        """Post every scheduled review whose time has come, from a device
        account that has not reviewed that app yet (one review per
        account per app — the Play Store rule)."""
        queue = self._pending.get(device.device_id)
        if not queue:
            return
        rng = self.rng
        while queue and queue[0].due <= until:
            pending = heapq.heappop(queue)
            if pending.package not in device.installed:
                continue  # app uninstalled before the review came due
            gmail = device.gmail_accounts()
            fresh = [
                a
                for a in gmail
                if not self.review_store.has_reviewed(a.google_id, pending.package)
            ]
            if not fresh:
                continue
            account = fresh[int(rng.integers(0, len(fresh)))]
            rating = max(pending.min_rating, self._review_rating(pending.min_rating >= 4))
            self.review_store.post_review(
                pending.package, account.google_id, rating, pending.due
            )
            device.record_review_event(pending.package, pending.due)
            if pending.stop_after:
                device.stop_app(pending.package, pending.due + 60.0)

    def pending_reviews(self, device_id: str) -> list[PendingReview]:
        return sorted(self._pending.get(device_id, []))
