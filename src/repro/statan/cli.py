"""The ``python -m repro lint`` command implementation.

Kept separate from :mod:`repro.cli` so the analyzer stays importable
without the simulation stack (and vice versa).
"""

from __future__ import annotations

import sys
from pathlib import Path

from .baseline import load_baseline, partition, save_baseline
from .engine import analyze_paths, iter_python_files
from .reporters import LintResult, render_json, render_text
from .rules import all_rules

__all__ = ["run_lint", "add_lint_arguments"]

DEFAULT_BASELINE = "statan-baseline.json"


def add_lint_arguments(parser) -> None:
    """Attach lint options to an argparse (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print baselined findings in the text report",
    )


def _default_paths() -> list[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def run_lint(args) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            return 2

    findings = analyze_paths(paths)
    files_checked = len(iter_python_files(paths))

    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}",
            file=sys.stderr,
        )
        return 0

    baseline = load_baseline(args.baseline)
    new, grandfathered, stale = partition(findings, baseline)
    result = LintResult(new, grandfathered, stale, files_checked)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose_baseline=args.show_baselined))
    return result.exit_code
