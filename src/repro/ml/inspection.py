"""Model inspection: permutation importance.

Mean-decrease-in-Gini (Figs 13-14) is computed on training data and is
known to inflate high-cardinality features; permutation importance on
held-out folds is the standard cross-check [Breiman 2001].  The Fig 13/14
benches report both so the feature rankings can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import check_random_state, check_X_y
from .metrics import f1_score

__all__ = ["PermutationImportance", "permutation_importance"]


@dataclass(frozen=True)
class PermutationImportance:
    """Per-feature importances: drop in score when the feature is shuffled."""

    importances_mean: np.ndarray
    importances_std: np.ndarray
    baseline_score: float

    def ranking(self, feature_names) -> list[tuple[str, float]]:
        order = np.argsort(-self.importances_mean)
        return [(feature_names[i], float(self.importances_mean[i])) for i in order]


def permutation_importance(
    model,
    X,
    y,
    n_repeats: int = 5,
    scorer=None,
    random_state: int | None = None,
) -> PermutationImportance:
    """Permutation importance of a *fitted* model on (X, y).

    ``scorer(model, X, y) -> float`` defaults to F1 on label 1.  Each
    feature column is shuffled ``n_repeats`` times; the importance is
    the mean drop from the baseline score.
    """
    X, y = check_X_y(X, y)
    rng = check_random_state(random_state)
    if scorer is None:
        def scorer(m, X_, y_):
            return f1_score(y_, m.predict(X_))

    baseline = float(scorer(model, X, y))
    n_features = X.shape[1]
    drops = np.zeros((n_features, n_repeats))
    for feature in range(n_features):
        for repeat in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, feature] = rng.permutation(shuffled[:, feature])
            drops[feature, repeat] = baseline - float(scorer(model, shuffled, y))
    return PermutationImportance(
        importances_mean=drops.mean(axis=1),
        importances_std=drops.std(axis=1),
        baseline_score=baseline,
    )
