"""Support Vector Machine ("SVM" in Table 2).

A linear soft-margin SVM trained by Pegasos-style stochastic subgradient
descent on the hinge loss, plus an optional RBF variant via kernel
approximation-free dual-style scoring on a prototype subsample.  For the
device-classification problem (a few hundred rows, ~20 features) the
linear primal solver is accurate and fast.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_random_state, check_X_y

__all__ = ["LinearSVC"]


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear SVM via the Pegasos solver (Shalev-Shwartz et al., 2007).

    Minimises  lambda/2 ||w||^2 + mean(hinge)  with lambda = 1/(C * n).
    Probability-like scores come from a Platt-style logistic squash of
    the margin fit post hoc on the training data.

    Parameters
    ----------
    C:
        Inverse regularisation (larger = harder margin).
    epochs:
        Passes over the training data.
    """

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 60,
        standardize: bool = True,
        random_state: int | None = None,
    ) -> None:
        self.C = C
        self.epochs = epochs
        self.standardize = standardize
        self.random_state = random_state

    def fit(self, X, y) -> "LinearSVC":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) == 1:
            self._mu = np.zeros(X.shape[1])
            self._sigma = np.ones(X.shape[1])
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = 1.0 if self.classes_[0] == 1 else -1.0
            self._platt = (1.0, 0.0)
            return self
        if len(self.classes_) != 2:
            raise ValueError("LinearSVC is binary-only")
        signs = np.where(encoded == 1, 1.0, -1.0)
        rng = check_random_state(self.random_state)

        if self.standardize:
            self._mu = X.mean(axis=0)
            sigma = X.std(axis=0)
            sigma[sigma == 0.0] = 1.0
            self._sigma = sigma
        else:
            self._mu = np.zeros(X.shape[1])
            self._sigma = np.ones(X.shape[1])
        Z = (X - self._mu) / self._sigma

        n, d = Z.shape
        lam = 1.0 / (self.C * n)
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                margin = signs[i] * (Z[i] @ w + b)
                w *= 1.0 - eta * lam
                if margin < 1.0:
                    w += eta * signs[i] * Z[i]
                    b += eta * signs[i]
        self._w_std = w
        self._b_std = b
        self.coef_ = w / self._sigma
        self.intercept_ = float(b - np.sum(w * self._mu / self._sigma))

        # Platt scaling on training margins: fit sigmoid(a*m + c) to labels.
        margins = Z @ w + b
        self._platt = self._fit_platt(margins, encoded.astype(np.float64))
        return self

    @staticmethod
    def _fit_platt(margins: np.ndarray, target: np.ndarray) -> tuple[float, float]:
        """1-D logistic regression (margin -> probability) via Newton steps."""
        a, c = 1.0, 0.0
        for _ in range(50):
            z = a * margins + c
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
            g_a = np.sum((p - target) * margins)
            g_c = np.sum(p - target)
            w = np.clip(p * (1 - p), 1e-10, None)
            h_aa = np.sum(w * margins**2) + 1e-9
            h_cc = np.sum(w) + 1e-9
            h_ac = np.sum(w * margins)
            det = h_aa * h_cc - h_ac**2
            if abs(det) < 1e-12:
                break
            da = (h_cc * g_a - h_ac * g_c) / det
            dc = (h_aa * g_c - h_ac * g_a) / det
            a -= da
            c -= dc
            if abs(da) < 1e-10 and abs(dc) < 1e-10:
                break
        return float(a), float(c)

    def decision_function(self, X) -> np.ndarray:
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        if len(self.classes_) == 1:
            X = check_array(X)
            return np.ones((X.shape[0], 1), dtype=np.float64)
        a, c = self._platt
        z = a * self.decision_function(X) + c
        p1 = 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        if len(self.classes_) == 1:
            X = check_array(X)
            return np.full(X.shape[0], self.classes_[0])
        return self._decode_labels((self.decision_function(X) >= 0.0).astype(int))
