"""Tests for scalers and the NaN imputer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.preprocessing import MinMaxScaler, SimpleImputer, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(5, 3, (100, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(0, 2, (50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column_passthrough(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10, dtype=float)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()


class TestMinMaxScaler:
    def test_unit_interval(self, rng):
        X = rng.normal(0, 10, (60, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_constant_column_finite(self):
        X = np.full((5, 2), 3.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.isfinite(Z).all()


class TestSimpleImputer:
    def test_median_fill(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 6.0]])
        Z = SimpleImputer(strategy="median").fit_transform(X)
        assert Z[2, 0] == pytest.approx(2.0)  # median of 1, 3
        assert Z[0, 1] == pytest.approx(5.0)  # median of 4, 6

    def test_mean_fill(self):
        X = np.array([[1.0], [3.0], [np.nan]])
        Z = SimpleImputer(strategy="mean").fit_transform(X)
        assert Z[2, 0] == pytest.approx(2.0)

    def test_constant_fill(self):
        X = np.array([[np.nan, 1.0]])
        Z = SimpleImputer(strategy="constant", fill_value=-1.0).fit_transform(X)
        assert Z[0, 0] == -1.0

    def test_all_nan_column_uses_fill_value(self):
        X = np.array([[np.nan], [np.nan]])
        Z = SimpleImputer(strategy="median", fill_value=0.0).fit_transform(X)
        np.testing.assert_allclose(Z, 0.0)

    def test_transform_uses_fit_statistics(self):
        imputer = SimpleImputer(strategy="median").fit(np.array([[1.0], [3.0]]))
        Z = imputer.transform(np.array([[np.nan]]))
        assert Z[0, 0] == pytest.approx(2.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="mode")

    def test_input_not_mutated(self):
        X = np.array([[np.nan, 1.0]])
        SimpleImputer().fit_transform(X)
        assert np.isnan(X[0, 0])

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 12), st.integers(1, 4)),
            elements=st.one_of(st.just(float("nan")), st.floats(-100, 100)),
        )
    )
    def test_property_output_never_nan(self, X):
        Z = SimpleImputer(strategy="median").fit_transform(X)
        assert not np.isnan(Z).any()
