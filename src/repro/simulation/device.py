"""Simulated Android device state.

Tracks everything the RacketStore collectors observe: the installed-app
set with per-app install times, stop state and granted/denied
permissions (the Android API surface §3 reads), registered accounts,
screen/battery status, plus the interaction event log behind Figure 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..playstore.catalog import App
from .accounts import DeviceAccount
from .events import DeviceEvent, EventType, ForegroundSession

__all__ = ["InstalledApp", "SimDevice", "DEVICE_MODELS"]

#: (manufacturer, model) pairs; §3: top manufacturers were Samsung,
#: Huawei, Oppo, Xiaomi, Vivo.
DEVICE_MODELS: tuple[tuple[str, str], ...] = (
    ("Samsung", "SM-A105F"), ("Samsung", "SM-G973F"), ("Samsung", "SM-J701F"),
    ("Huawei", "P30 Lite"), ("Huawei", "Y9 Prime"), ("Oppo", "CPH1909"),
    ("Oppo", "A5s"), ("Xiaomi", "Redmi Note 7"), ("Xiaomi", "Mi A2"),
    ("Vivo", "1904"), ("Vivo", "Y91C"), ("Realme", "RMX1911"),
    ("Motorola", "Moto G7"), ("Nokia", "TA-1032"), ("OnePlus", "A6000"),
    ("Infinix", "X650"), ("Tecno", "KC8"), ("Lenovo", "K8 Note"),
)

_device_counter = itertools.count(1)


@dataclass(slots=True)
class InstalledApp:
    """Per-app install record as exposed by the Android package manager."""

    package: str
    install_time: float
    last_update_time: float
    apk_hash: str
    stopped: bool = True  # Android >= 3.1: fresh installs start stopped.
    granted_permissions: tuple[str, ...] = ()
    denied_permissions: tuple[str, ...] = ()
    preinstalled: bool = False
    promo_install: bool = False  # ground truth: installed for promotion
    retention_until: float = float("inf")

    @property
    def n_granted(self) -> int:
        return len(self.granted_permissions)

    @property
    def n_denied(self) -> int:
        return len(self.denied_permissions)


class SimDevice:
    """One participant Android device and its full interaction history."""

    def __init__(
        self,
        persona_kind: str,
        is_worker: bool,
        rng: np.random.Generator,
        android_id_missing: bool = False,
    ) -> None:
        index = next(_device_counter)
        manufacturer, model = DEVICE_MODELS[int(rng.integers(0, len(DEVICE_MODELS)))]
        self.device_id = f"dev{index:05d}"
        #: Android ID; None models the §Appendix-A incompatible devices
        #: whose snapshots lacked identifiers.
        self.android_id: str | None = (
            None if android_id_missing else f"aid{rng.integers(10**15, 10**16 - 1):016x}"
        )
        self.manufacturer = manufacturer
        self.model = model
        self.api_level = int(rng.integers(21, 30))
        self.persona_kind = persona_kind
        self.is_worker = is_worker
        #: Apparent country (from the §4 cohort distribution); the
        #: backend only ever sees the IP-derived approximation.
        self.country: str = "OTHER"

        self.accounts: list[DeviceAccount] = []
        self.installed: dict[str, InstalledApp] = {}
        self.uninstalled_log: list[tuple[float, str]] = []
        self.events: list[DeviceEvent] = []
        self.sessions: list[ForegroundSession] = []
        #: Sessions that started before the current day view but are
        #: still open at its start (a late-evening session can spill
        #: past midnight).  Always empty on a full-history device.
        self.prior_sessions: tuple[ForegroundSession, ...] = ()
        self.battery_level: float = float(rng.uniform(0.3, 1.0))
        self.save_mode: bool = bool(rng.random() < 0.15)

    # -- accounts -----------------------------------------------------------
    def register_account(self, account: DeviceAccount) -> None:
        self.accounts.append(account)

    def gmail_accounts(self) -> list[DeviceAccount]:
        return [a for a in self.accounts if a.is_gmail]

    def non_gmail_accounts(self) -> list[DeviceAccount]:
        return [a for a in self.accounts if not a.is_gmail]

    def account_types(self) -> set[str]:
        return {a.service for a in self.accounts}

    # -- install lifecycle ----------------------------------------------------
    def install(
        self,
        app: App,
        timestamp: float,
        grant_probability: float,
        rng: np.random.Generator,
        promo: bool = False,
        retention_days: float = float("inf"),
        preinstalled: bool = False,
    ) -> InstalledApp:
        """Install an app: permissions are granted per-permission with
        ``grant_probability`` (dangerous only; normal always granted)."""
        granted = list(app.permissions.normal)
        denied: list[str] = []
        for permission in app.permissions.dangerous:
            if rng.random() < grant_probability:
                granted.append(permission)
            else:
                denied.append(permission)
        record = InstalledApp(
            package=app.package,
            install_time=timestamp,
            last_update_time=timestamp,
            apk_hash=app.current_apk_hash,
            stopped=not preinstalled,
            granted_permissions=tuple(granted),
            denied_permissions=tuple(denied),
            preinstalled=preinstalled,
            promo_install=promo,
            retention_until=timestamp + retention_days * 86_400.0
            if retention_days != float("inf")
            else float("inf"),
        )
        self.installed[app.package] = record
        if not preinstalled:
            self.events.append(DeviceEvent(timestamp, EventType.INSTALL, app.package))
        return record

    def uninstall(self, package: str, timestamp: float) -> bool:
        record = self.installed.pop(package, None)
        if record is None:
            return False
        self.uninstalled_log.append((timestamp, package))
        self.events.append(DeviceEvent(timestamp, EventType.UNINSTALL, package))
        return True

    def open_app(self, package: str, timestamp: float, duration_s: float) -> ForegroundSession | None:
        """Bring an app to the foreground (clears its stopped state)."""
        record = self.installed.get(package)
        if record is None:
            return None
        record.stopped = False
        session = ForegroundSession(timestamp, timestamp + duration_s, package)
        self.sessions.append(session)
        self.events.append(DeviceEvent(timestamp, EventType.FOREGROUND, package))
        return session

    def stop_app(self, package: str, timestamp: float) -> bool:
        """Force-stop an app (§6.3: workers stop misbehaving promo apps)."""
        record = self.installed.get(package)
        if record is None:
            return False
        record.stopped = True
        self.events.append(DeviceEvent(timestamp, EventType.STOP, package))
        return True

    def record_review_event(self, package: str, timestamp: float) -> None:
        self.events.append(DeviceEvent(timestamp, EventType.REVIEW, package))

    # -- day views (phase-split engine, DESIGN.md §12) ----------------------
    def day_view(self, day_start: float) -> "SimDevice":
        """Start-of-day snapshot shipped to a phase-1 shard worker.

        The view shares the mutable install table and account list (the
        shard's pickle round-trip copies them; the serial path mutates
        them in place — :meth:`absorb_day` converges both) but carries
        *empty* event/session/uninstall logs, so the worker payload and
        the returned deltas stay O(one day) instead of O(history).
        """
        view = object.__new__(SimDevice)
        view.device_id = self.device_id
        view.android_id = self.android_id
        view.manufacturer = self.manufacturer
        view.model = self.model
        view.api_level = self.api_level
        view.persona_kind = self.persona_kind
        view.is_worker = self.is_worker
        view.country = self.country
        view.accounts = self.accounts
        view.installed = self.installed
        view.uninstalled_log = []
        view.events = []
        view.sessions = []
        # Carry over still-open sessions: they produce snapshot coverage
        # in the new day.  Sessions never span more than one midnight,
        # so scanning back one day's worth of history is enough.
        carryover = []
        for session in reversed(self.sessions):
            if session.start < day_start - 86_400.0:
                break
            if session.end > day_start:
                carryover.append(session)
        view.prior_sessions = tuple(reversed(carryover))
        view.battery_level = self.battery_level
        view.save_mode = self.save_mode
        return view

    def absorb_day(self, view: "SimDevice") -> None:
        """Fold a day view's deltas back into the full-history device."""
        self.installed = view.installed
        self.battery_level = view.battery_level
        self.uninstalled_log.extend(view.uninstalled_log)
        self.events.extend(view.events)
        self.sessions.extend(view.sessions)

    # -- views ------------------------------------------------------------------
    def installed_packages(self) -> set[str]:
        return set(self.installed)

    def stopped_packages(self) -> list[str]:
        return sorted(p for p, rec in self.installed.items() if rec.stopped)

    def user_installed(self) -> list[InstalledApp]:
        return [rec for rec in self.installed.values() if not rec.preinstalled]

    def promo_installed(self) -> list[InstalledApp]:
        return [rec for rec in self.installed.values() if rec.promo_install]

    def apk_hashes(self) -> set[str]:
        return {rec.apk_hash for rec in self.installed.values() if rec.apk_hash}

    def timeline(self, package: str) -> list[DeviceEvent]:
        """Figure-1-style per-app event timeline."""
        return sorted(e for e in self.events if e.package == package)
