"""§6.3 app permissions (Figure 11).

Dangerous vs total permission counts for apps found *exclusively* on
worker or regular devices.  The paper's conclusion: permission profiles
are similar across device types, so permissions alone cannot detect
promoted apps — worker-exclusive apps merely contribute the extreme
dangerous-permission tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from ..playstore.catalog import Catalog
from .common import GroupComparison, compare_feature

__all__ = ["PermissionPoint", "PermissionsResult", "compute_app_permissions"]


@dataclass(frozen=True)
class PermissionPoint:
    """One app dot of the Figure 11 scatterplot."""

    package: str
    exclusive_to: str  # "worker" | "regular"
    n_dangerous: int
    n_total: int

    @property
    def dangerous_ratio(self) -> float:
        return self.n_dangerous / self.n_total if self.n_total else 0.0


@dataclass
class PermissionsResult:
    points: list[PermissionPoint]
    dangerous: GroupComparison
    total: GroupComparison

    def max_dangerous(self) -> dict[str, int]:
        out = {"worker": 0, "regular": 0}
        for p in self.points:
            out[p.exclusive_to] = max(out[p.exclusive_to], p.n_dangerous)
        return out


def compute_app_permissions(
    observations: list[DeviceObservation], catalog: Catalog
) -> PermissionsResult:
    worker_packages: set[str] = set()
    regular_packages: set[str] = set()
    for obs in observations:
        target = worker_packages if obs.is_worker else regular_packages
        target.update(obs.observed_packages)

    points: list[PermissionPoint] = []
    for exclusive_to, packages in (
        ("worker", worker_packages - regular_packages),
        ("regular", regular_packages - worker_packages),
    ):
        for package in sorted(packages):
            if package not in catalog:
                continue
            profile = catalog.get(package).permissions
            points.append(
                PermissionPoint(
                    package=package,
                    exclusive_to=exclusive_to,
                    n_dangerous=profile.n_dangerous,
                    n_total=profile.total,
                )
            )

    worker_points = [p for p in points if p.exclusive_to == "worker"]
    regular_points = [p for p in points if p.exclusive_to == "regular"]
    return PermissionsResult(
        points=points,
        dangerous=compare_feature(
            "dangerous_permissions",
            [p.n_dangerous for p in worker_points],
            [p.n_dangerous for p in regular_points],
        ),
        total=compare_feature(
            "total_permissions",
            [p.n_total for p in worker_points],
            [p.n_total for p in regular_points],
        ),
    )
