"""Tests for resampling (SMOTE & friends) and cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.base import clone
from repro.ml.logistic import LogisticRegression
from repro.ml.model_selection import StratifiedKFold, cross_validate, train_test_split
from repro.ml.sampling import class_counts, random_oversample, random_undersample, smote
from repro.ml.tree import DecisionTreeClassifier


def imbalanced(rng, n_major=120, n_minor=18):
    X = np.vstack(
        [rng.normal(0, 1, (n_major, 3)), rng.normal(3, 1, (n_minor, 3))]
    )
    y = np.concatenate([np.zeros(n_major, int), np.ones(n_minor, int)])
    return X, y


class TestSmote:
    def test_balances_classes(self, rng):
        X, y = imbalanced(rng)
        Xs, ys = smote(X, y, random_state=0)
        counts = class_counts(ys)
        assert counts[0] == counts[1]

    def test_original_rows_preserved(self, rng):
        X, y = imbalanced(rng)
        Xs, ys = smote(X, y, random_state=0)
        np.testing.assert_allclose(Xs[: len(X)], X)
        np.testing.assert_array_equal(ys[: len(y)], y)

    def test_synthetic_points_in_minority_hull(self, rng):
        X, y = imbalanced(rng)
        Xs, ys = smote(X, y, random_state=0)
        synthetic = Xs[len(X):]
        minority = X[y == 1]
        lo, hi = minority.min(axis=0), minority.max(axis=0)
        # Convex combinations stay inside the per-axis bounding box.
        assert (synthetic >= lo - 1e-9).all()
        assert (synthetic <= hi + 1e-9).all()

    def test_single_minority_point_duplicated(self):
        X = np.vstack([np.zeros((5, 2)), np.ones((1, 2))])
        y = np.array([0, 0, 0, 0, 0, 1])
        Xs, ys = smote(X, y, random_state=0)
        assert class_counts(ys)[1] == 5
        np.testing.assert_allclose(Xs[ys == 1], 1.0)

    def test_already_balanced_untouched(self, rng):
        X = rng.normal(0, 1, (20, 2))
        y = np.r_[np.zeros(10, int), np.ones(10, int)]
        Xs, ys = smote(X, y, random_state=0)
        assert Xs.shape == X.shape

    def test_multiclass_rejected(self, rng):
        X = rng.normal(0, 1, (30, 2))
        with pytest.raises(ValueError):
            smote(X, rng.integers(0, 3, 30))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(6, 40), st.integers(3, 5), st.integers(0, 1000))
    def test_property_balance_any_imbalance(self, n_major, n_minor, seed):
        rng = np.random.default_rng(seed)
        X, y = imbalanced(rng, n_major, n_minor)
        Xs, ys = smote(X, y, random_state=seed)
        counts = class_counts(ys)
        assert counts[0] == counts[1] == n_major


class TestRandomResampling:
    def test_oversample_balances_with_duplicates(self, rng):
        X, y = imbalanced(rng)
        Xs, ys = random_oversample(X, y, random_state=0)
        counts = class_counts(ys)
        assert counts[0] == counts[1]
        # Every synthetic row is an exact copy of a minority row.
        extra = Xs[len(X):]
        minority = {tuple(row) for row in X[y == 1]}
        assert all(tuple(row) in minority for row in extra)

    def test_undersample_balances_by_dropping(self, rng):
        X, y = imbalanced(rng)
        Xs, ys = random_undersample(X, y, random_state=0)
        counts = class_counts(ys)
        assert counts[0] == counts[1] == int(np.sum(y == 1))
        assert len(Xs) < len(X)


class TestStratifiedKFold:
    def test_every_sample_tested_exactly_once(self, rng):
        X, y = imbalanced(rng, 50, 20)
        seen = np.zeros(len(y), dtype=int)
        for train, test in StratifiedKFold(5, random_state=0).split(X, y):
            seen[test] += 1
            assert np.intersect1d(train, test).size == 0
        assert (seen == 1).all()

    def test_class_ratio_preserved(self, rng):
        X, y = imbalanced(rng, 80, 40)
        for train, test in StratifiedKFold(4, random_state=0).split(X, y):
            ratio = np.mean(y[test])
            assert ratio == pytest.approx(np.mean(y), abs=0.1)

    def test_too_few_samples_raises(self, rng):
        X = rng.normal(0, 1, (12, 2))
        y = np.r_[np.zeros(9, int), np.ones(3, int)]
        with pytest.raises(ValueError):
            list(StratifiedKFold(5).split(X, y))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(1)


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self, rng):
        X, y = imbalanced(rng, 80, 40)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_te) == pytest.approx(0.25 * len(X), abs=2)
        assert len(X_tr) + len(X_te) == len(X)

    def test_stratification_keeps_both_classes(self, rng):
        X, y = imbalanced(rng, 50, 6)
        _, _, _, y_te = train_test_split(X, y, test_size=0.3, random_state=0)
        assert set(np.unique(y_te)) == {0, 1}


class TestCrossValidate:
    def test_fold_count(self, blobs):
        X, y = blobs
        result = cross_validate(
            DecisionTreeClassifier(max_depth=3), X, y, n_splits=5, random_state=0
        )
        assert len(result.fold_reports) == 5

    def test_repeats_multiply_folds(self, blobs):
        X, y = blobs
        result = cross_validate(
            LogisticRegression(), X, y, n_splits=4, n_repeats=3, random_state=0
        )
        assert len(result.fold_reports) == 12

    def test_smote_inside_folds(self, rng):
        X, y = imbalanced(rng, 100, 25)
        result = cross_validate(
            LogisticRegression(), X, y, n_splits=5, resample="smote", random_state=0
        )
        assert result.f1 > 0.7

    def test_summary_keys(self, blobs):
        X, y = blobs
        summary = cross_validate(
            LogisticRegression(), X, y, n_splits=3, random_state=0
        ).summary()
        assert {"precision", "recall", "f1", "auc", "fpr", "n_folds"} <= set(summary)

    def test_estimator_not_mutated(self, blobs):
        X, y = blobs
        proto = DecisionTreeClassifier(max_depth=2)
        cross_validate(proto, X, y, n_splits=3, random_state=0)
        assert not hasattr(proto, "root_")

    def test_clone_copies_params(self):
        proto = DecisionTreeClassifier(max_depth=4, min_samples_leaf=3)
        copy = clone(proto)
        assert copy is not proto
        assert copy.get_params() == proto.get_params()
