"""App catalog: the Google Play Store's inventory of apps.

Generates a synthetic but structurally realistic catalog: package names,
categories, install counts with a Zipf-like popularity curve, aggregate
ratings, permission manifests, and apk hashes per version.  Three app
populations matter to the paper:

* **popular apps** — high review counts, installed by regular users
  (the §7.2 non-suspicious labeling rule requires >= 15,000 reviews);
* **promoted apps** — obscure apps that buy ASO campaigns (the
  suspicious label source);
* **third-party-store apps** — packages not hosted on Play at all
  (§6.3 "Third-Party App Stores"), including *modded* apks.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace

import numpy as np

from .permissions import PermissionProfile, sample_permission_profile

__all__ = ["AppCategory", "App", "Catalog", "CATEGORIES", "PREINSTALLED_PACKAGES"]


CATEGORIES: tuple[str, ...] = (
    "TOOLS", "GAMES", "SOCIAL", "COMMUNICATION", "FINANCE", "SHOPPING",
    "ENTERTAINMENT", "PRODUCTIVITY", "PHOTOGRAPHY", "MUSIC_AND_AUDIO",
    "VIDEO_PLAYERS", "HEALTH_AND_FITNESS", "EDUCATION", "NEWS_AND_MAGAZINES",
    "TRAVEL_AND_LOCAL", "BUSINESS", "LIFESTYLE", "ANTIVIRUS",
)

#: Android system / OEM packages present on every simulated device.
#: §8.1 notes "even the use of pre-installed apps like the app store,
#: e-mail, maps, and browser apps can distinguish regular devices".
PREINSTALLED_PACKAGES: tuple[str, ...] = (
    "com.android.vending",            # Play Store
    "com.google.android.gms",
    "com.google.android.gm",          # Gmail
    "com.google.android.apps.maps",
    "com.android.chrome",
    "com.google.android.youtube",
    "com.google.android.music",
    "com.android.settings",
    "com.android.camera2",
    "com.samsung.android.messaging",
    "com.samsung.android.incallui",
    "com.android.gallery3d",
    "com.android.dialer",
    "com.android.contacts",
)

AppCategory = str

_WORD_A = ("photo", "video", "super", "smart", "easy", "fast", "magic", "daily",
           "ultra", "pro", "mini", "mega", "pocket", "cloud", "secure", "happy",
           "lucky", "royal", "prime", "turbo", "zen", "pixel", "nova", "astro")
_WORD_B = ("editor", "player", "cleaner", "booster", "scanner", "keyboard",
           "launcher", "wallet", "browser", "translator", "recorder", "manager",
           "vpn", "tracker", "diary", "quiz", "runner", "saga", "maker",
           "weather", "radio", "chat", "market", "coach")


@dataclass(frozen=True)
class App:
    """One Play Store listing (or, if ``on_play_store`` is false, an apk
    distributed through a third-party store)."""

    package: str
    title: str
    category: AppCategory
    developer: str
    on_play_store: bool = True
    preinstalled: bool = False
    install_count: int = 0
    review_count: int = 0
    aggregate_rating: float = 0.0
    permissions: PermissionProfile = field(default_factory=PermissionProfile)
    apk_hashes: tuple[str, ...] = field(default_factory=tuple)
    is_malware: bool = False
    is_modded: bool = False
    is_antivirus: bool = False

    @property
    def current_apk_hash(self) -> str:
        return self.apk_hashes[-1] if self.apk_hashes else ""

    def with_counts(self, install_count: int, review_count: int, rating: float) -> "App":
        return replace(
            self,
            install_count=install_count,
            review_count=review_count,
            aggregate_rating=rating,
        )


def _apk_hash(package: str, version: int) -> str:
    """Deterministic stand-in for the MD5 of an apk build."""
    return hashlib.md5(f"{package}:v{version}".encode()).hexdigest()


class Catalog:
    """Generator and index for the simulated Play Store inventory."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._apps: dict[str, App] = {}
        self._name_counter = itertools.count(1)
        #: Bumped on every mutation; cheap cache invalidation token for
        #: derived structures (the rank model's relevance arrays).
        self.version = 0
        self._register_preinstalled()

    # -- generation --------------------------------------------------------
    def _register_preinstalled(self) -> None:
        for package in PREINSTALLED_PACKAGES:
            app = App(
                package=package,
                title=package.rsplit(".", 1)[-1].title(),
                category="TOOLS",
                developer="Google LLC" if "google" in package or "android" in package else "Samsung",
                preinstalled=True,
                install_count=1_000_000_000,
                review_count=5_000_000,
                aggregate_rating=4.2,
                permissions=sample_permission_profile(self._rng),
                apk_hashes=(_apk_hash(package, 1),),
            )
            self._apps[package] = app
            self.version += 1

    def _new_package(self, kind: str) -> tuple[str, str]:
        a = self._rng.choice(_WORD_A)
        b = self._rng.choice(_WORD_B)
        n = next(self._name_counter)
        package = f"com.{kind}.{a}{b}{n}"
        title = f"{a.title()} {b.title()}"
        return package, title

    def add_popular_app(self) -> App:
        """High-traffic app of the kind regular users install and review."""
        package, title = self._new_package("app")
        reviews = int(self._rng.pareto(1.1) * 30_000 + 15_000)
        installs = reviews * int(self._rng.integers(30, 120))
        app = App(
            package=package,
            title=title,
            category=str(self._rng.choice(CATEGORIES)),
            developer=f"dev{self._rng.integers(1, 500)} Studio",
            install_count=installs,
            review_count=reviews,
            aggregate_rating=float(np.clip(self._rng.normal(4.1, 0.4), 1.0, 5.0)),
            permissions=sample_permission_profile(self._rng),
            apk_hashes=tuple(
                _apk_hash(package, v)
                for v in range(1, int(self._rng.integers(1, 4)) + 1)
            ),
        )
        self._apps[package] = app
        self.version += 1
        return app

    def add_promoted_app(self, malware_probability: float = 0.08) -> App:
        """Obscure app that purchases ASO promotion.

        Low organic install/review counts (that is why it buys installs),
        sometimes aggressive permission profiles, sometimes malware
        (§6.4 finds workers review malware apps).
        """
        package, title = self._new_package("promo")
        is_malware = bool(self._rng.random() < malware_probability)
        aggressive = is_malware or self._rng.random() < 0.25
        reviews = int(self._rng.integers(0, 900))
        app = App(
            package=package,
            title=title,
            category=str(self._rng.choice(CATEGORIES)),
            developer=f"dev{self._rng.integers(500, 2000)}",
            install_count=reviews * int(self._rng.integers(5, 40)) + int(self._rng.integers(10, 5_000)),
            review_count=reviews,
            aggregate_rating=float(np.clip(self._rng.normal(3.6, 0.7), 1.0, 5.0)),
            permissions=sample_permission_profile(self._rng, aggressive=aggressive),
            apk_hashes=(_apk_hash(package, 1),),
            is_malware=is_malware,
        )
        self._apps[package] = app
        self.version += 1
        return app

    def add_third_party_app(self, modded: bool = True) -> App:
        """Apk hosted outside Google Play (§6.3), often a modded clone."""
        package, title = self._new_package("mod")
        app = App(
            package=package,
            title=title + (" Mod" if modded else ""),
            category=str(self._rng.choice(("ENTERTAINMENT", "GAMES", "VIDEO_PLAYERS"))),
            developer="unknown",
            on_play_store=False,
            install_count=0,
            review_count=0,
            aggregate_rating=0.0,
            permissions=sample_permission_profile(self._rng, aggressive=modded),
            apk_hashes=(_apk_hash(package, 1),),
            is_malware=bool(self._rng.random() < 0.3),
            is_modded=modded,
        )
        self._apps[package] = app
        self.version += 1
        return app

    def add_antivirus_app(self) -> App:
        """AV app (§6.4 identifies 250 AV apps on Play; few are installed)."""
        package, title = self._new_package("av")
        app = App(
            package=package,
            title=title + " Antivirus",
            category="ANTIVIRUS",
            developer=f"security{self._rng.integers(1, 50)}",
            install_count=int(self._rng.integers(100_000, 50_000_000)),
            review_count=int(self._rng.integers(20_000, 400_000)),
            aggregate_rating=float(np.clip(self._rng.normal(4.3, 0.3), 1.0, 5.0)),
            permissions=sample_permission_profile(self._rng),
            apk_hashes=(_apk_hash(package, 1),),
            is_antivirus=True,
        )
        self._apps[package] = app
        self.version += 1
        return app

    # -- lookups -----------------------------------------------------------
    def get(self, package: str) -> App:
        return self._apps[package]

    def __contains__(self, package: str) -> bool:
        return package in self._apps

    def __len__(self) -> int:
        return len(self._apps)

    def all_apps(self) -> list[App]:
        return list(self._apps.values())

    def packages(self) -> list[str]:
        return list(self._apps)

    def preinstalled(self) -> list[App]:
        return [a for a in self._apps.values() if a.preinstalled]

    def by_category(self, category: AppCategory) -> list[App]:
        return [a for a in self._apps.values() if a.category == category]

    def antivirus_apps(self) -> list[App]:
        """The §6.4 AV-app join: all catalog apps in the ANTIVIRUS category."""
        return [a for a in self._apps.values() if a.is_antivirus]

    def hosted_on_play(self) -> list[App]:
        return [a for a in self._apps.values() if a.on_play_store]

    def update(self, app: App) -> None:
        if app.package not in self._apps:
            raise KeyError(f"unknown package {app.package!r}")
        self._apps[app.package] = app
        self.version += 1
