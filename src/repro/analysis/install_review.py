"""§6.3 install-to-review times (Figure 7).

Each point is one review from a device-registered account for an app
with a known (Android-API) install time on that device.  Negative
intervals — reviews that predate the last install — come from previous
installs and are discarded, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from .common import GroupComparison, compare_feature

__all__ = ["InstallReviewResult", "compute_install_to_review"]


@dataclass
class InstallReviewResult:
    """Figure 7 data plus the §6.3 headline counts."""

    comparison: GroupComparison
    worker_delays_days: list[float]
    regular_delays_days: list[float]
    worker_within_one_day: int
    regular_within_one_day: int
    worker_over_100_days: int

    @property
    def worker_review_count(self) -> int:
        return len(self.worker_delays_days)

    @property
    def regular_review_count(self) -> int:
        return len(self.regular_delays_days)

    @property
    def worker_fast_fraction(self) -> float:
        if not self.worker_delays_days:
            return 0.0
        return self.worker_within_one_day / len(self.worker_delays_days)


def compute_install_to_review(
    observations: list[DeviceObservation],
) -> InstallReviewResult:
    worker_delays: list[float] = []
    regular_delays: list[float] = []
    for obs in observations:
        target = worker_delays if obs.is_worker else regular_delays
        for package in obs.device_reviews:
            target.extend(obs.install_to_review_days(package))

    return InstallReviewResult(
        comparison=compare_feature(
            "install_to_review_days", worker_delays, regular_delays
        ),
        worker_delays_days=sorted(worker_delays),
        regular_delays_days=sorted(regular_delays),
        worker_within_one_day=sum(1 for d in worker_delays if d <= 1.0),
        regular_within_one_day=sum(1 for d in regular_delays if d <= 1.0),
        worker_over_100_days=sum(1 for d in worker_delays if d > 100.0),
    )
