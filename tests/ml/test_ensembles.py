"""Tests for RandomForestClassifier and GradientBoostingClassifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.gradient_boosting import GradientBoostingClassifier


class TestRandomForest:
    def test_accuracy_on_blobs(self, blobs):
        X, y = blobs
        model = RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y)
        assert model.score(X, y) >= 0.97

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=15, random_state=7).fit(X, y)
        b = RandomForestClassifier(n_estimators=15, random_state=7).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))
        np.testing.assert_allclose(a.feature_importances_, b.feature_importances_)

    def test_different_seeds_differ(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=2).fit(X, y)
        assert not np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_importances_normalized(self, blobs):
        X, y = blobs
        model = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_informative_feature_ranked_first(self, rng):
        signal = rng.normal(0, 1, 400)
        noise = rng.normal(0, 1, (400, 3))
        X = np.column_stack([noise[:, 0], signal, noise[:, 1:]])
        y = (signal > 0).astype(int)
        model = RandomForestClassifier(n_estimators=40, random_state=0).fit(X, y)
        assert int(np.argmax(model.feature_importances_)) == 1

    def test_oob_score_reasonable(self, blobs):
        X, y = blobs
        model = RandomForestClassifier(n_estimators=40, random_state=0).fit(X, y)
        assert model.oob_score() >= 0.9

    def test_oob_unavailable_without_bootstrap(self, blobs):
        X, y = blobs
        model = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        with pytest.raises(RuntimeError):
            model.oob_score()

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        proba = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)


class TestGradientBoosting:
    def test_accuracy_on_blobs(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(n_estimators=40, random_state=0).fit(X, y)
        assert model.score(X, y) >= 0.97

    def test_training_loss_decreases(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(
            n_estimators=30, learning_rate=0.2, random_state=0
        ).fit(X, y)
        losses = model.train_losses_
        assert losses[-1] < losses[0]
        # Log-loss under a second-order booster should be close to
        # monotone decreasing; allow tiny numerical wiggles.
        increases = sum(1 for a, b in zip(losses, losses[1:]) if b > a + 1e-9)
        assert increases <= len(losses) // 10

    def test_regularization_shrinks_leaf_effect(self, blobs):
        X, y = blobs
        weak = GradientBoostingClassifier(
            n_estimators=10, reg_lambda=100.0, random_state=0
        ).fit(X, y)
        strong = GradientBoostingClassifier(
            n_estimators=10, reg_lambda=0.1, random_state=0
        ).fit(X, y)
        # Heavier L2 keeps the margin closer to the prior.
        assert np.abs(weak.decision_function(X)).mean() < np.abs(
            strong.decision_function(X)
        ).mean()

    def test_single_class_training_set(self):
        X = np.random.default_rng(0).normal(0, 1, (20, 3))
        model = GradientBoostingClassifier(n_estimators=5).fit(X, np.ones(20, int))
        assert (model.predict(X) == 1).all()

    def test_multiclass_rejected(self, rng):
        X = rng.normal(0, 1, (30, 2))
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(X, rng.integers(0, 3, 30))

    def test_gamma_prunes_splits(self, blobs):
        X, y = blobs
        free = GradientBoostingClassifier(n_estimators=5, gamma=0.0, random_state=0).fit(X, y)
        pruned = GradientBoostingClassifier(n_estimators=5, gamma=1e9, random_state=0).fit(X, y)

        def total_nodes(model):
            def count(node):
                return 1 if node.is_leaf else 1 + count(node.left) + count(node.right)
            return sum(count(t.root_) for t in model.trees_)

        assert total_nodes(pruned) < total_nodes(free)

    def test_feature_importances_focus_on_signal(self, rng):
        signal = rng.normal(0, 1, 300)
        X = np.column_stack([rng.normal(0, 1, 300), signal])
        y = (signal > 0).astype(int)
        model = GradientBoostingClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert model.feature_importances_[1] > 0.8

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = GradientBoostingClassifier(n_estimators=10, subsample=0.7, random_state=3).fit(X, y)
        b = GradientBoostingClassifier(n_estimators=10, subsample=0.7, random_state=3).fit(X, y)
        np.testing.assert_allclose(a.decision_function(X), b.decision_function(X))

    def test_proba_bounds(self, blobs):
        X, y = blobs
        proba = GradientBoostingClassifier(n_estimators=20, random_state=0).fit(X, y).predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
