"""Unit tests for the deterministic executor abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    draw_seeds,
    get_executor,
    in_worker,
    parallel_map,
    resolve_n_jobs,
    run_job,
    spawn_seeds,
)
from repro.parallel import executor as executor_module


def square(x):
    return x * x


def add(a, b):
    return a + b


def draw_normal(seed):
    return float(np.random.default_rng(seed).normal())


def bump_counter(amount):
    obs.counter("test_jobs_total").inc(amount)
    obs.histogram("test_job_seconds").observe(0.5)
    return amount


def report_worker_state(_index):
    return in_worker()


class TestResolveNJobs:
    def test_explicit_value_wins(self):
        assert resolve_n_jobs(3) == 3

    def test_one_is_serial(self):
        assert resolve_n_jobs(1) == 1

    def test_none_without_env_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert resolve_n_jobs(None) == 1

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "4")
        assert resolve_n_jobs(None) == 4

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "0")
        assert resolve_n_jobs(None) >= 1

    def test_nonpositive_means_all_cores(self):
        assert resolve_n_jobs(-1) >= 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_N_JOBS"):
            resolve_n_jobs(None)

    def test_get_executor_picks_serial_or_process(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(2), ProcessExecutor)


class TestSeeding:
    def test_spawn_seeds_deterministic_and_distinct(self):
        a = spawn_seeds(42, 8)
        b = spawn_seeds(42, 8)
        assert a == b
        assert len(set(a)) == 8
        assert spawn_seeds(43, 8) != a

    def test_spawn_seeds_prefix_stable(self):
        # Extending the fan-out must not change earlier children.
        assert spawn_seeds(7, 3) == spawn_seeds(7, 6)[:3]

    def test_draw_seeds_matches_serial_lineage(self):
        # draw_seeds consumes the generator exactly like the historical
        # serial loops did, one integers() call per seed.
        rng = np.random.default_rng(0)
        expected = [int(np.random.default_rng(0).integers(0, 2**31 - 1))]
        assert draw_seeds(rng, 1) == expected
        reference = np.random.default_rng(0)
        reference.integers(0, 2**31 - 1)
        assert draw_seeds(rng, 2) == [
            int(reference.integers(0, 2**31 - 1)) for _ in range(2)
        ]


class TestExecutors:
    def test_serial_map_preserves_order(self):
        result = SerialExecutor().map(square, [(i,) for i in range(6)])
        assert result == [i * i for i in range(6)]

    def test_process_map_preserves_submission_order(self):
        result = ProcessExecutor(2).map(square, [(i,) for i in range(12)])
        assert result == [i * i for i in range(12)]

    def test_process_map_multiple_args(self):
        result = ProcessExecutor(2).map(add, [(i, 10 * i) for i in range(5)])
        assert result == [11 * i for i in range(5)]

    def test_process_map_empty(self):
        assert ProcessExecutor(2).map(square, []) == []

    def test_process_executor_rejects_serial_count(self):
        with pytest.raises(ValueError):
            ProcessExecutor(1)

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes here")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", ExplodingPool)
        result = ProcessExecutor(2).map(square, [(i,) for i in range(4)])
        assert result == [0, 1, 4, 9]

    def test_parallel_map_matches_serial(self):
        tasks = [(seed,) for seed in spawn_seeds(123, 9)]
        assert parallel_map(draw_normal, tasks, n_jobs=3) == parallel_map(
            draw_normal, tasks, n_jobs=1
        )


class TestWorkerState:
    def test_run_job_sets_and_restores_flag(self):
        assert not in_worker()
        result, snapshot = run_job(report_worker_state, (0,), capture_metrics=False)
        assert result is True
        assert snapshot is None
        assert not in_worker()

    def test_nested_n_jobs_resolves_serial_in_worker(self):
        def probe(_x):
            return resolve_n_jobs(8)

        result, _ = run_job(probe, (0,), capture_metrics=False)
        assert result == 1

    def test_workers_report_worker_state(self):
        flags = parallel_map(report_worker_state, [(i,) for i in range(3)], n_jobs=2)
        assert flags == [True, True, True]
        assert not in_worker()


class TestMetricsRoundTrip:
    def test_worker_metrics_merge_into_parent(self):
        obs.configure(metrics=True, tracing=False, registry=obs.MetricsRegistry())
        try:
            amounts = [1, 2, 3, 4]
            result = parallel_map(bump_counter, [(a,) for a in amounts], n_jobs=2)
            assert result == amounts
            assert obs.counter("test_jobs_total").value == sum(amounts)
            assert obs.histogram("test_job_seconds").count == len(amounts)
        finally:
            obs.reset()

    def test_no_capture_when_metrics_disabled(self):
        obs.reset()
        result = parallel_map(bump_counter, [(a,) for a in (5, 6)], n_jobs=2)
        assert result == [5, 6]
        assert not obs.metrics_enabled()
