"""Effect sizes and bootstrap confidence intervals.

The paper reports significance (p-values) but not effect magnitudes;
for the reproduction's paper-vs-measured comparisons we also quantify
*how big* each worker-vs-regular contrast is: Cohen's d (standardised
mean difference), Cliff's delta (ordinal dominance — robust to the
heavy-tailed usage distributions), and percentile-bootstrap CIs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["cohens_d", "cliffs_delta", "bootstrap_ci", "EffectSizes", "effect_sizes"]


def _clean(sample, name: str) -> np.ndarray:
    arr = np.asarray(list(sample), dtype=np.float64).ravel()
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError(f"sample {name!r} empty after dropping non-finite values")
    return arr


def cohens_d(sample_a, sample_b) -> float:
    """Cohen's d with the pooled standard deviation."""
    a = _clean(sample_a, "a")
    b = _clean(sample_b, "b")
    n_a, n_b = a.size, b.size
    if n_a < 2 or n_b < 2:
        raise ValueError("Cohen's d needs at least two points per group")
    var_a = a.var(ddof=1)
    var_b = b.var(ddof=1)
    pooled = ((n_a - 1) * var_a + (n_b - 1) * var_b) / (n_a + n_b - 2)
    if pooled == 0.0:
        return 0.0 if a.mean() == b.mean() else float("inf")
    return float((a.mean() - b.mean()) / np.sqrt(pooled))


def cliffs_delta(sample_a, sample_b) -> float:
    """Cliff's delta: P(a > b) - P(a < b), in [-1, 1].

    Computed in O((n+m) log(n+m)) via rank counting rather than the
    naive O(n*m) pairwise comparison.
    """
    a = np.sort(_clean(sample_a, "a"))
    b = np.sort(_clean(sample_b, "b"))
    # For each a_i: #(b < a_i) - #(b > a_i), via binary search.
    less = np.searchsorted(b, a, side="left")
    greater = b.size - np.searchsorted(b, a, side="right")
    return float((less.sum() - greater.sum()) / (a.size * b.size))


def bootstrap_ci(
    sample,
    statistic=np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    random_state: int | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for a statistic of one sample."""
    arr = _clean(sample, "sample")
    rng = np.random.default_rng(random_state)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        estimates[i] = statistic(arr[rng.integers(0, arr.size, size=arr.size)])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(estimates, alpha)),
        float(np.quantile(estimates, 1.0 - alpha)),
    )


@dataclass(frozen=True)
class EffectSizes:
    """Magnitude summary of a two-group contrast."""

    cohens_d: float
    cliffs_delta: float

    def magnitude(self) -> str:
        """Conventional |delta| bands (Romano et al. 2006)."""
        delta = abs(self.cliffs_delta)
        if delta < 0.147:
            return "negligible"
        if delta < 0.33:
            return "small"
        if delta < 0.474:
            return "medium"
        return "large"


def effect_sizes(sample_a, sample_b) -> EffectSizes:
    return EffectSizes(
        cohens_d=cohens_d(sample_a, sample_b),
        cliffs_delta=cliffs_delta(sample_a, sample_b),
    )
