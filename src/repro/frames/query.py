"""Compile Mongo-style queries to vectorized masks and reusable plans.

The operator language is exactly the document store's (``$eq``, ``$ne``,
``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$exists``) with the
same semantics, including the corner cases:

* a missing key reads as ``None`` for every operator except ``$exists``,
  which tests key *presence* (so ``field: None`` satisfies
  ``{"$exists": True}`` while an absent key does not);
* ordering operators never match ``None``;
* comparing incomparable types raises ``TypeError`` exactly where the
  per-document path would.

Two evaluation strategies share those semantics:

* :func:`mask_for` — the original one-shot compiler: every predicate
  evaluates over the full column and the masks AND together.
* :class:`QueryPlan` (via :func:`compile_plan`) — the planner.  A query
  dict is normalized once into ``(field, op, operand-type)`` predicate
  shapes, ordered by estimated selectivity (equality first, ``$ne`` and
  ``$exists`` last), and executed over *progressively narrowed position
  sets*: the first predicate runs as a full-column mask (or the caller
  seeds candidate positions from an index probe) and every later
  predicate only looks at the rows still alive, via fancy-indexed
  column slices where numpy comparison is safe and per-value python
  everywhere else.  Plans carry no operand values, only shapes, so the
  store caches them per (collection, query-shape) and repeated queries
  skip normalization entirely.

Matching positions always come back ascending, i.e. in insertion
order — the same order the dict backend's scan produces.
"""

from __future__ import annotations

import operator

import numpy as np

from .frame import _ABSENT, ColumnFrame

__all__ = ["mask_for", "compile_plan", "plan_key", "QueryPlan", "QUERY_OPERATORS"]

#: The operator names this compiler understands (the store's language).
QUERY_OPERATORS = ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$exists")

_ORDERING = {
    "$gt": operator.gt,
    "$gte": operator.ge,
    "$lt": operator.lt,
    "$lte": operator.le,
}
_ORDERING_UFUNC = {
    "$gt": np.greater,
    "$gte": np.greater_equal,
    "$lt": np.less,
    "$lte": np.less_equal,
}

_NUMERIC_KINDS = ("float", "int", "bool")

#: Below this many candidate positions, verifying off the raw cells is
#: cheaper than materializing a column's numpy shadow for a
#: fancy-indexed comparison (unless the shadow already exists).
_VECTOR_MIN = 128

#: Estimated fraction of rows an operator keeps, used to order
#: predicate evaluation (lowest first).  The exact numbers only matter
#: relative to each other; ties keep query-dict order, so plans are
#: deterministic for a given query shape.
_SELECTIVITY_RANK = {
    "$eq": 0,
    "$in": 1,
    "$gt": 2,
    "$gte": 2,
    "$lt": 2,
    "$lte": 2,
    "$exists": 3,
    "$ne": 4,
}


def _vector_comparable(frame: ColumnFrame, fieldname: str, operand) -> bool:
    """Whether ``column <op> operand`` is safe as one numpy expression."""
    kind = frame.native_kind(fieldname)
    if kind in _NUMERIC_KINDS:
        return isinstance(operand, (int, float, bool)) and not isinstance(
            operand, np.ndarray
        )
    if kind == "str":
        return isinstance(operand, str)
    return False


def _eq_mask(frame: ColumnFrame, fieldname: str, operand) -> np.ndarray:
    if _vector_comparable(frame, fieldname, operand):
        return frame.column(fieldname) == operand
    return np.fromiter(
        (value == operand for value in frame.cells(fieldname)),
        np.bool_,
        len(frame),
    )


def _ordering_mask(
    frame: ColumnFrame, fieldname: str, op: str, operand
) -> np.ndarray:
    if _vector_comparable(frame, fieldname, operand):
        return _ORDERING_UFUNC[op](frame.column(fieldname), operand)
    compare = _ORDERING[op]
    return np.fromiter(
        (
            value is not None and compare(value, operand)
            for value in frame.cells(fieldname)
        ),
        np.bool_,
        len(frame),
    )


def _op_mask(frame: ColumnFrame, fieldname: str, op: str, operand) -> np.ndarray:
    if op == "$exists":
        present = frame.present(fieldname)
        return present if operand else ~present
    if op == "$eq":
        return _eq_mask(frame, fieldname, operand)
    if op == "$ne":
        return ~_eq_mask(frame, fieldname, operand)
    if op == "$in":
        return np.fromiter(
            (value in operand for value in frame.cells(fieldname)),
            np.bool_,
            len(frame),
        )
    if op in _ORDERING:
        return _ordering_mask(frame, fieldname, op, operand)
    raise ValueError(f"unknown query operator {op!r}")


def mask_for(frame: ColumnFrame, query: dict | None) -> np.ndarray:
    """Boolean row mask of the documents matching ``query``."""
    mask = np.ones(len(frame), dtype=bool)
    for fieldname, condition in (query or {}).items():
        if isinstance(condition, dict) and any(
            key.startswith("$") for key in condition
        ):
            for op, operand in condition.items():
                mask &= _op_mask(frame, fieldname, op, operand)
        else:
            mask &= _eq_mask(frame, fieldname, condition)
    return mask


# -- the planner --------------------------------------------------------------


def _iter_predicates(query: dict):
    """Yield ``(fieldname, op, operand, plain)`` for every predicate.

    ``plain`` marks bare-equality conditions (``{"city": "lima"}``) —
    the only form the store's index-selection rule considers.
    """
    for fieldname, condition in query.items():
        if isinstance(condition, dict) and any(
            key.startswith("$") for key in condition
        ):
            # Unknown operators pass through here and raise at
            # evaluation time, exactly like the per-document path (a
            # query that never evaluates them never raises).
            yield from (
                (fieldname, op, operand, False) for op, operand in condition.items()
            )
        else:
            yield fieldname, "$eq", condition, True


def plan_key(query: dict) -> tuple:
    """Hashable shape of a query: fields, ops, and operand types (not
    values), in query order.  Two queries with the same key evaluate
    with the same plan."""
    return tuple(
        (fieldname, op, plain, operand.__class__)
        for fieldname, op, operand, plain in _iter_predicates(query)
    )


def _narrow_positions(
    frame: ColumnFrame, positions: np.ndarray, fieldname: str, op: str, operand
) -> np.ndarray:
    """Filter a candidate position array through one predicate.

    Same per-value semantics as :func:`_op_mask`, evaluated only on the
    surviving rows: a fancy-indexed numpy comparison when that is safe,
    otherwise a python pass over the raw cells.
    """
    if len(positions) == 0:
        return positions
    if op == "$exists":
        keep = frame.present(fieldname)[positions]
        return positions[keep if operand else ~keep]
    # The fancy-indexed comparison only pays for itself when the
    # candidate set is large, or when the column's numpy shadow is
    # already materialized; a handful of survivors from an index probe
    # is cheaper to verify off the raw cells than to coerce a 10k-row
    # column for.
    vectorize = len(positions) >= _VECTOR_MIN or fieldname in frame._views
    if vectorize and op in _ORDERING and _vector_comparable(frame, fieldname, operand):
        keep = _ORDERING_UFUNC[op](frame.column(fieldname)[positions], operand)
        return positions[keep]
    if (
        vectorize
        and op in ("$eq", "$ne")
        and _vector_comparable(frame, fieldname, operand)
    ):
        keep = frame.column(fieldname)[positions] == operand
        return positions[keep if op == "$eq" else ~keep]
    # Python fallback with the scalar semantics (missing keys read as
    # None; ordering never matches None; $in keeps `in` semantics).
    values = frame._columns.get(fieldname)
    if values is None:
        cell = lambda position: None  # noqa: E731 - local accessor
    else:

        def cell(position, _values=values):
            value = _values[position]
            return None if value is _ABSENT else value

    if op == "$eq":
        keep = [cell(p) == operand for p in positions.tolist()]
    elif op == "$ne":
        keep = [cell(p) != operand for p in positions.tolist()]
    elif op == "$in":
        keep = [cell(p) in operand for p in positions.tolist()]
    elif op in _ORDERING:
        compare = _ORDERING[op]
        keep = [
            (value := cell(p)) is not None and compare(value, operand)
            for p in positions.tolist()
        ]
    else:
        raise ValueError(f"unknown query operator {op!r}")
    return positions[np.asarray(keep, dtype=bool)]


class QueryPlan:
    """A reusable evaluation order for one query shape.

    ``entries`` is the predicate list in evaluation order; each entry is
    ``(fieldname, op, plain)`` and fetches its operand from the concrete
    query dict at execution time, so one compiled plan serves every
    query with the same shape.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: list[tuple[str, str, bool]]) -> None:
        self.entries = entries

    @staticmethod
    def _operand(query: dict, fieldname: str, op: str, plain: bool):
        condition = query[fieldname]
        return condition if plain else condition[op]

    def positions(
        self,
        frame: ColumnFrame,
        query: dict,
        seed: np.ndarray | list[int] | None = None,
    ) -> np.ndarray:
        """Matching row positions, ascending (= insertion order).

        ``seed`` narrows evaluation to candidate positions from an
        index probe; every predicate (including the probed one) is
        still verified, so probe semantics can be looser than operator
        semantics (a hash bucket holds NaN keys equality rejects).
        """
        if seed is not None:
            positions = np.asarray(seed, dtype=np.int64)
            remaining = self.entries
        elif not self.entries:
            return np.arange(len(frame), dtype=np.int64)
        else:
            fieldname, op, plain = self.entries[0]
            mask = _op_mask(
                frame, fieldname, op, self._operand(query, fieldname, op, plain)
            )
            positions = np.nonzero(mask)[0].astype(np.int64, copy=False)
            remaining = self.entries[1:]
        for fieldname, op, plain in remaining:
            if len(positions) == 0:
                break
            positions = _narrow_positions(
                frame,
                positions,
                fieldname,
                op,
                self._operand(query, fieldname, op, plain),
            )
        return positions

    def count(
        self,
        frame: ColumnFrame,
        query: dict,
        seed: np.ndarray | list[int] | None = None,
    ) -> int:
        """Number of matching rows.  Single-predicate unseeded queries
        count the mask directly and skip position materialization."""
        if seed is None and len(self.entries) == 1:
            fieldname, op, plain = self.entries[0]
            mask = _op_mask(
                frame, fieldname, op, self._operand(query, fieldname, op, plain)
            )
            return int(np.count_nonzero(mask))
        return int(len(self.positions(frame, query, seed=seed)))


def compile_plan(query: dict) -> QueryPlan:
    """Build a :class:`QueryPlan`: predicates sorted by estimated
    selectivity (stable, so equal ranks keep query order)."""
    predicates = [
        (fieldname, op, plain) for fieldname, op, operand, plain in _iter_predicates(query)
    ]
    # Unknown operators rank last so every legitimate predicate gets a
    # chance to empty the candidate set before they raise.
    predicates.sort(key=lambda entry: _SELECTIVITY_RANK.get(entry[1], 99))
    return QueryPlan(predicates)
