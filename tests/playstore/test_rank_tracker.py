"""Tests for the keyword rank tracker."""

import pytest

from repro.playstore.catalog import Catalog
from repro.playstore.rank import SearchRankModel
from repro.playstore.rank_tracker import RankTracker


@pytest.fixture()
def world(rng):
    catalog = Catalog(rng)
    for _ in range(40):
        catalog.add_popular_app()
    app = catalog.add_promoted_app()
    return catalog, app


class TestRankTracker:
    def test_series_grows_per_day(self, world):
        catalog, app = world
        tracker = RankTracker(catalog)
        keyword = app.title.split()[0].lower()
        tracker.track(app.package, keyword)
        for day in range(4):
            tracker.record_day(day)
        series = tracker.series(app.package, keyword)
        assert [s.day for s in series] == [0, 1, 2, 3]

    def test_track_idempotent(self, world):
        catalog, app = world
        tracker = RankTracker(catalog)
        tracker.track(app.package, "kw")
        tracker.record_day(0)
        tracker.track(app.package, "kw")  # must not clear history
        assert len(tracker.series(app.package, "kw")) == 1

    def test_campaign_improves_rank(self, world):
        catalog, app = world
        tracker = RankTracker(catalog)
        keyword = app.title.split()[0].lower()
        tracker.track(app.package, keyword)
        tracker.record_day(0)
        # Campaign lands: installs, reviews and rating climb.
        catalog.update(
            app.with_counts(app.install_count + 10**7, app.review_count + 50_000, 4.9)
        )
        tracker.record_day(1)
        series = tracker.series(app.package, keyword)
        assert series[1].rank < series[0].rank
        assert tracker.best_rank(app.package, keyword) == series[1].rank

    def test_jump_detection(self, world):
        catalog, app = world
        tracker = RankTracker(catalog)
        keyword = app.title.split()[0].lower()
        tracker.track(app.package, keyword)
        tracker.record_day(0)
        catalog.update(
            app.with_counts(app.install_count + 10**7, app.review_count + 50_000, 4.9)
        )
        tracker.record_day(1)
        jumps = tracker.detect_jumps(min_places=5, window_days=3)
        assert jumps and jumps[0].package == app.package
        assert jumps[0].places_gained >= 5

    def test_no_jump_without_change(self, world):
        catalog, app = world
        tracker = RankTracker(catalog)
        tracker.track(app.package, "zzz")
        for day in range(5):
            tracker.record_day(day)
        assert tracker.detect_jumps(min_places=1) == []

    def test_untracked_series_empty(self, world):
        catalog, _ = world
        tracker = RankTracker(catalog)
        assert tracker.series("com.none", "kw") == []
        assert tracker.best_rank("com.none", "kw") is None


class TestBatchRankEquivalence:
    """``ranks_for`` (the vectorized pass the tracker uses daily) must
    agree exactly with the scalar ``rank_of`` reference."""

    def test_batch_ranks_match_scalar_reference(self, world):
        catalog, app = world
        model = SearchRankModel(catalog)
        hosted = catalog.hosted_on_play()
        keywords = [hosted[0].title.split()[0].lower(), "game", "zzz"]
        pairs = [
            (candidate.package, keyword)
            for candidate in hosted[:12] + [app]
            for keyword in keywords
        ]
        batch = model.ranks_for(pairs)
        for package, keyword in pairs:
            assert batch[(package, keyword)] == model.rank_of(package, keyword)

    def test_boosts_overlay_matches_mutated_catalog(self, world):
        catalog, app = world
        model = SearchRankModel(catalog)
        keyword = app.title.split()[0].lower()
        boosted = model.ranks_for(
            [(app.package, keyword)], boosts={app.package: (10**7, 50_000)}
        )
        catalog.update(
            app.with_counts(app.install_count + 10**7, app.review_count + 50_000,
                            app.aggregate_rating)
        )
        assert boosted[(app.package, keyword)] == model.rank_of(app.package, keyword)

    def test_relevance_cache_invalidated_by_catalog_mutation(self, world):
        catalog, app = world
        model = SearchRankModel(catalog)
        keyword = "game"
        before = model.ranks_for([(app.package, keyword)])
        version = catalog.version
        new_app = catalog.add_popular_app()  # hosted set changes
        assert catalog.version > version
        after = model.ranks_for([(app.package, keyword), (new_app.package, keyword)])
        assert after[(app.package, keyword)] == model.rank_of(app.package, keyword)
        assert before[(app.package, keyword)] >= 1
