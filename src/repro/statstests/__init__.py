"""Statistical-testing substrate: the §6 test battery and descriptive
summaries in the paper's reporting format."""

from .descriptive import Summary, ecdf, histogram_counts, summarize
from .effect_size import EffectSizes, bootstrap_ci, cliffs_delta, cohens_d, effect_sizes
from .tests import (
    SignificanceBattery,
    TestResult,
    compare_groups,
    fligner_killeen,
    kruskal_wallis,
    ks_2samp,
    mann_whitney_u,
    one_way_anova,
    shapiro_wilk,
)

__all__ = [
    "Summary",
    "EffectSizes",
    "bootstrap_ci",
    "cliffs_delta",
    "cohens_d",
    "effect_sizes",
    "ecdf",
    "histogram_counts",
    "summarize",
    "SignificanceBattery",
    "TestResult",
    "compare_groups",
    "fligner_killeen",
    "kruskal_wallis",
    "ks_2samp",
    "mann_whitney_u",
    "one_way_anova",
    "shapiro_wilk",
]
