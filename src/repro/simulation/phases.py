"""Two-phase day engine: device-local simulation, global commit.

The day loop used to interleave every device's behaviour with writes to
the shared Play Store and backend state.  This module splits one study
day into:

* **Phase 1 (device-local)** — each active device reads a *frozen
  start-of-day view* of the global state (campaign board, its own
  review footprint) and produces (a) its device history for the day,
  (b) its RacketStore uploads, and (c) an :class:`ActionLog` of
  intended global effects — review posts, campaign deliveries, install
  registrations and chunk uploads — instead of mutating ``playstore``
  or ``platform`` objects directly.  Phase 1 is a pure function of the
  task payload and one pre-drawn integer seed, so it fans out over
  device shards via :mod:`repro.parallel` with byte-identical results
  at any worker count (DESIGN.md §8 and §12).
* **Phase 2 (global commit)** — the parent applies every shard's
  action log in deterministic sorted order ``(device_id, seq)``, then
  rank tracking advances and the review crawler runs its rounds.

Consistency model: a device never observes another device's *same-day*
actions (campaign take counts, review posts).  Within one device the
view is kept coherent by a local overlay (:class:`ShardBoardView`, the
per-device review mirror).  Cross-device effects land at commit time;
campaign delivery counts are clamped to their targets there, so
same-day overshoot costs the client nothing (the board never pays out
more than the campaign bought).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..faults.errors import FaultInjected
from ..faults.plan import (
    FAULT_STREAM_BACKOFF,
    FAULT_STREAM_TRANSPORT,
    FaultPlan,
)
from ..faults.transport import FaultyTransport
from ..platform.buffer import chunk_hash
from ..platform.mobile_app import AppState, RacketStoreApp
from ..platform.transport import LossyTransport
from ..playstore.catalog import App
from .behavior import PendingReview, review_rating
from .campaigns import CampaignBoard, FrozenBoard, PromoJob
from .clock import SECONDS_PER_DAY, hours
from .device import SimDevice
from .personas import Persona

__all__ = [
    "ReviewPost",
    "PromoDelivery",
    "InstallRegistration",
    "ChunkUpload",
    "ActionLog",
    "RecordingUplink",
    "ShardBoardView",
    "DayParams",
    "DeviceDayTask",
    "DeviceDayResult",
    "DeviceDayRunner",
    "build_day_params",
    "run_day_shard",
    "commit_day",
]


# ---------------------------------------------------------------------------
# Actions: the globally visible effects a device intends.
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ReviewPost:
    """Post (or replace) one Play review from one device account."""

    seq: int
    package: str
    google_id: str
    rating: int
    timestamp: float


@dataclass(frozen=True, slots=True)
class PromoDelivery:
    """One campaign job taken: an install (and maybe a review) owed."""

    seq: int
    campaign_id: int
    wants_review: bool


@dataclass(frozen=True, slots=True)
class InstallRegistration:
    """RacketStore sign-in: register the freshly minted install ID."""

    seq: int
    participant_id: str
    install_id: str
    android_id: str | None
    timestamp: float


@dataclass(frozen=True, slots=True)
class ChunkUpload:
    """One delivered buffer chunk bound for the collection server."""

    seq: int
    kind: str
    data: bytes


Action = ReviewPost | PromoDelivery | InstallRegistration | ChunkUpload


class ActionLog:
    """Ordered per-device intent log; ``seq`` is the commit tiebreaker."""

    __slots__ = ("actions",)

    def __init__(self) -> None:
        self.actions: list[Action] = []

    def _next_seq(self) -> int:
        return len(self.actions)

    def post_review(
        self, package: str, google_id: str, rating: int, timestamp: float
    ) -> None:
        self.actions.append(
            ReviewPost(self._next_seq(), package, google_id, rating, timestamp)
        )

    def promo_delivery(self, campaign_id: int, wants_review: bool) -> None:
        self.actions.append(
            PromoDelivery(self._next_seq(), campaign_id, wants_review)
        )

    def register_install(
        self,
        participant_id: str,
        install_id: str,
        android_id: str | None,
        timestamp: float,
    ) -> None:
        self.actions.append(
            InstallRegistration(
                self._next_seq(), participant_id, install_id, android_id, timestamp
            )
        )

    def upload_chunk(self, kind: str, data: bytes) -> None:
        self.actions.append(ChunkUpload(self._next_seq(), kind, data))


class RecordingUplink:
    """Phase-1 stand-in for the backend server.

    Exposes the same surface the mobile app talks to — participant
    validation, install registration, ``receive_chunk`` — but records
    the effects into an :class:`ActionLog` instead of touching the real
    server.  ``receive_chunk`` acknowledges with the hash of the bytes
    it received, exactly like :meth:`RacketStoreServer.receive_chunk`,
    so the buffer's hash-verified retry loop behaves identically
    (chunks dropped or corrupted by the transport are retried, recorded
    only when the ack matches).
    """

    __slots__ = ("_log",)

    def __init__(self, log: ActionLog) -> None:
        self._log = log

    def is_valid_participant(self, participant_id: str) -> bool:
        # Participant IDs reaching phase 1 were issued by the real
        # server at enrollment; validation re-happens implicitly when
        # the registration replays at commit.
        return True

    def register_install(
        self,
        participant_id: str,
        install_id: str,
        android_id: str | None,
        timestamp: float,
    ) -> None:
        self._log.register_install(participant_id, install_id, android_id, timestamp)

    def receive_chunk(self, kind: str, data: bytes) -> str:
        self._log.upload_chunk(kind, data)
        return chunk_hash(data)


# ---------------------------------------------------------------------------
# Frozen views and per-device overlays.
# ---------------------------------------------------------------------------

class ShardBoardView:
    """Device-local view over a :class:`FrozenBoard`.

    Job selection reproduces :meth:`CampaignBoard.next_job` (weighted
    most-remaining-first) against the start-of-day remaining counts,
    with a local overlay so one device's own takes reduce what it sees.
    Other devices' same-day takes are invisible by design — the
    frozen-view consistency model (module docstring).
    """

    __slots__ = ("_campaigns", "_taken_installs", "_taken_reviews")

    def __init__(self, board: FrozenBoard) -> None:
        self._campaigns = board.campaigns
        self._taken_installs: dict[int, int] = {}
        self._taken_reviews: dict[int, int] = {}

    def next_job(
        self, rng: np.random.Generator, exclude_packages: set[str] | None = None
    ) -> PromoJob | None:
        exclude = exclude_packages or set()
        open_campaigns = [
            (c, c.installs_remaining - self._taken_installs.get(c.campaign_id, 0))
            for c in self._campaigns
        ]
        open_campaigns = [
            (c, remaining)
            for c, remaining in open_campaigns
            if remaining > 0 and c.app_package not in exclude
        ]
        if not open_campaigns:
            return None
        weights = np.array([r for _c, r in open_campaigns], dtype=float)
        chosen, _rem = open_campaigns[
            int(rng.choice(len(open_campaigns), p=weights / weights.sum()))
        ]
        cid = chosen.campaign_id
        self._taken_installs[cid] = self._taken_installs.get(cid, 0) + 1
        wants_review = (
            chosen.reviews_remaining - self._taken_reviews.get(cid, 0) > 0
        )
        if wants_review:
            self._taken_reviews[cid] = self._taken_reviews.get(cid, 0) + 1
        return PromoJob(
            campaign_id=cid,
            app_package=chosen.app_package,
            wants_review=wants_review,
            min_rating=chosen.min_rating,
            retention_days=chosen.retention_days,
        )


@dataclass(frozen=True)
class DayParams:
    """Study-static inputs every device-day needs (shipped per shard)."""

    popular: tuple[App, ...]
    popular_weights: np.ndarray
    promoted: dict[str, App]
    review_volume_multiplier: float
    review_delay_multiplier: float
    loss_probability: float
    #: Optional seeded fault plan; ``None`` keeps the legacy lossy
    #: channel driven by the behaviour rng.
    fault_plan: FaultPlan | None = None


def build_day_params(engine) -> DayParams:
    """Snapshot the behaviour engine's static pools for phase-1 workers."""
    config = engine.config
    return DayParams(
        popular=tuple(engine.popular_apps()),
        popular_weights=engine.popular_weights(),
        promoted={
            package: engine.catalog.get(package)
            for package in engine.promoted_packages()
        },
        review_volume_multiplier=config.worker_review_volume_multiplier,
        review_delay_multiplier=config.worker_review_delay_multiplier,
        loss_probability=config.transport_loss_probability,
        fault_plan=config.fault_plan,
    )


# ---------------------------------------------------------------------------
# Task / result payloads.
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class DeviceDayTask:
    """Everything one device-day needs besides its seed."""

    index: int  # position in StudyData.participants
    device: SimDevice  # start-of-day view (SimDevice.day_view)
    app_state: AppState
    persona: Persona
    favorites: tuple[str, ...]
    pending: tuple[PendingReview, ...]
    reviewed: dict[str, set[str]]  # google_id -> packages reviewed
    needs_sign_in: bool
    final_day: bool


@dataclass(slots=True)
class DeviceDayResult:
    """Phase-1 output: day-local state deltas plus the action log."""

    index: int
    device_id: str
    device: SimDevice
    app_state: AppState
    pending: tuple[PendingReview, ...]
    reviewed: dict[str, set[str]]
    actions: tuple[Action, ...]


# ---------------------------------------------------------------------------
# Phase 1: the device-local day runner.
# ---------------------------------------------------------------------------

class DeviceDayRunner:
    """One device's behaviour for one day against frozen global state.

    This is the former ``BehaviorEngine._run_*`` family with every
    shared-state touch redirected: campaign jobs come from the
    :class:`ShardBoardView`, review dedup consults the device's own
    review mirror (Google accounts are device-owned, so the check is
    device-local), and review posts land in the :class:`ActionLog`.
    """

    def __init__(
        self,
        params: DayParams,
        board: ShardBoardView,
        rng: np.random.Generator,
        log: ActionLog,
        reviewed: dict[str, set[str]],
    ) -> None:
        self._params = params
        self._board = board
        self._rng = rng
        self._log = log
        self._reviewed = reviewed

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _waking_time(day_start: float) -> tuple[float, float]:
        """Waking interval: 7am - midnight local time."""
        return day_start + hours(7), day_start + hours(24)

    def _has_reviewed(self, google_id: str, package: str) -> bool:
        return package in self._reviewed.get(google_id, ())

    def _mark_reviewed(self, google_id: str, package: str) -> None:
        self._reviewed.setdefault(google_id, set()).add(package)

    # -- entry point -------------------------------------------------------
    def simulate_day(
        self,
        device: SimDevice,
        persona: Persona,
        day_start: float,
        favorites: tuple[str, ...],
        pending: list[PendingReview],
    ) -> None:
        """Advance one study day for one device (phase 1 only)."""
        self._run_sessions(device, persona, day_start, favorites)
        promo_installs = (
            self._run_promotion(device, persona, day_start, pending)
            if persona.is_worker
            else 0
        )
        self._run_churn(device, persona, day_start, pending, promo_installs)
        self._post_due_reviews(device, day_start + SECONDS_PER_DAY, pending)

    # -- ported day phases -------------------------------------------------
    def _run_sessions(
        self,
        device: SimDevice,
        persona: Persona,
        day_start: float,
        favorites: tuple[str, ...],
    ) -> None:
        rng = self._rng
        wake_start, wake_end = self._waking_time(day_start)
        for _ in range(persona.sample_sessions(rng)):
            session_start = float(rng.uniform(wake_start, wake_end - 60.0))
            t = session_start
            for _ in range(persona.sample_apps_in_session(rng)):
                if favorites and rng.random() < 0.8:
                    package = favorites[int(rng.integers(0, len(favorites)))]
                else:
                    candidates = list(device.installed)
                    package = candidates[int(rng.integers(0, len(candidates)))]
                if package not in device.installed:
                    continue
                duration = persona.sample_session_minutes(rng) * 60.0
                device.open_app(package, t, duration)
                t += duration + float(rng.uniform(1.0, 20.0))

    def _run_churn(
        self,
        device: SimDevice,
        persona: Persona,
        day_start: float,
        pending: list[PendingReview],
        promo_installs: int = 0,
    ) -> None:
        """Personal install/uninstall churn (Fig 9).  Uninstall volume
        tracks *total* install volume (promo installs included)."""
        rng = self._rng
        popular = self._params.popular
        wake_start, wake_end = self._waking_time(day_start)
        n_installs = persona.sample_daily_installs(rng)
        for _ in range(n_installs):
            # Retry a few draws: the owner picks something they do not
            # already have (avoids undercounting churn on small catalogs).
            app = None
            for _attempt in range(6):
                candidate = popular[
                    int(rng.choice(len(popular), p=self._params.popular_weights))
                ]
                if candidate.package not in device.installed:
                    app = candidate
                    break
            if app is None:
                continue
            timestamp = float(rng.uniform(wake_start, wake_end))
            device.install(
                app,
                timestamp=timestamp,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
            )
            if rng.random() < persona.open_after_install_prob:
                # The owner tries the app right away (clears its
                # Android stopped state).
                device.open_app(
                    app.package,
                    timestamp + 30.0,
                    persona.sample_session_minutes(rng) * 60.0,
                )
            if rng.random() < persona.review_prob_per_personal_install:
                delay_days = persona.sample_review_delay_days(rng)
                heapq.heappush(
                    pending,
                    PendingReview(
                        due=timestamp + delay_days * SECONDS_PER_DAY,
                        package=app.package,
                        min_rating=1,
                    ),
                )

        n_uninstalls = persona.sample_daily_uninstalls(rng, n_installs + promo_installs)
        removable = [
            rec.package
            for rec in device.user_installed()
            if rec.retention_until < day_start or not rec.promo_install
        ]
        rng.shuffle(removable)
        for package in removable[:n_uninstalls]:
            # An app installed earlier the same day must be uninstalled
            # *after* its install event (the delta stream is ordered).
            earliest = max(
                wake_start, device.installed[package].install_time + 120.0
            )
            if earliest >= wake_end:
                continue
            device.uninstall(package, float(rng.uniform(earliest, wake_end)))

    def _run_promotion(
        self,
        device: SimDevice,
        persona: Persona,
        day_start: float,
        pending: list[PendingReview],
    ) -> int:
        """Pull jobs from the frozen board view: install, schedule the
        paid review, sometimes stop the app afterwards (§6.3).  Returns
        the number of promo installs performed."""
        rng = self._rng
        params = self._params
        wake_start, wake_end = self._waking_time(day_start)

        # Retention checks: clients demand proof the app stays installed
        # and gets used, so workers briefly open a couple of promoted
        # apps most days (§6.3 retention installs).
        promos = device.promo_installed()
        if promos:
            for _ in range(int(rng.integers(0, 3))):
                record = promos[int(rng.integers(0, len(promos)))]
                device.open_app(
                    record.package,
                    float(rng.uniform(wake_start, wake_end - 300.0)),
                    float(rng.uniform(30.0, 240.0)),
                )

        installs_done = 0
        for _ in range(persona.sample_promo_installs(rng)):
            job = self._board.next_job(rng, exclude_packages=device.installed_packages())
            if job is None:
                return installs_done
            self._log.promo_delivery(job.campaign_id, job.wants_review)
            timestamp = float(rng.uniform(wake_start, wake_end))
            device.install(
                params.promoted[job.app_package],
                timestamp=timestamp,
                grant_probability=persona.dangerous_permission_grant_prob,
                rng=rng,
                promo=True,
                retention_days=job.retention_days,
            )
            installs_done += 1
            if rng.random() < persona.open_after_install_prob:
                device.open_app(job.app_package, timestamp + 30.0, 90.0)
            if job.wants_review and rng.random() < (
                persona.review_prob_per_promo_install
                * params.review_volume_multiplier
            ):
                delay_days = (
                    persona.sample_review_delay_days(rng)
                    * params.review_delay_multiplier
                )
                heapq.heappush(
                    pending,
                    PendingReview(
                        due=timestamp + delay_days * SECONDS_PER_DAY,
                        package=job.app_package,
                        min_rating=job.min_rating,
                        stop_after=bool(rng.random() < 0.35),
                    ),
                )
        return installs_done

    def _post_due_reviews(
        self, device: SimDevice, until: float, pending: list[PendingReview]
    ) -> None:
        """Post every scheduled review whose time has come, from a device
        account that has not reviewed that app yet (one review per
        account per app — the Play Store rule)."""
        rng = self._rng
        while pending and pending[0].due <= until:
            item = heapq.heappop(pending)
            if item.package not in device.installed:
                continue  # app uninstalled before the review came due
            gmail = device.gmail_accounts()
            fresh = [
                a for a in gmail if not self._has_reviewed(a.google_id, item.package)
            ]
            if not fresh:
                continue
            account = fresh[int(rng.integers(0, len(fresh)))]
            rating = max(item.min_rating, review_rating(rng, item.min_rating >= 4))
            self._log.post_review(item.package, account.google_id, rating, item.due)
            self._mark_reviewed(account.google_id, item.package)
            device.record_review_event(item.package, item.due)
            if item.stop_after:
                device.stop_app(item.package, item.due + 60.0)


# ---------------------------------------------------------------------------
# The shard worker (module-level and picklable — PAR001) whose only
# randomness comes from the pre-drawn integer seeds (PAR002).
# ---------------------------------------------------------------------------

def run_day_shard(
    day_start: float,
    tasks: tuple[DeviceDayTask, ...],
    seeds: tuple[int, ...],
    board: FrozenBoard,
    params: DayParams,
) -> tuple[DeviceDayResult, ...]:
    """Run phase 1 for one shard of device-days.

    One ``default_rng(seed)`` per device-day drives, in order: the
    sign-in install-ID mint, behaviour sampling, snapshot coverage
    windows, and transport loss — the whole day is a pure function of
    ``(task, seed, board, params)``.
    """
    results = []
    for task, seed in zip(tasks, seeds):
        results.append(_run_device_day(float(day_start), task, int(seed), board, params))
    return tuple(results)


def _run_device_day(
    day_start: float,
    task: DeviceDayTask,
    seed: int,
    board: FrozenBoard,
    params: DayParams,
) -> DeviceDayResult:
    rng = np.random.default_rng(seed)
    log = ActionLog()
    uplink = RecordingUplink(log)
    plan = params.fault_plan
    if plan is None:
        transport = LossyTransport(
            uplink, rng=rng, loss_probability=params.loss_probability
        )
        backoff_rng = None
    else:
        # Fault and backoff draws come from dedicated per-seed streams,
        # never the behaviour rng: the plan must only move *when* chunks
        # arrive, not change what the simulated day contains.
        transport = FaultyTransport(
            uplink,
            plan=plan,
            rng=np.random.default_rng([seed, FAULT_STREAM_TRANSPORT]),
            day=int(day_start // SECONDS_PER_DAY),
        )
        backoff_rng = np.random.default_rng([seed, FAULT_STREAM_BACKOFF])
    device = task.device
    app = RacketStoreApp.from_state(device, task.app_state)
    if plan is not None:
        app.buffer.retry_budget = plan.retry_budget
    if task.needs_sign_in:
        app.sign_in(
            day_start,
            rng=rng,
            server=uplink,
            transport=transport,
            backoff_rng=backoff_rng,
        )
    pending = list(task.pending)
    runner = DeviceDayRunner(params, ShardBoardView(board), rng, log, task.reviewed)
    runner.simulate_day(device, task.persona, day_start, task.favorites, pending)
    app.collect_day(
        day_start, rng=rng, transport=transport, backoff_rng=backoff_rng
    )
    if task.final_day:
        app.uninstall(
            day_start + SECONDS_PER_DAY,
            transport=transport,
            backoff_rng=backoff_rng,
        )
        if plan is not None:
            # Study-close reconciliation for this install: dead letters
            # replay and the channel heals, so every sealed chunk
            # reaches the uplink log — faults delay deliveries, they
            # never erase them.
            app.buffer.requeue_dead_letters()
            transport.heal()
            app.buffer.drain(
                transport,
                now=day_start + SECONDS_PER_DAY,
                deadline=day_start + 2 * SECONDS_PER_DAY,
                rng=backoff_rng,
            )
    return DeviceDayResult(
        index=task.index,
        device_id=device.device_id,
        device=device,
        app_state=app.snapshot_state(),
        pending=tuple(pending),
        reviewed=task.reviewed,
        actions=tuple(log.actions),
    )


# ---------------------------------------------------------------------------
# Phase 2: the global commit.
# ---------------------------------------------------------------------------

def commit_day(
    results: list[DeviceDayResult],
    *,
    board: CampaignBoard,
    review_store,
    server,
) -> None:
    """Apply every device's action log in ``(device_id, seq)`` order.

    Replaying the same logs onto an identical world snapshot produces
    an identical post-commit world: review posts are keyed upserts,
    registrations and chunk uploads append in replay order, and
    campaign deliveries are clamped to their targets (overshoot from
    the frozen-view model is absorbed here, never paid out twice).
    """
    for result in sorted(results, key=lambda r: r.device_id):
        for action in result.actions:
            if isinstance(action, ChunkUpload):
                try:
                    server.receive_chunk(action.kind, action.data)
                except FaultInjected:
                    # Injected server failure: no ack exists, so the
                    # chunk parks on the server's redelivery queue and
                    # retries on a later day (dedup makes that safe).
                    server.queue_redelivery(action.kind, action.data)
            elif isinstance(action, ReviewPost):
                review_store.post_review(
                    action.package, action.google_id, action.rating, action.timestamp
                )
            elif isinstance(action, PromoDelivery):
                board.apply_delivery(action.campaign_id, review=action.wants_review)
            elif isinstance(action, InstallRegistration):
                server.register_install(
                    participant_id=action.participant_id,
                    install_id=action.install_id,
                    android_id=action.android_id,
                    timestamp=action.timestamp,
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown action {action!r}")
