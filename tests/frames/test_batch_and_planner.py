"""Tests for the batch append fast path, the selectivity-aware query
planner, and contiguous column runs."""

import numpy as np
import pytest

from repro.frames import (
    ColumnFrame,
    ColumnRun,
    Field,
    QueryPlan,
    RecordSchema,
    compile_plan,
    mask_for,
    plan_key,
)
from repro.frames.frame import SchemaMismatchError

RUN_SCHEMA = RecordSchema(
    "run",
    (
        Field("install_id", "str"),
        Field("start", "float"),
        Field("count", "int"),
        Field("active", "bool"),
        Field("label", "str", nullable=True),
    ),
)


def _docs(n=8):
    return [
        {
            "install_id": f"i{k % 3}",
            "start": float(k) * 10.0,
            "count": k,
            "active": k % 2 == 0,
            "label": None if k % 4 == 0 else f"l{k}",
        }
        for k in range(n)
    ]


def _typed(docs=None):
    frame = ColumnFrame(RUN_SCHEMA)
    frame.extend_batch(docs if docs is not None else _docs())
    return frame


class TestExtendBatch:
    def test_matches_per_document_appends(self):
        docs = _docs()
        batch = _typed(docs)
        serial = ColumnFrame(RUN_SCHEMA)
        for doc in docs:
            serial.append(doc)
        assert len(batch) == len(serial) == len(docs)
        assert [batch.row(i) for i in range(len(docs))] == docs
        assert [serial.row(i) for i in range(len(docs))] == docs

    def test_missing_field_raises_and_leaves_frame_untouched(self):
        frame = _typed()
        before = [frame.row(i) for i in range(len(frame))]
        bad = _docs(3)
        del bad[1]["start"]
        with pytest.raises(SchemaMismatchError):
            frame.extend_batch(bad)
        assert len(frame) == len(before)
        assert [frame.row(i) for i in range(len(frame))] == before

    def test_extra_field_raises_and_leaves_frame_untouched(self):
        frame = _typed()
        before = len(frame)
        bad = _docs(3)
        bad[2]["extra"] = 1
        with pytest.raises(SchemaMismatchError):
            frame.extend_batch(bad)
        assert len(frame) == before

    def test_swapped_field_same_width_raises(self):
        # Same key count as the schema but a wrong key: the per-column
        # extraction must catch what the width check cannot, and roll
        # the partially extended columns back.
        frame = _typed()
        before = [frame.row(i) for i in range(len(frame))]
        bad = _docs(2)
        bad[1]["wrong"] = bad[1].pop("label")
        with pytest.raises(SchemaMismatchError):
            frame.extend_batch(bad)
        assert [frame.row(i) for i in range(len(frame))] == before

    def test_non_mapping_documents_raise(self):
        frame = _typed()
        with pytest.raises(SchemaMismatchError):
            frame.extend_batch([_docs(1)[0], 42])

    def test_generic_batch_discovers_columns_with_backfill(self):
        frame = ColumnFrame()
        frame.extend_batch([{"a": 1}, {"a": 2, "b": "x"}])
        frame.extend_batch([{"c": True}])
        assert frame.row(0) == {"a": 1}
        assert frame.row(1) == {"a": 2, "b": "x"}
        assert frame.row(2) == {"c": True}

    def test_generic_non_mapping_raises_before_mutation(self):
        frame = ColumnFrame()
        frame.extend_batch([{"a": 1}])
        with pytest.raises(SchemaMismatchError):
            frame.extend_batch([{"b": 2}, "not-a-mapping"])
        assert len(frame) == 1
        assert frame.row(0) == {"a": 1}


class TestPlanner:
    def test_plan_key_is_shape_not_values(self):
        a = {"install_id": "i1", "start": {"$gte": 1.0}}
        b = {"install_id": "i2", "start": {"$gte": 99.0}}
        assert plan_key(a) == plan_key(b)
        assert plan_key(a) != plan_key({"install_id": "i1"})

    def test_predicates_ordered_by_selectivity(self):
        query = {
            "label": {"$exists": True},
            "start": {"$gte": 10.0},
            "install_id": "i1",
            "count": {"$ne": 3},
        }
        plan = compile_plan(query)
        ops = [op for _field, op, _plain in plan.entries]
        assert ops == ["$eq", "$gte", "$exists", "$ne"]

    @pytest.mark.parametrize(
        "query",
        [
            {"install_id": "i1"},
            {"start": {"$gte": 20.0, "$lt": 60.0}},
            {"active": True, "count": {"$gt": 2}},
            {"label": {"$exists": False}},
            {"install_id": {"$in": ["i0", "i2"]}, "start": {"$lte": 50.0}},
            {"count": {"$ne": 4}},
        ],
    )
    def test_positions_match_mask_for(self, query):
        frame = _typed()
        plan = compile_plan(query)
        expected = np.nonzero(mask_for(frame, query))[0]
        assert plan.positions(frame, query).tolist() == expected.tolist()
        assert plan.count(frame, query) == len(expected)

    def test_seed_is_reverified_not_trusted(self):
        # A seed is a candidate superset: positions that fail the
        # predicates must be filtered out, whatever the seed claims.
        frame = _typed()
        query = {"install_id": "i1"}
        expected = np.nonzero(mask_for(frame, query))[0].tolist()
        seeded = compile_plan(query).positions(
            frame, query, seed=list(range(len(frame)))
        )
        assert seeded.tolist() == expected

    def test_narrow_paths_agree_with_and_without_column_shadow(self):
        docs = _docs(12)
        query = {"start": {"$gte": 30.0}, "install_id": "i0"}
        fresh = _typed(docs)
        seed = list(range(len(fresh)))
        raw = compile_plan(query).positions(fresh, query, seed=seed).tolist()
        warmed = _typed(docs)
        warmed.column("start")  # materialize the numpy shadow
        warmed.column("install_id")
        vectorized = (
            compile_plan(query).positions(warmed, query, seed=seed).tolist()
        )
        assert raw == vectorized

    def test_unknown_operator_raises_at_evaluation_not_compile(self):
        frame = _typed()
        query = {"install_id": {"$regex": "i.*"}}
        plan = compile_plan(query)  # must not raise
        assert isinstance(plan, QueryPlan)
        with pytest.raises(ValueError, match="regex"):
            plan.positions(frame, query)


class TestColumnRun:
    def test_run_slices_are_contiguous_views_of_the_frame(self):
        frame = _typed()
        positions = [1, 3, 5]
        run = frame.run(positions)
        assert isinstance(run, ColumnRun)
        assert len(run) == 3
        assert run.column("start").tolist() == [10.0, 30.0, 50.0]
        assert run.cells("label") == [frame.values("label")[p] for p in positions]
        assert [dict(row) for row in run] == [frame.row(p) for p in positions]
