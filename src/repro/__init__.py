"""RacketStore reproduction: measurements of ASO deception in Google
Play via mobile and app usage (Hernandez et al., IMC 2021).

Subpackages
-----------
``repro.simulation``
    Agent-based cohort simulator substituting for the 803 recruited
    participant devices, calibrated to every statistic the paper reports.
``repro.platform``
    The RacketStore platform: mobile-app collectors, buffer/transport,
    backend server, document store, Appendix-A device fingerprinting.
``repro.playstore`` / ``repro.virustotal``
    Google Play (catalog, rank, reviews, crawlers) and VirusTotal
    (62-engine panel) substrates.
``repro.ml`` / ``repro.statstests``
    From-scratch ML algorithms (XGB, RF, LR, KNN, LVQ, SVM, SMOTE, CV,
    metrics) and the §6 statistical-test battery.
``repro.core``
    The paper's contribution: §7.1/§8.1 features, §7.2 labeling, app and
    device classifiers, the end-to-end pipeline, on-device detection.
``repro.analysis`` / ``repro.experiments``
    §6 measurement analyses and per-table/figure experiment runners.

Quickstart
----------
>>> from repro.simulation import SimulationConfig, run_study
>>> from repro.core import DetectionPipeline
>>> data = run_study(SimulationConfig.small())
>>> result = DetectionPipeline(n_splits=5).run(data)
>>> result.app_evaluation.best_algorithm()  # doctest: +SKIP
'XGB'
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
