"""Ablation: engagement features vs static metadata (DESIGN.md §5).

The paper argues the *usage/engagement* features (reviews-from-device,
install-to-review, foreground use) are what detect ASO work, while
static metadata (permissions, VT flags) cannot (Figs 11-12's negative
results).  This bench retrains the device classifier on feature subsets
and compares.
"""

import numpy as np

from repro.core.device_classifier import DEVICE_ALGORITHMS
from repro.experiments.common import ExperimentReport
from repro.ml import cross_validate
from repro.reporting import render_table

ENGAGEMENT_FEATURES = (
    "n_stopped_apps",
    "daily_installs",
    "daily_uninstalls",
    "n_gmail_accounts",
    "n_non_gmail_accounts",
    "n_account_types",
    "n_installed_and_reviewed",
    "total_apps_reviewed",
    "total_reviews",
    "reviews_per_account_mean",
    "apps_used_per_day",
    "app_suspiciousness",
)
METADATA_FEATURES = (
    "n_preinstalled_apps",
    "n_user_installed_apps",
    "snapshots_per_day",
)


def _subset(dataset, names):
    columns = [dataset.feature_names.index(n) for n in names]
    return dataset.X[:, columns]


def test_ablation_feature_families(benchmark, workbench, pipeline_result, emit):
    dataset = pipeline_result.device_dataset
    results = {}
    rows = []
    for label, names in (
        ("all", dataset.feature_names),
        ("engagement-only", ENGAGEMENT_FEATURES),
        ("metadata-only", METADATA_FEATURES),
    ):
        cv = cross_validate(
            DEVICE_ALGORITHMS(0)["XGB"],
            _subset(dataset, names),
            dataset.y,
            n_splits=10,
            resample="smote",
            random_state=0,
        )
        results[label] = cv.f1
        rows.append((label, len(names), cv.precision, cv.recall, cv.f1))

    benchmark.pedantic(
        cross_validate,
        args=(DEVICE_ALGORITHMS(0)["XGB"], _subset(dataset, ENGAGEMENT_FEATURES), dataset.y),
        kwargs={"n_splits": 10, "resample": "smote", "random_state": 0},
        rounds=1,
        iterations=1,
    )
    emit(
        ExperimentReport(
            "ablation_features",
            "Device classifier by feature family (engagement vs metadata)",
            lines=[render_table(["features", "n", "precision", "recall", "F1"], rows)],
            metrics=results,
        )
    )
    # Engagement features carry the detector; metadata alone lags well
    # behind (the paper's Figs 11-12 negative results).
    assert results["engagement-only"] >= results["all"] - 0.03
    assert results["metadata-only"] <= results["engagement-only"] - 0.05
