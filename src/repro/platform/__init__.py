"""RacketStore platform substrate: the mobile app's collectors and data
buffer, the transport channel, the backend server with its document
store, and the Appendix-A snapshot fingerprinting."""

from .api import ApiRequest, ApiResponse, RacketStoreApi
from .buffer import BufferedChunk, DataBuffer, chunk_hash
from .dashboard import Dashboard, InstallHealth, ValidationIssue
from .errors import Throttled, UploadError
from .fingerprint import (
    ACCOUNT_JACCARD_THRESHOLD,
    APP_JACCARD_THRESHOLD,
    DeviceCluster,
    InstallFingerprint,
    coalesce_installs,
    jaccard,
)
from .mobile_app import RacketStoreApp, SignInError
from .models import (
    PII_REGISTRY,
    AppChangeEvent,
    FastSnapshotRun,
    InitialSnapshot,
    InstalledAppInfo,
    PIIEntry,
    SlowSnapshotRun,
    record_from_dict,
    record_to_dict,
)
from .server import IngestStats, PaymentLedger, RacketStoreServer
from .store import Collection, DocumentStore
from .transport import LossyTransport, Transport

__all__ = [
    "ApiRequest",
    "ApiResponse",
    "RacketStoreApi",
    "BufferedChunk",
    "Dashboard",
    "InstallHealth",
    "ValidationIssue",
    "DataBuffer",
    "chunk_hash",
    "ACCOUNT_JACCARD_THRESHOLD",
    "APP_JACCARD_THRESHOLD",
    "DeviceCluster",
    "InstallFingerprint",
    "coalesce_installs",
    "jaccard",
    "RacketStoreApp",
    "SignInError",
    "PII_REGISTRY",
    "AppChangeEvent",
    "FastSnapshotRun",
    "InitialSnapshot",
    "InstalledAppInfo",
    "PIIEntry",
    "SlowSnapshotRun",
    "record_from_dict",
    "record_to_dict",
    "IngestStats",
    "PaymentLedger",
    "RacketStoreServer",
    "Collection",
    "DocumentStore",
    "LossyTransport",
    "Transport",
    "Throttled",
    "UploadError",
]
