"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``    run a study and print the cohort/dataset summary
``experiment``  regenerate one paper table/figure (``--list`` to enumerate)
``report``      regenerate every table/figure
``train``       train the app+device detectors and export them to JSON
``classify``    load exported detectors and scan a fresh simulated cohort
``dashboard``   print the internal dashboard overview + validation issues
``findings``    check every §6-§8 paper finding against a fresh run
``export-figures``  write the raw series behind each figure as CSV
``profile``     run a full study + report with tracing on; print the
                span-tree timing report and the top-N slowest spans
``bench``       speedup/determinism suites: ``ml`` (CV/forest/KNN serial
                vs parallel -> BENCH_ml.json), ``data`` (columnar data
                plane vs dict backend -> BENCH_data.json), ``lint``
                (serial vs parallel statan analysis -> BENCH_lint.json),
                ``sim`` (serial vs sharded day phases ->
                BENCH_sim.json), or ``all``
``chaos``       fault-injection gate: run the same seeded study under a
                clean plan and escalating fault plans (loss, corruption,
                ack loss, receive crashes, store rejections, overload)
                and assert the study digest is byte-identical at every
                worker count; ``--smoke`` for the CI-sized cohort
``lint``        run the repro.statan static analyzer (per-file and
                whole-program determinism/invariants rules) over the
                source tree; ``--n-jobs``/``--changed`` scale and scope
                the run

``simulate``/``report``/``train``/``profile`` accept ``--metrics-out
FILE`` to enable the metrics registry and archive its JSON export.
The global ``--n-jobs N`` flag (default: the ``REPRO_N_JOBS``
environment variable, else serial) fans simulation day phases, CV
folds, forest trees, and experiment cells out across N worker
processes; outputs are bit-identical at any worker count (DESIGN.md
§8, §12).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import obs
from .core.model_io import export_detector, import_detector
from .core.observations import build_observations
from .core.ondevice import OnDeviceDetector
from .experiments import EXPERIMENTS, Workbench, run_experiment, run_many
from .platform.dashboard import Dashboard
from .reporting import render_table
from .simulation import SimulationConfig, run_study
from .statan.cli import add_lint_arguments, run_lint

__all__ = ["main", "build_parser"]

_SCALES = ("small", "default", "paper")


def _config_for(scale: str, seed: int | None) -> SimulationConfig:
    config = {
        "small": SimulationConfig.small(),
        "default": SimulationConfig(),
        "paper": SimulationConfig.paper_scale(),
    }[scale]
    if seed is not None:
        config = config.scaled(seed=seed)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RacketStore (IMC 2021) reproduction toolkit",
    )
    parser.add_argument("--scale", choices=_SCALES, default="small",
                        help="cohort scale (default: small)")
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    parser.add_argument(
        "--n-jobs", type=int, default=None, metavar="N",
        help="worker processes for CV folds / forest trees / experiment "
        "cells (default: $REPRO_N_JOBS, else serial; <= 0 means all "
        "cores); outputs are identical at any worker count",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_metrics_out(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--metrics-out",
            default=None,
            metavar="FILE",
            help="enable the metrics registry and write its JSON export here",
        )

    simulate = sub.add_parser("simulate", help="run a study and summarise the dataset")
    add_metrics_out(simulate)

    experiment = sub.add_parser("experiment", help="regenerate one table/figure")
    experiment.add_argument("experiment_id", nargs="?", help="e.g. table1, fig07")
    experiment.add_argument("--list", action="store_true", help="list experiment ids")

    report = sub.add_parser("report", help="regenerate every table and figure")
    add_metrics_out(report)

    train = sub.add_parser("train", help="train detectors and export JSON models")
    train.add_argument("--out", default="detectors.json", help="output path")
    add_metrics_out(train)

    profile = sub.add_parser(
        "profile", help="run a study + every experiment under the profiler"
    )
    profile.add_argument(
        "--top", type=int, default=12, help="size of the slowest-spans table"
    )
    profile.add_argument(
        "--prometheus", action="store_true",
        help="also print the Prometheus text exposition",
    )
    add_metrics_out(profile)

    bench = sub.add_parser(
        "bench",
        help="speedup/determinism benchmarks; writes BENCH_<suite>.json",
    )
    bench.add_argument(
        "suite", nargs="?", choices=("ml", "data", "lint", "sim", "all"),
        default="ml",
        help="ml: serial-vs-parallel ML workloads; data: columnar "
        "data plane vs dict backend; lint: serial-vs-parallel statan "
        "analysis; sim: serial-vs-sharded simulation day phases; "
        "all: every suite (default: ml)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workload (ml suite defaults to two workers)",
    )
    bench.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_ml.json / BENCH_data.json; "
        "only valid for a single suite)",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="data/sim suites: speedup-floor file for the regression "
        "gate (default: bench-baseline.json when --smoke; skipped if "
        "missing)",
    )

    classify = sub.add_parser("classify", help="scan a fresh cohort with exported models")
    classify.add_argument("--models", default="detectors.json", help="exported models path")

    sub.add_parser("dashboard", help="print the data-collection dashboard")

    sub.add_parser("findings", help="check every §6-§8 paper finding")

    export = sub.add_parser(
        "export-figures", help="write the raw series behind each figure as CSV"
    )
    export.add_argument("--out", default="figure_data", help="output directory")

    write_exp = sub.add_parser(
        "write-experiments", help="regenerate EXPERIMENTS.md from a fresh run"
    )
    write_exp.add_argument("--out", default="EXPERIMENTS.md", help="output path")

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection gate: same seeded study under escalating "
        "fault plans must reproduce the clean study digest",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="CI-sized cohort (seconds per run)",
    )
    chaos.add_argument(
        "--out", default="CHAOS.json",
        help="JSON report path (written on failure too; default CHAOS.json)",
    )

    lint = sub.add_parser(
        "lint", help="run the statan determinism/invariants linter"
    )
    add_lint_arguments(lint)
    return parser


def _cmd_simulate(args) -> int:
    data = run_study(_config_for(args.scale, args.seed), n_jobs=args.n_jobs)
    eligible = data.eligible_participants(min_days=2)
    workers = [p for p in eligible if p.is_worker]
    print(
        render_table(
            ["metric", "value"],
            [
                ("participants", len(data.participants)),
                ("unique devices (fingerprinted)", len(data.server.unique_devices())),
                ("eligible devices (>=2 days)", len(eligible)),
                ("worker devices", len(workers)),
                ("regular devices", len(eligible) - len(workers)),
                ("snapshot records ingested", data.server.stats.records_inserted),
                ("reviews crawled", data.review_crawler.collected_total()),
                ("campaigns on the board", len(data.board.campaigns())),
                ("participant payout (USD)", round(data.server.total_payout_usd(), 2)),
            ],
        )
    )
    return 0


def _cmd_experiment(args) -> int:
    if args.list or not args.experiment_id:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.experiment_id not in EXPERIMENTS:
        print(
            f"error: unknown experiment {args.experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    workbench = Workbench(_config_for(args.scale, args.seed), n_jobs=args.n_jobs)
    print(run_experiment(args.experiment_id, workbench).render())
    return 0


def _cmd_report(args) -> int:
    workbench = Workbench(_config_for(args.scale, args.seed), n_jobs=args.n_jobs)
    for report in run_many(list(EXPERIMENTS), workbench, n_jobs=args.n_jobs):
        print(report.render())
        print()
    return 0


def _cmd_train(args) -> int:
    workbench = Workbench(_config_for(args.scale, args.seed), n_jobs=args.n_jobs)
    result = workbench.pipeline_result
    payload = (
        '{"app": '
        + export_detector(result.app_model)
        + ', "device": '
        + export_detector(result.device_model)
        + "}"
    )
    with open(args.out, "w") as handle:
        handle.write(payload)
    print(f"wrote app + device detectors to {args.out}")
    rows = result.device_evaluation.table_rows()
    print(render_table(["algorithm", "precision", "recall", "F1"], rows[:1]))
    return 0


def _cmd_classify(args) -> int:
    with open(args.models) as handle:
        payload = json.load(handle)
    app_model = import_detector(json.dumps(payload["app"]))
    device_model = import_detector(json.dumps(payload["device"]))
    detector = OnDeviceDetector(app_model, device_model)

    data = run_study(_config_for(args.scale, args.seed), n_jobs=args.n_jobs)
    observations = build_observations(data, data.eligible_participants(min_days=2))
    correct = 0
    flagged = 0
    for obs in observations:
        report = detector.scan(obs, data.catalog, data.vt_client)
        flagged += report.device_flagged
        correct += report.device_flagged == obs.is_worker
    print(
        f"scanned {len(observations)} devices: {flagged} flagged, "
        f"accuracy vs ground truth {correct / len(observations):.1%}"
    )
    return 0


def _cmd_dashboard(args) -> int:
    data = run_study(_config_for(args.scale, args.seed), n_jobs=args.n_jobs)
    dashboard = Dashboard(data.server)
    overview = dashboard.overview()
    print(render_table(["metric", "value"], sorted(overview.items())))
    issues = dashboard.validate()
    print(f"validation issues: {len(issues)}")
    for issue in issues[:10]:
        print(f"  [{issue.install_id}] {issue.check}: {issue.detail}")
    lagging = dashboard.lagging_installs()
    print(f"installs below 100 snapshots/day: {len(lagging)}")
    return 0


def _cmd_findings(args) -> int:
    from .experiments.findings import check_findings

    workbench = Workbench(_config_for(args.scale, args.seed), n_jobs=args.n_jobs)
    results = check_findings(workbench)
    print(
        render_table(
            ["id", "section", "status", "measured"],
            [r.row() for r in results],
        )
    )
    holding = sum(r.holds for r in results)
    print(f"{holding}/{len(results)} paper findings hold on this run")
    return 0 if holding == len(results) else 1


def _cmd_write_experiments(args) -> int:
    from .experiments.report_writer import generate_experiments_md

    workbench = Workbench(_config_for(args.scale, args.seed))
    generate_experiments_md(workbench, args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_profile(args) -> int:
    obs.configure(metrics=True, tracing=True)
    workbench = Workbench(_config_for(args.scale, args.seed))
    workbench.data  # simulation + ingest + crawl run under their own spans
    for experiment_id in EXPERIMENTS:
        run_experiment(experiment_id, workbench)

    tracer = obs.tracer()
    registry = obs.registry()
    print("== span tree (wall time) ==")
    print(tracer.render())
    print()
    print(f"== top {args.top} slowest spans ==")
    print(tracer.render_slowest(args.top))
    print()
    print("== pipeline counters ==")
    counters = registry.to_json()["counters"]
    rows = [(name, int(value)) for name, value in sorted(counters.items())]
    print(render_table(["counter", "value"], rows))
    print()
    print("== per-model fit time (seconds per CV fold) ==")
    fit_rows = []
    for hist in registry.series("ml_fit_seconds"):
        labels = dict(hist.labels)
        fit_rows.append(
            (
                labels.get("model", "?"),
                hist.count,
                round(hist.mean, 4),
                round(hist.quantile(0.95), 4),
                round(hist.sum, 3),
            )
        )
    print(render_table(["model", "folds", "mean", "p95", "total"],
                       sorted(fit_rows, key=lambda r: -r[4])))
    if args.prometheus:
        print()
        print(registry.render_prometheus())
    return 0


def _cmd_bench(args) -> int:
    from .benchmark import run_bench, run_data_bench, run_lint_bench, run_sim_bench

    seed = args.seed if args.seed is not None else 0
    if args.suite == "all" and args.out is not None:
        print("error: --out is ambiguous with suite 'all'", file=sys.stderr)
        return 2
    code = 0
    if args.suite in ("ml", "all"):
        code |= run_bench(
            seed=seed,
            n_jobs=args.n_jobs,
            smoke=args.smoke,
            out=args.out or "BENCH_ml.json",
        )
    if args.suite in ("data", "all"):
        code |= run_data_bench(
            seed=seed,
            smoke=args.smoke,
            out=args.out or "BENCH_data.json",
            baseline=args.baseline,
        )
    if args.suite in ("lint", "all"):
        code |= run_lint_bench(
            n_jobs=args.n_jobs,
            smoke=args.smoke,
            out=args.out or "BENCH_lint.json",
        )
    if args.suite in ("sim", "all"):
        code |= run_sim_bench(
            seed=seed,
            n_jobs=args.n_jobs,
            smoke=args.smoke,
            out=args.out or "BENCH_sim.json",
            baseline=args.baseline,
        )
    return code


def _cmd_chaos(args) -> int:
    from .faults.chaos import run_chaos

    return run_chaos(
        _config_for(args.scale, args.seed),
        smoke=args.smoke,
        n_jobs=args.n_jobs,
        out=args.out,
    )


def _cmd_export_figures(args) -> int:
    from .reporting.series import export_figure_data

    workbench = Workbench(_config_for(args.scale, args.seed))
    written = export_figure_data(workbench, args.out)
    print(
        render_table(
            ["figure", "rows"], sorted(written.items())
        )
    )
    print(f"wrote {len(written)} CSV files to {args.out}/")
    return 0


_COMMANDS = {
    "lint": run_lint,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "train": _cmd_train,
    "classify": _cmd_classify,
    "dashboard": _cmd_dashboard,
    "findings": _cmd_findings,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "export-figures": _cmd_export_figures,
    "write-experiments": _cmd_write_experiments,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # argparse already rejects unknown commands, so the handler lookup
    # lives outside any try/except: a KeyError raised *inside* a handler
    # must propagate instead of being misreported as an unknown command.
    handler = _COMMANDS[args.command]
    metrics_out = getattr(args, "metrics_out", None)
    was_enabled = obs.enabled()
    if metrics_out and not obs.metrics_enabled():
        obs.configure(metrics=True, tracing=True)
    try:
        code = handler(args)
        if metrics_out:
            try:
                with open(metrics_out, "w") as handle:
                    json.dump(
                        obs.registry().to_json(), handle, indent=2, sort_keys=True
                    )
            except OSError as exc:
                print(f"error: cannot write metrics to {metrics_out}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote metrics to {metrics_out}", file=sys.stderr)
    finally:
        # Commands (profile, --metrics-out) may enable observability;
        # restore the no-op default so an embedding process is unaffected.
        if not was_enabled and obs.enabled():
            obs.reset()
    return code


if __name__ == "__main__":
    sys.exit(main())
