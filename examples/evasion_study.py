#!/usr/bin/env python3
"""Evasion-cost study (§9 "Worker Strategy Evolution").

The paper argues the engagement features impose a detectability /
profit tradeoff: to evade, workers must wait longer before reviewing,
register fewer accounts, and post fewer reviews — all of which cut the
fraud they can deliver.  This example sweeps evasion strength and
measures (a) device-classifier recall against the evading workers and
(b) the review volume those workers still deliver.

Run:  python examples/evasion_study.py
"""

import sys

from repro.core import DetectionPipeline
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def run_with_evasion(delay_mult: float, volume_mult: float) -> tuple[float, float]:
    """Returns (worker recall, mean reviews delivered per worker device)."""
    config = SimulationConfig.small().scaled(
        worker_review_delay_multiplier=delay_mult,
        worker_review_volume_multiplier=volume_mult,
    )
    data = run_study(config)
    result = DetectionPipeline(n_splits=5).run(data)
    workers = result.worker_verdicts()
    recall = sum(1 for v in workers if v.predicted_worker) / max(len(workers), 1)

    observations = [o for o in result.observations if o.is_worker]
    mean_reviews = sum(o.total_account_reviews for o in observations) / max(
        len(observations), 1
    )
    return recall, mean_reviews


def main() -> int:
    print("Sweeping worker evasion strategies (delay x, volume x) ...\n")
    rows = []
    scenarios = [
        ("no evasion", 1.0, 1.0),
        ("2x slower reviews", 2.0, 1.0),
        ("4x slower reviews", 4.0, 1.0),
        ("half review volume", 1.0, 0.5),
        ("slow + half volume", 3.0, 0.5),
        ("deep evasion (5x slow, 25% vol)", 5.0, 0.25),
    ]
    for label, delay, volume in scenarios:
        recall, reviews = run_with_evasion(delay, volume)
        rows.append((label, delay, volume, f"{recall:.1%}", f"{reviews:.0f}"))
        print(f"  {label}: recall={recall:.1%}, reviews/device={reviews:.0f}")

    print()
    print(
        render_table(
            ["strategy", "delay x", "volume x", "worker recall", "reviews/device"],
            rows,
        )
    )
    print(
        "\nExpected tradeoff: evasion lowers detection recall only by also "
        "cutting the fraud volume delivered (reviews/device), i.e. worker "
        "profit — the §9 argument."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
