"""§6.3 app churn (Figure 9): daily install and uninstall events."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from .common import GroupComparison, compare_feature

__all__ = ["ChurnPoint", "ChurnResult", "compute_churn"]


@dataclass(frozen=True)
class ChurnPoint:
    """One device dot of the Figure 9 scatterplot."""

    install_id: str
    is_worker: bool
    daily_installs: float
    daily_uninstalls: float


@dataclass
class ChurnResult:
    """Figure 9 scatter data plus the two significance batteries."""

    points: list[ChurnPoint]
    installs: GroupComparison
    uninstalls: GroupComparison

    def high_churn_devices(self, threshold: float = 10.0) -> dict[str, int]:
        """Devices above the 10-apps/day churn line the paper draws."""
        worker = sum(
            1 for p in self.points if p.is_worker and p.daily_installs > threshold
        )
        regular = sum(
            1 for p in self.points if not p.is_worker and p.daily_installs > threshold
        )
        return {"worker": worker, "regular": regular}


def compute_churn(observations: list[DeviceObservation]) -> ChurnResult:
    points = [
        ChurnPoint(
            install_id=obs.install_id,
            is_worker=obs.is_worker,
            daily_installs=obs.daily_installs,
            daily_uninstalls=obs.daily_uninstalls,
        )
        for obs in observations
    ]
    worker = [p for p in points if p.is_worker]
    regular = [p for p in points if not p.is_worker]
    return ChurnResult(
        points=points,
        installs=compare_feature(
            "daily_installs",
            [p.daily_installs for p in worker],
            [p.daily_installs for p in regular],
        ),
        uninstalls=compare_feature(
            "daily_uninstalls",
            [p.daily_uninstalls for p in worker],
            [p.daily_uninstalls for p in regular],
        ),
    )
