"""Ablation: §7.2 labeling thresholds (DESIGN.md §5).

Sweeps the co-install threshold (paper: >= 5 worker devices) and the
popularity threshold for regular apps (paper: >= 15,000 reviews) and
reports dataset sizes and XGB F1 under each.
"""

from repro.core.app_classifier import APP_ALGORITHMS
from repro.core.datasets import build_app_dataset
from repro.core.labeling import LabelingConfig
from repro.experiments.common import ExperimentReport
from repro.ml import cross_validate
from repro.reporting import render_table


def test_ablation_labeling_thresholds(benchmark, workbench, emit):
    data = workbench.data
    observations = workbench.observations
    rows = []
    metrics = {}
    for min_devices in (2, 5, 10):
        config = LabelingConfig(
            min_worker_devices=min_devices,
            min_reviews_for_regular=data.config.popular_review_threshold,
        )
        dataset = build_app_dataset(data, observations, config)
        cv = cross_validate(
            APP_ALGORITHMS(0)["XGB"],
            dataset.X,
            dataset.y,
            n_splits=min(10, dataset.n_regular),
            random_state=0,
        )
        rows.append(
            (
                f"min co-install devices = {min_devices}",
                len(dataset.labeling.suspicious_apps),
                len(dataset.labeling.regular_apps),
                dataset.n_suspicious,
                dataset.n_regular,
                cv.f1,
            )
        )
        metrics[f"f1_min{min_devices}"] = cv.f1
        metrics[f"instances_min{min_devices}"] = float(len(dataset.y))

    benchmark.pedantic(
        build_app_dataset, args=(data, observations), rounds=1, iterations=1
    )
    emit(
        ExperimentReport(
            "ablation_labeling",
            "App-labeling threshold sweep (§7.2 rules)",
            lines=[
                render_table(
                    ["rule", "susp apps", "reg apps", "susp inst", "reg inst", "XGB F1"],
                    rows,
                )
            ],
            metrics=metrics,
        )
    )
    # Stricter co-install evidence shrinks the dataset but the classifier
    # stays strong — the labels are not the bottleneck.
    assert metrics["instances_min10"] <= metrics["instances_min2"]
    assert min(v for k, v in metrics.items() if k.startswith("f1_")) >= 0.9
