"""Model serialization: export trained detectors to JSON and back.

§9 proposes shipping pre-trained models inside pre-installed store
clients; that requires a portable, dependency-free model format.  The
boosted trees serialise to a nested-dict JSON document (feature index,
threshold, children, leaf weight) plus the imputer statistics, so a
deployed client can score without this library's training code.
"""

from __future__ import annotations

import json

import numpy as np

from ..ml.gradient_boosting import GradientBoostingClassifier, _BoostNode, _BoostTree
from ..ml.preprocessing import SimpleImputer
from .app_classifier import AppClassifier
from .device_classifier import DeviceClassifier

__all__ = [
    "export_boosted_model",
    "import_boosted_model",
    "export_detector",
    "import_detector",
]

FORMAT_VERSION = 1


def _node_to_dict(node: _BoostNode) -> dict:
    if node.is_leaf:
        return {"leaf": node.weight}
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: dict) -> _BoostNode:
    if "leaf" in payload:
        return _BoostNode(weight=float(payload["leaf"]))
    return _BoostNode(
        weight=0.0,
        feature=int(payload["feature"]),
        threshold=float(payload["threshold"]),
        left=_node_from_dict(payload["left"]),
        right=_node_from_dict(payload["right"]),
    )


def export_boosted_model(model: GradientBoostingClassifier) -> dict:
    """Serialise a fitted booster to a JSON-compatible dict."""
    if not hasattr(model, "trees_"):
        raise ValueError("model is not fitted")
    return {
        "format_version": FORMAT_VERSION,
        "type": "gradient_boosting",
        "learning_rate": model.learning_rate,
        "base_margin": model.base_margin_,
        "classes": [int(c) for c in model.classes_],
        "n_features": model.trees_[0].n_features_ if model.trees_ else 0,
        "trees": [_node_to_dict(tree.root_) for tree in model.trees_],
    }


def import_boosted_model(payload: dict) -> GradientBoostingClassifier:
    """Reconstruct a scoring-capable booster from its JSON form."""
    if payload.get("type") != "gradient_boosting":
        raise ValueError(f"not a boosted model payload: {payload.get('type')!r}")
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {payload.get('format_version')!r}")
    model = GradientBoostingClassifier(learning_rate=payload["learning_rate"])
    model.base_margin_ = float(payload["base_margin"])
    model.classes_ = np.asarray(payload["classes"])
    model._constant_class = len(model.classes_) == 1
    model.trees_ = []
    for tree_payload in payload["trees"]:
        tree = _BoostTree(
            max_depth=0, min_child_weight=0.0, reg_lambda=0.0, gamma=0.0,
            colsample=1.0, rng=np.random.default_rng(0),
        )
        tree.n_features_ = int(payload["n_features"])
        tree.root_ = _node_from_dict(tree_payload)
        model.trees_.append(tree)
    return model


def _imputer_to_dict(imputer: SimpleImputer) -> dict:
    return {
        "strategy": imputer.strategy,
        "fill_value": imputer.fill_value,
        "statistics": [float(v) for v in imputer.statistics_],
    }


def _imputer_from_dict(payload: dict) -> SimpleImputer:
    imputer = SimpleImputer(strategy=payload["strategy"], fill_value=payload["fill_value"])
    imputer.statistics_ = np.asarray(payload["statistics"], dtype=np.float64)
    return imputer


def export_detector(detector: AppClassifier | DeviceClassifier) -> str:
    """Serialise a fitted app/device detector (imputer + booster) to JSON."""
    kind = "app" if isinstance(detector, AppClassifier) else "device"
    payload = {
        "format_version": FORMAT_VERSION,
        "detector": kind,
        "feature_names": list(detector.feature_names),
        "imputer": _imputer_to_dict(detector._imputer),
        "model": export_boosted_model(detector._model),
    }
    return json.dumps(payload)


def import_detector(text: str) -> AppClassifier | DeviceClassifier:
    """Reconstruct a detector exported with :func:`export_detector`."""
    payload = json.loads(text)
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported detector format version")
    detector: AppClassifier | DeviceClassifier
    detector = AppClassifier() if payload["detector"] == "app" else DeviceClassifier()
    detector.feature_names = tuple(payload["feature_names"])
    detector._imputer = _imputer_from_dict(payload["imputer"])
    detector._model = import_boosted_model(payload["model"])
    return detector
