"""Registry mapping experiment ids to their runners.

One entry per table/figure the paper's evaluation reports (DESIGN.md §4
holds the full index).  ``run_experiment`` is the single entry point the
benchmark harness and examples call.
"""

from __future__ import annotations

import time
from typing import Callable

from .. import obs
from .classifiers import (
    run_fig13_app_importance,
    run_fig14_device_importance,
    run_fig15_suspiciousness,
    run_table1_app_classifier,
    run_table2_device_classifier,
    run_table3_pii_registry,
)
from .common import ExperimentReport, Workbench, shared_workbench
from .measurements import (
    run_fig00_dataset_overview,
    run_fig01_timelines,
    run_fig04_engagement,
    run_fig05_accounts,
    run_fig06_installed_reviewed,
    run_fig07_install_to_review,
    run_fig08_stopped_apps,
    run_fig09_churn,
    run_fig10_daily_use,
    run_fig11_permissions,
    run_fig12_malware,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[[Workbench], ExperimentReport]] = {
    "fig00": run_fig00_dataset_overview,
    "fig01": run_fig01_timelines,
    "fig04": run_fig04_engagement,
    "fig05": run_fig05_accounts,
    "fig06": run_fig06_installed_reviewed,
    "fig07": run_fig07_install_to_review,
    "fig08": run_fig08_stopped_apps,
    "fig09": run_fig09_churn,
    "fig10": run_fig10_daily_use,
    "fig11": run_fig11_permissions,
    "fig12": run_fig12_malware,
    "table1": run_table1_app_classifier,
    "fig13": run_fig13_app_importance,
    "table2": run_table2_device_classifier,
    "fig14": run_fig14_device_importance,
    "fig15": run_fig15_suspiciousness,
    "table3": run_table3_pii_registry,
}


def run_experiment(experiment_id: str, workbench: Workbench | None = None) -> ExperimentReport:
    """Run one experiment against a (shared by default) workbench."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    workbench = workbench or shared_workbench()
    started = time.perf_counter()
    with obs.trace(f"experiment.{experiment_id}"):
        report = EXPERIMENTS[experiment_id](workbench)
    elapsed = time.perf_counter() - started
    obs.histogram(
        "experiment_seconds",
        {"experiment": experiment_id},
        help="per-experiment wall time",
    ).observe(elapsed)
    obs.get_logger("experiments").info(
        "experiment_complete", id=experiment_id, seconds=round(elapsed, 3)
    )
    return report


def run_all(workbench: Workbench | None = None) -> list[ExperimentReport]:
    """Run every registered experiment in id order."""
    workbench = workbench or shared_workbench()
    return [EXPERIMENTS[eid](workbench) for eid in EXPERIMENTS]
