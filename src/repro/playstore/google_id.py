"""Gmail-account -> Google-ID resolution (the paper's "Google ID crawler").

§5: the authors found that responses of Gmail's e-mail search
functionality embed the account's Google ID, letting a third party map
any Gmail address to the ID under which its Play reviews are posted
(reported to Google VRP as issue 156369357; closed as intended
behaviour).  We simulate that directory: accounts registered with the
simulated Google backend get a stable numeric ID, lookups occasionally
fail (deleted/suspended accounts), and the crawler memoises results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["GmailDirectory", "GoogleIdCrawler", "LookupStats"]


def _derive_google_id(email: str) -> str:
    """Stable 21-digit Google-ID-shaped identifier for an email."""
    digest = hashlib.sha256(email.encode()).hexdigest()
    return str(int(digest[:18], 16) % 10**21).zfill(21)


class GmailDirectory:
    """The Google-side registry of Gmail accounts.

    ``register`` creates the account (idempotent); ``resolve`` is the
    internal truth the crawler probes via the search-functionality leak.
    """

    def __init__(self) -> None:
        self._ids: dict[str, str] = {}
        self._suspended: set[str] = set()

    def register(self, email: str) -> str:
        if not email.endswith("@gmail.com"):
            raise ValueError(f"not a Gmail address: {email!r}")
        if email not in self._ids:
            self._ids[email] = _derive_google_id(email)
        return self._ids[email]

    def suspend(self, email: str) -> None:
        """Mark an account suspended — lookups stop resolving (Google's
        anti-abuse action against detected fraud accounts)."""
        if email not in self._ids:
            raise KeyError(email)
        self._suspended.add(email)

    def is_registered(self, email: str) -> bool:
        return email in self._ids

    def is_suspended(self, email: str) -> bool:
        return email in self._suspended

    def resolve(self, email: str) -> str | None:
        if email in self._suspended:
            return None
        return self._ids.get(email)

    def __len__(self) -> int:
        return len(self._ids)


@dataclass
class LookupStats:
    requests: int = 0
    hits: int = 0
    misses: int = 0
    cached: int = 0


class GoogleIdCrawler:
    """Maps Gmail addresses to Google IDs via the email-search leak.

    Mirrors the paper's crawler: one request per address, memoised, with
    misses for unregistered or suspended accounts.
    """

    def __init__(self, directory: GmailDirectory) -> None:
        self._directory = directory
        self._cache: dict[str, str | None] = {}
        self.stats = LookupStats()

    def lookup(self, email: str) -> str | None:
        if email in self._cache:
            self.stats.cached += 1
            return self._cache[email]
        self.stats.requests += 1
        google_id = self._directory.resolve(email)
        if google_id is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        self._cache[email] = google_id
        return google_id

    def lookup_many(self, emails) -> dict[str, str]:
        """Resolve a batch, returning only the successful mappings."""
        out: dict[str, str] = {}
        for email in emails:
            google_id = self.lookup(email)
            if google_id is not None:
                out[email] = google_id
        return out
