"""Tests for prior-work baselines and model serialization."""

import json

import numpy as np
import pytest

from repro.core.app_classifier import AppClassifier
from repro.core.baselines import (
    BurstDetector,
    LockstepDetector,
    evaluate_baseline_on_devices,
)
from repro.core.datasets import build_app_dataset
from repro.core.model_io import (
    export_boosted_model,
    export_detector,
    import_boosted_model,
    import_detector,
)
from repro.ml import GradientBoostingClassifier
from repro.playstore.reviews import ReviewStore


class TestLockstepDetector:
    def make_lockstep_store(self):
        """3 accounts reviewing the same 4 apps within hours = lockstep."""
        store = ReviewStore()
        for i, account in enumerate(("w1", "w2", "w3")):
            for j in range(4):
                store.post_review(f"app{j}", account, 5, j * 86400.0 + i * 3600.0)
        # One organic account with unrelated reviews months apart.
        for j in range(3):
            store.post_review(f"other{j}", "organic", 4, j * 90 * 86400.0)
        return store

    def test_lockstep_group_flagged(self):
        store = self.make_lockstep_store()
        detector = LockstepDetector(min_common_apps=3, min_group_size=3)
        verdicts = {v.google_id: v for v in detector.detect(store, ["w1", "w2", "w3", "organic"])}
        assert verdicts["w1"].flagged and verdicts["w2"].flagged and verdicts["w3"].flagged
        assert not verdicts["organic"].flagged

    def test_time_window_breaks_lockstep(self):
        store = ReviewStore()
        # Same apps but weeks apart: no lockstep.
        for i, account in enumerate(("a", "b", "c")):
            for j in range(4):
                store.post_review(f"app{j}", account, 5, j * 86400.0 + i * 30 * 86400.0)
        detector = LockstepDetector(min_common_apps=3, time_window_days=7.0)
        assert not any(v.flagged for v in detector.detect(store, ["a", "b", "c"]))

    def test_small_group_not_flagged(self):
        store = ReviewStore()
        for i, account in enumerate(("a", "b")):
            for j in range(4):
                store.post_review(f"app{j}", account, 5, j * 86400.0 + i * 60.0)
        detector = LockstepDetector(min_common_apps=3, min_group_size=3)
        assert not any(v.flagged for v in detector.detect(store, ["a", "b"]))


class TestBurstDetector:
    def test_burst_flagged(self):
        store = ReviewStore()
        for j in range(8):
            store.post_review(f"app{j}", "burster", 5, j * 3600.0)  # 8 in 7 hours
        detector = BurstDetector(window_days=3.0, min_burst_reviews=5)
        verdict = detector.detect(store, ["burster"])[0]
        assert verdict.flagged
        assert verdict.score >= 5

    def test_slow_reviewer_not_flagged(self):
        store = ReviewStore()
        for j in range(8):
            store.post_review(f"app{j}", "slow", 5, j * 30 * 86400.0)
        detector = BurstDetector(window_days=3.0, min_burst_reviews=5)
        assert not detector.detect(store, ["slow"])[0].flagged

    def test_negative_bursts_not_flagged(self):
        """A burst of 1-star reviews (review-bombing) is not promotion."""
        store = ReviewStore()
        for j in range(8):
            store.post_review(f"app{j}", "bomber", 1, j * 3600.0)
        detector = BurstDetector(min_positive_fraction=0.8)
        assert not detector.detect(store, ["bomber"])[0].flagged

    def test_empty_account(self):
        detector = BurstDetector()
        assert detector.detect(ReviewStore(), ["ghost"])[0].score == 0.0


class TestBaselineOnStudy:
    def test_baselines_miss_organic_workers(self, study, observations):
        """The paper's motivating claim: burst/lockstep detectors catch
        dedicated workers far better than organic ones."""
        detector = BurstDetector(window_days=3.0, min_burst_reviews=5)
        rates = evaluate_baseline_on_devices(detector, study.review_store, observations)
        assert rates["recall_dedicated"] >= rates["recall_organic"]
        assert rates["fpr_regular"] <= 0.3

    def test_rates_are_fractions(self, study, observations):
        detector = BurstDetector()
        rates = evaluate_baseline_on_devices(detector, study.review_store, observations)
        for value in rates.values():
            assert 0.0 <= value <= 1.0


class TestModelIO:
    def test_booster_roundtrip_predictions(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(n_estimators=15, random_state=0).fit(X, y)
        clone = import_boosted_model(export_boosted_model(model))
        np.testing.assert_allclose(
            clone.decision_function(X), model.decision_function(X), rtol=1e-12
        )
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))

    def test_export_is_json_serializable(self, blobs):
        X, y = blobs
        model = GradientBoostingClassifier(n_estimators=5, random_state=0).fit(X, y)
        text = json.dumps(export_boosted_model(model))
        assert "gradient_boosting" in text

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError):
            export_boosted_model(GradientBoostingClassifier())

    def test_wrong_payload_rejected(self):
        with pytest.raises(ValueError):
            import_boosted_model({"type": "random_forest"})

    def test_detector_roundtrip(self, study, observations):
        dataset = build_app_dataset(study, observations)
        detector = AppClassifier(random_state=0).fit(dataset)
        restored = import_detector(export_detector(detector))
        np.testing.assert_array_equal(
            restored.predict(dataset.X), detector.predict(dataset.X)
        )
        assert restored.feature_names == detector.feature_names

    def test_detector_roundtrip_handles_nan(self, study, observations):
        dataset = build_app_dataset(study, observations, impute=False)
        detector = AppClassifier(random_state=0).fit(dataset)
        restored = import_detector(export_detector(detector))
        row = dataset.X[:3].copy()
        np.testing.assert_array_equal(restored.predict(row), detector.predict(row))
