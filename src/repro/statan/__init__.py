"""repro.statan — AST-based determinism & invariants linter.

A dependency-free static analyzer guarding the invariants that make
seeded simulator runs byte-identical:

* **DET001** — unseeded / global / hidden-fallback randomness;
* **DET002** — wall-clock reads bypassing the virtual clock;
* **DET003** — iteration order taken from sets or filesystem listings;
* **BUG001** — mutable default arguments;
* **ML001**  — float equality comparisons in numeric code;
* **OBS001** — ``obs.configure()`` without ``obs.reset()``.

Run it as ``python -m repro lint [--format json]``.  Inline
suppressions use ``# statan: disable=RULE`` (same line) or
``# statan: disable-file=RULE``; pre-existing findings live in the
committed ``statan-baseline.json`` and only *new* findings fail the
gate.  See README "Static analysis" for the workflow.
"""

from __future__ import annotations

from . import checks  # noqa: F401  (registers the rule set on import)
from .baseline import Baseline, load_baseline, partition, save_baseline
from .engine import analyze_paths, analyze_source, collect_suppressions
from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from .reporters import LintResult, render_json, render_text
from .rules import Rule, all_rules, get_rule, register, rule_ids

__all__ = [
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Rule",
    "register",
    "all_rules",
    "rule_ids",
    "get_rule",
    "analyze_source",
    "analyze_paths",
    "collect_suppressions",
    "Baseline",
    "load_baseline",
    "save_baseline",
    "partition",
    "LintResult",
    "render_text",
    "render_json",
]
