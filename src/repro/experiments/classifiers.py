"""Experiment runners for the §7-§8 classification tables and figures."""

from __future__ import annotations

import numpy as np

from ..ml import RandomForestClassifier
from ..ml.inspection import permutation_importance
from ..platform.models import PII_REGISTRY
from ..reporting import render_table
from ..simulation.calibration import APP_CLASSIFIER, DEVICE_CLASSIFIER, SUSPICIOUSNESS
from .common import ExperimentReport, Workbench

__all__ = [
    "run_table1_app_classifier",
    "run_fig13_app_importance",
    "run_table2_device_classifier",
    "run_fig14_device_importance",
    "run_fig15_suspiciousness",
    "run_table3_pii_registry",
]


def _classifier_table(results: dict, paper: dict) -> str:
    rows = []
    for name, cv in sorted(results.items(), key=lambda kv: -kv[1].f1):
        target = paper.get(name, {})
        rows.append(
            (
                name,
                cv.precision,
                cv.recall,
                cv.f1,
                cv.auc,
                target.get("f1", float("nan")),
            )
        )
    return render_table(
        ["algorithm", "precision", "recall", "F1", "AUC", "paper F1"], rows
    )


def run_table1_app_classifier(wb: Workbench) -> ExperimentReport:
    result = wb.pipeline_result
    evaluation = result.app_evaluation
    report = ExperimentReport(
        "table1", "App-usage classifier: promotion vs personal installs (§7.2)"
    )
    report.lines.append(
        f"dataset: {evaluation.n_suspicious} suspicious / {evaluation.n_regular} "
        f"regular instances (paper: {APP_CLASSIFIER.SUSPICIOUS_INSTANCES} / "
        f"{APP_CLASSIFIER.REGULAR_INSTANCES}); labeled apps: "
        f"{len(result.app_dataset.labeling.suspicious_apps)} suspicious / "
        f"{len(result.app_dataset.labeling.regular_apps)} regular (paper: "
        f"{APP_CLASSIFIER.SUSPICIOUS_APPS} / {APP_CLASSIFIER.NON_SUSPICIOUS_APPS})"
    )
    report.lines.append(_classifier_table(evaluation.results, APP_CLASSIFIER.TABLE1))
    best = evaluation.best_algorithm()
    report.lines.append(
        f"best algorithm: {best} (paper: XGB with F1="
        f"{APP_CLASSIFIER.TABLE1['XGB']['f1']:.4f})"
    )
    report.metrics = {
        f"{name}_f1": cv.f1 for name, cv in evaluation.results.items()
    }
    report.metrics["best_is_xgb"] = float(best == "XGB")
    report.metrics["xgb_auc"] = evaluation.results["XGB"].auc
    return report


def run_fig13_app_importance(wb: Workbench) -> ExperimentReport:
    evaluation = wb.pipeline_result.app_evaluation
    report = ExperimentReport(
        "fig13", "Top-10 app-feature importances, mean decrease in Gini (§7.2)"
    )
    top = evaluation.top_features(10)
    report.lines.append(
        render_table(["rank", "feature", "gini importance"],
                     [(i + 1, name, value) for i, (name, value) in enumerate(top)])
    )
    # Family-level view: the paper's top-2 features are the number of
    # accounts that reviewed the app and the install-to-review time.
    families = {
        "accounts_reviewed": ("accounts_reviewed_before", "accounts_reviewed_during",
                              "accounts_reviewed_after", "accounts_reviewed_total"),
        "install_to_review": ("install_to_review_mean_days", "install_to_review_min_days"),
        "inter_review": ("inter_review_mean_days", "inter_review_min_days"),
        "usage": ("opened_multiple_days", "onscreen_snapshots_per_day"),
    }
    family_importance = {
        family: sum(evaluation.feature_importances.get(f, 0.0) for f in members)
        for family, members in families.items()
    }
    report.lines.append(
        render_table(
            ["feature family", "summed importance"],
            sorted(family_importance.items(), key=lambda kv: -kv[1]),
        )
    )
    # Permutation importance is the Gini cross-check: Gini inflates
    # continuous features (our synthetic usage signal), permutation
    # measures the real predictive contribution — and ranks the
    # accounts-that-reviewed feature first, like the paper's Fig 13.
    dataset = wb.pipeline_result.app_dataset
    forest = RandomForestClassifier(n_estimators=100, random_state=0)
    forest.fit(dataset.X, dataset.y)
    perm = permutation_importance(forest, dataset.X, dataset.y, n_repeats=3, random_state=0)
    perm_ranking = perm.ranking(dataset.feature_names)[:10]
    report.lines.append(
        render_table(
            ["rank", "feature", "permutation importance"],
            [(i + 1, name, value) for i, (name, value) in enumerate(perm_ranking)],
        )
    )
    def _review_rank(names: list[str]) -> int:
        for rank, name in enumerate(names, start=1):
            if name.startswith(("accounts_reviewed", "install_to_review")):
                return rank
        return len(names) + 1

    top_names = [name for name, _ in top]
    perm_names = [name for name, _ in perm_ranking]
    gini_rank = _review_rank(top_names)
    perm_rank = _review_rank(perm_names)
    report.lines.append(
        "review-behaviour feature ranks (paper: #1 and #2): "
        f"Gini #{gini_rank}, permutation #{perm_rank}"
    )
    report.metrics = {
        "review_family_importance": family_importance["accounts_reviewed"]
        + family_importance["install_to_review"],
        "review_rank_gini": float(gini_rank),
        "review_rank_perm": float(perm_rank),
        "review_in_top5": float(min(gini_rank, perm_rank) <= 5),
    }
    return report


def run_table2_device_classifier(wb: Workbench) -> ExperimentReport:
    evaluation = wb.pipeline_result.device_evaluation
    report = ExperimentReport(
        "table2", "Device classifier: worker vs regular devices (§8.2)"
    )
    report.lines.append(
        f"dataset: {evaluation.n_worker} worker / {evaluation.n_regular} regular "
        f"devices (paper: {DEVICE_CLASSIFIER.WORKER_DEVICES} / "
        f"{DEVICE_CLASSIFIER.REGULAR_DEVICES}); sampling: {evaluation.sampling}"
    )
    report.lines.append(_classifier_table(evaluation.results, DEVICE_CLASSIFIER.TABLE2))
    xgb = evaluation.results["XGB"]
    report.lines.append(
        f"XGB FPR={xgb.false_positive_rate:.4f} (paper: {DEVICE_CLASSIFIER.XGB_FPR}), "
        f"AUC={xgb.auc:.4f} (paper: {DEVICE_CLASSIFIER.XGB_AUC})"
    )
    report.metrics = {
        f"{name}_f1": cv.f1 for name, cv in evaluation.results.items()
    }
    report.metrics["xgb_fpr"] = xgb.false_positive_rate
    report.metrics["xgb_auc"] = xgb.auc
    report.metrics["best_is_xgb"] = float(evaluation.best_algorithm() == "XGB")
    return report


def run_fig14_device_importance(wb: Workbench) -> ExperimentReport:
    evaluation = wb.pipeline_result.device_evaluation
    report = ExperimentReport(
        "fig14", "Top-10 device-feature importances, mean decrease in Gini (§8.2)"
    )
    top = evaluation.top_features(10)
    report.lines.append(
        render_table(["rank", "feature", "gini importance"],
                     [(i + 1, name, value) for i, (name, value) in enumerate(top)])
    )
    top_names = [name for name, _ in top]
    paper_top4 = {
        "total_apps_reviewed",
        "app_suspiciousness",
        "n_stopped_apps",
        "reviews_per_account_mean",
    }
    # Accept the tightly correlated review-volume aliases as hits.
    aliases = {"total_reviews", "n_installed_and_reviewed"}
    hits = sum(1 for name in top_names[:6] if name in paper_top4 | aliases)
    report.lines.append(
        f"paper's top-4 feature (families) present in our top-6: {hits} "
        "(paper: total apps reviewed, app suspiciousness, stopped apps, "
        "reviews per account)"
    )
    report.metrics = {
        "paper_top4_hits": float(hits),
        "stopped_in_top3": float("n_stopped_apps" in top_names[:3]),
    }
    return report


def run_fig15_suspiciousness(wb: Workbench) -> ExperimentReport:
    result = wb.pipeline_result
    organic, dedicated = result.organic_split()
    workers = result.worker_verdicts()
    report = ExperimentReport(
        "fig15", "App suspiciousness vs reviewed apps per worker device (§8.2)"
    )
    scores = np.array([v.app_suspiciousness for v in workers])
    report.lines.append(
        render_table(
            ["percentile", "app suspiciousness"],
            [(p, float(np.percentile(scores, p))) for p in (10, 25, 50, 75, 90, 100)],
        )
    )
    total = max(organic + dedicated, 1)
    report.lines.append(
        f"organic-indicative: {organic}/{total} ({organic/total:.1%}); "
        f"promotion-only: {dedicated} (paper: "
        f"{SUSPICIOUSNESS.ORGANIC_INDICATIVE}/{SUSPICIOUSNESS.WORKER_DEVICES_ANALYZED} "
        f"= {SUSPICIOUSNESS.ORGANIC_FRACTION:.1%} organic, "
        f"{SUSPICIOUSNESS.PROMOTION_ONLY} promotion-only)"
    )
    detected = sum(1 for v in workers if v.predicted_worker)
    report.lines.append(
        f"worker devices detected by the device classifier: {detected}/{len(workers)} "
        "(the paper stresses detection of low-suspiciousness novice devices)"
    )
    report.metrics = {
        "organic": float(organic),
        "dedicated": float(dedicated),
        "organic_fraction": organic / total,
        "workers_detected_fraction": detected / max(len(workers), 1),
    }
    return report


def run_table3_pii_registry(wb: Workbench) -> ExperimentReport:
    report = ExperimentReport("table3", "PII collected, reasons, deletion (§3)")
    report.lines.append(
        render_table(
            ["PII", "collector", "reasons", "deletion"],
            [(e.pii, e.collector, e.reason, e.deletion) for e in PII_REGISTRY],
        )
    )
    report.metrics = {"registry_entries": float(len(PII_REGISTRY))}
    return report
