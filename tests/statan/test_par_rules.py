"""PAR001/PAR002: parallel-capture safety and seed discipline."""

from repro.statan.engine import analyze_tree


def rules_fired(root, rule):
    findings, _ = analyze_tree([root])
    return [f for f in findings if f.rule == rule]


class TestPar001:
    def test_lambda_submission_is_flagged(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "from repro.parallel import parallel_map\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(lambda t: t * 2, [(t,) for t in tasks])\n"
            ),
        })
        findings = rules_fired(root, "PAR001")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_nested_def_submission_names_captured_generator(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "import numpy as np\n"
                "from repro.parallel import ProcessExecutor\n"
                "\n"
                "def launch(tasks):\n"
                "    rng = np.random.default_rng(7)\n"
                "    def worker(t):\n"
                "        return rng.normal() + t\n"
                "    ex = ProcessExecutor(2)\n"
                "    return ex.map(worker, [(t,) for t in tasks])\n"
            ),
        })
        findings = rules_fired(root, "PAR001")
        assert len(findings) == 1
        assert "worker" in findings[0].message
        assert "Generator 'rng'" in findings[0].message

    def test_module_global_accumulator_worker_is_flagged(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "from repro.parallel import parallel_map\n"
                "\n"
                "_RESULTS = []\n"
                "\n"
                "def worker(t):\n"
                "    _RESULTS.append(t)\n"
                "    return t\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(worker, [(t,) for t in tasks])\n"
            ),
        })
        findings = rules_fired(root, "PAR001")
        assert len(findings) == 1
        assert "_RESULTS" in findings[0].message

    def test_per_process_memo_cache_is_allowed(self, write_tree):
        # Subscript-assign caches (the `_WORKBENCHES[key] = value` idiom)
        # are deliberate per-process memoisation, not lost results.
        root = write_tree({
            "ml/jobs.py": (
                "from repro.parallel import parallel_map\n"
                "\n"
                "_CACHE = {}\n"
                "\n"
                "def worker(t):\n"
                "    if t not in _CACHE:\n"
                "        _CACHE[t] = t * 2\n"
                "    return _CACHE[t]\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(worker, [(t,) for t in tasks])\n"
            ),
        })
        assert rules_fired(root, "PAR001") == []

    def test_module_level_picklable_worker_is_silent(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "from repro.parallel import parallel_map\n"
                "\n"
                "def worker(t, seed):\n"
                "    return t + seed\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(worker, [(t, i) for i, t in enumerate(tasks)])\n"
            ),
        })
        assert rules_fired(root, "PAR001") == []


class TestPar002:
    def test_shipping_a_generator_in_tasks_is_flagged(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "import numpy as np\n"
                "from repro.parallel import parallel_map\n"
                "\n"
                "def worker(t, rng):\n"
                "    return rng.normal() + t\n"
                "\n"
                "def launch(tasks):\n"
                "    rng = np.random.default_rng(7)\n"
                "    return parallel_map(worker, [(t, rng) for t in tasks])\n"
            ),
        })
        findings = rules_fired(root, "PAR002")
        assert len(findings) == 1
        assert "ship Generator 'rng'" in findings[0].message
        assert "draw_seeds" in findings[0].message

    def test_randomness_without_seed_parameter_is_flagged(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "import numpy as np\n"
                "from repro.parallel import parallel_map\n"
                "\n"
                "def worker(t):\n"
                "    return np.random.normal() + t\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(worker, [(t,) for t in tasks])\n"
            ),
        })
        findings = rules_fired(root, "PAR002")
        assert len(findings) == 1
        assert "no explicit seed parameter" in findings[0].message

    def test_seeded_worker_is_silent(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "import numpy as np\n"
                "from repro.parallel import parallel_map\n"
                "\n"
                "def worker(t, seed):\n"
                "    rng = np.random.default_rng(seed)\n"
                "    return rng.normal() + t\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(worker, [(t, i) for i, t in enumerate(tasks)])\n"
            ),
        })
        assert rules_fired(root, "PAR002") == []

    def test_random_state_parameter_satisfies_the_contract(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "import numpy as np\n"
                "from repro.parallel import parallel_map\n"
                "\n"
                "def worker(t, random_state):\n"
                "    return np.random.default_rng(random_state).normal() + t\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(worker, [(t, i) for i, t in enumerate(tasks)])\n"
            ),
        })
        assert rules_fired(root, "PAR002") == []

    def test_randomness_free_worker_is_silent(self, write_tree):
        root = write_tree({
            "ml/jobs.py": (
                "from repro.parallel import parallel_map\n"
                "\n"
                "def worker(t):\n"
                "    return t * 2\n"
                "\n"
                "def launch(tasks):\n"
                "    return parallel_map(worker, [(t,) for t in tasks])\n"
            ),
        })
        assert rules_fired(root, "PAR002") == []
