"""Experiment runners for the §5-§6 measurement figures."""

from __future__ import annotations

import numpy as np

from ..analysis import (
    app_timeline,
    compute_accounts,
    compute_app_permissions,
    compute_churn,
    compute_daily_use,
    compute_engagement,
    compute_install_to_review,
    compute_installed_apps,
    compute_malware,
    compute_stopped_apps,
)
from ..reporting import paper_vs_measured_rows, render_table
from ..simulation.calibration import (
    ACCOUNTS,
    CHURN,
    DATASET,
    ENGAGEMENT,
    INSTALL_TO_REVIEW,
    INSTALLED_APPS,
    MALWARE,
    RECRUITMENT,
)
from ..simulation.events import EventType
from ..simulation.recruitment import simulate_funnel
from .common import ExperimentReport, Workbench

__all__ = [
    "run_fig00_dataset_overview",
    "run_fig01_timelines",
    "run_fig04_engagement",
    "run_fig05_accounts",
    "run_fig06_installed_reviewed",
    "run_fig07_install_to_review",
    "run_fig08_stopped_apps",
    "run_fig09_churn",
    "run_fig10_daily_use",
    "run_fig11_permissions",
    "run_fig12_malware",
]


def run_fig00_dataset_overview(wb: Workbench) -> ExperimentReport:
    """§4-§5: recruitment funnel, install/device coalescing, dataset sizes."""
    data = wb.data
    clusters = data.server.unique_devices()
    funnel = simulate_funnel(np.random.default_rng(wb.config.seed))
    total_snapshots = sum(o.total_snapshots for o in wb.all_observations)
    report = ExperimentReport(
        "fig00",
        "Dataset overview (§4 recruitment, §5 data, Appendix A coalescing)",
    )
    report.lines.append("Instagram funnel (probabilities = paper conversion rates):")
    report.lines.append(
        render_table(
            ["stage", "simulated", "paper"],
            [
                ("impressions", funnel.count("impressions"), RECRUITMENT.ADS_SHOWN),
                ("reached", funnel.count("reached"), RECRUITMENT.ADS_REACHED),
                ("clicked", funnel.count("clicked"), RECRUITMENT.ADS_CLICKED),
                ("consented", funnel.count("consented"), RECRUITMENT.REGULAR_EMAILED),
                ("installed", funnel.count("installed"), RECRUITMENT.REGULAR_INSTALLS),
            ],
        )
    )
    report.lines.append(
        f"installs={len(data.server.install_ids())} coalesced to "
        f"{len(clusters)} unique devices "
        f"(paper: {RECRUITMENT.TOTAL_INSTALLS} installs / {RECRUITMENT.UNIQUE_DEVICES} devices)"
    )
    # §4 cohort geography (IP-derived, approximate).
    country_rows = []
    for country, (paper_w, paper_r) in RECRUITMENT.COUNTRIES.items():
        sim_w = sum(
            1 for p in data.participants if p.is_worker and p.device.country == country
        )
        sim_r = sum(
            1 for p in data.participants if not p.is_worker and p.device.country == country
        )
        country_rows.append((country, sim_w, sim_r, paper_w, paper_r))
    report.lines.append(
        render_table(
            ["country", "sim W", "sim R", "paper W", "paper R"], country_rows
        )
    )
    report.lines.append(
        f"snapshots collected={total_snapshots:,} "
        f"(paper: {DATASET.TOTAL_SNAPSHOTS:,}; scaled cohort) | "
        f"reviews crawled={data.review_crawler.collected_total():,} "
        f"(paper: {DATASET.PLAY_REVIEWS:,})"
    )
    report.metrics = {
        "installs": len(data.server.install_ids()),
        "unique_devices": len(clusters),
        "snapshots": total_snapshots,
        "reviews_crawled": data.review_crawler.collected_total(),
    }
    return report


def run_fig01_timelines(wb: Workbench) -> ExperimentReport:
    """Figure 1: per-app interaction timelines, workers vs a regular user."""
    report = ExperimentReport(
        "fig01", "App interaction timelines (install->review, no use, for workers)"
    )
    shown = {"worker": 0, "regular": 0}
    rows: list[tuple] = []
    for obs in wb.observations:
        group = "worker" if obs.is_worker else "regular"
        if shown[group] >= (2 if group == "worker" else 1):
            continue
        # Pick the reviewed (workers) or most-used (regular) app.
        candidates = sorted(obs.device_reviews) if obs.is_worker else sorted(
            obs.foreground_snapshots, key=obs.foreground_snapshots.get, reverse=True
        )
        for package in candidates:
            timeline = app_timeline(obs, package)
            types = {t for _, t in timeline}
            wanted = (
                {int(EventType.REVIEW)} <= types
                if obs.is_worker
                else int(EventType.FOREGROUND) in types
                and int(EventType.REVIEW) not in types
            )
            if wanted and len(timeline) >= 2:
                shown[group] += 1
                rows.append(
                    (
                        group,
                        package,
                        len(timeline),
                        sum(1 for _, t in timeline if t == int(EventType.FOREGROUND)),
                        sum(1 for _, t in timeline if t == int(EventType.REVIEW)),
                    )
                )
                break
        if shown["worker"] >= 2 and shown["regular"] >= 1:
            break
    report.lines.append(
        render_table(["device", "app", "events", "foreground", "reviews"], rows)
    )
    report.lines.append(
        "Expected pattern: worker timelines show reviews without foreground "
        "use; the regular timeline shows use without reviews."
    )
    report.metrics = {
        "worker_timelines": shown["worker"],
        "regular_timelines": shown["regular"],
    }
    return report


def run_fig04_engagement(wb: Workbench) -> ExperimentReport:
    result = compute_engagement(wb.all_observations)
    report = ExperimentReport("fig04", "Snapshots/day vs active days (§6.1)")
    report.lines.append(
        paper_vs_measured_rows(
            [
                (
                    "regular snapshots/day (median)",
                    ENGAGEMENT.REGULAR_SNAPSHOTS_PER_DAY_MEDIAN,
                    result.comparison.regular.median,
                ),
                (
                    "worker snapshots/day (median)",
                    ENGAGEMENT.WORKER_SNAPSHOTS_PER_DAY_MEDIAN,
                    result.comparison.worker.median,
                ),
            ]
        )
    )
    frac_over_100 = result.devices_over_100_per_day / max(len(result.points), 1)
    report.lines.append(
        f"devices with >=100 snapshots/day: {result.devices_over_100_per_day}"
        f"/{len(result.points)} ({frac_over_100:.0%}; paper: "
        f"{ENGAGEMENT.DEVICES_OVER_100_PER_DAY}/{RECRUITMENT.UNIQUE_DEVICES})"
    )
    report.metrics = {
        "worker_median": result.comparison.worker.median,
        "regular_median": result.comparison.regular.median,
        "frac_over_100": frac_over_100,
    }
    return report


def run_fig05_accounts(wb: Workbench) -> ExperimentReport:
    result = compute_accounts(wb.observations)
    report = ExperimentReport("fig05", "Registered accounts (§6.2)")
    report.lines.append(
        paper_vs_measured_rows(
            [
                ("worker gmail mean", ACCOUNTS.WORKER_GMAIL_MEAN, result.gmail.worker.mean),
                ("worker gmail median", ACCOUNTS.WORKER_GMAIL_MEDIAN, result.gmail.worker.median),
                ("worker gmail max", ACCOUNTS.WORKER_GMAIL_MAX, result.gmail.worker.maximum),
                ("regular gmail median", ACCOUNTS.REGULAR_GMAIL_MEDIAN, result.gmail.regular.median),
                ("regular gmail max", ACCOUNTS.REGULAR_GMAIL_MAX, result.gmail.regular.maximum),
                ("regular account types mean", ACCOUNTS.REGULAR_ACCOUNT_TYPES_MEAN, result.account_types.regular.mean),
            ]
        )
    )
    for panel in result.panels():
        battery = panel.tests
        report.lines.append(
            f"{panel.feature}: KS p={battery.ks.pvalue:.2e}, "
            f"ANOVA p={battery.anova.pvalue:.2e}, "
            f"Kruskal p={battery.kruskal.pvalue:.2e} "
            f"({'significant' if panel.significant() else 'NOT significant'})"
        )
    report.metrics = {
        "worker_gmail_mean": result.gmail.worker.mean,
        "worker_gmail_median": result.gmail.worker.median,
        "regular_gmail_median": result.gmail.regular.median,
        "gmail_significant": float(result.gmail.significant()),
    }
    return report


def run_fig06_installed_reviewed(wb: Workbench) -> ExperimentReport:
    result = compute_installed_apps(wb.observations)
    report = ExperimentReport("fig06", "Installed vs reviewed apps (§6.3)")
    report.lines.append(
        paper_vs_measured_rows(
            [
                ("worker installed mean", INSTALLED_APPS.WORKER_INSTALLED_MEAN, result.installed.worker.mean),
                ("regular installed mean", INSTALLED_APPS.REGULAR_INSTALLED_MEAN, result.installed.regular.mean),
                ("worker installed+reviewed mean", INSTALLED_APPS.WORKER_REVIEWED_OF_INSTALLED_MEAN, result.installed_and_reviewed.worker.mean),
                ("regular installed+reviewed mean", INSTALLED_APPS.REGULAR_REVIEWED_OF_INSTALLED_MEAN, result.installed_and_reviewed.regular.mean),
                ("worker total reviews mean", INSTALLED_APPS.WORKER_TOTAL_REVIEWS_MEAN, result.total_reviews.worker.mean),
                ("regular total reviews mean", INSTALLED_APPS.REGULAR_TOTAL_REVIEWS_MEAN, result.total_reviews.regular.mean),
            ]
        )
    )
    report.lines.append(
        f"worker devices >1000 total reviews: {result.worker_devices_over_1000_reviews} "
        f"(paper: {INSTALLED_APPS.WORKER_DEVICES_OVER_1000_REVIEWS}); "
        f"regular max total reviews: {result.regular_max_total_reviews:.0f} "
        f"(paper: {INSTALLED_APPS.REGULAR_TOTAL_REVIEWS_MAX})"
    )
    report.lines.append(
        "installed-apps ANOVA not significant (paper p=0.301): "
        f"{result.installed_anova_not_significant()} "
        f"(p={result.installed.tests.anova.pvalue:.3f}); "
        f"reviews comparisons significant: {result.total_reviews.significant()}"
    )
    report.metrics = {
        "worker_installed_mean": result.installed.worker.mean,
        "regular_installed_mean": result.installed.regular.mean,
        "worker_reviewed_mean": result.installed_and_reviewed.worker.mean,
        "regular_reviewed_mean": result.installed_and_reviewed.regular.mean,
        "reviews_significant": float(result.total_reviews.significant()),
    }
    return report


def run_fig07_install_to_review(wb: Workbench) -> ExperimentReport:
    result = compute_install_to_review(wb.observations)
    report = ExperimentReport("fig07", "Install-to-review delays (§6.3)")
    report.lines.append(
        paper_vs_measured_rows(
            [
                ("worker wait mean (days)", INSTALL_TO_REVIEW.WORKER_WAIT_MEAN_DAYS, result.comparison.worker.mean),
                ("worker wait median (days)", INSTALL_TO_REVIEW.WORKER_WAIT_MEDIAN_DAYS, result.comparison.worker.median),
                ("worker fast (<=1d) fraction", INSTALL_TO_REVIEW.WORKER_REVIEWS_WITHIN_1_DAY / INSTALL_TO_REVIEW.WORKER_REVIEWS_WITH_INSTALL_TIME, result.worker_fast_fraction),
                ("regular wait mean (days)", INSTALL_TO_REVIEW.REGULAR_WAIT_MEAN_DAYS, result.comparison.regular.mean),
                ("regular wait median (days)", INSTALL_TO_REVIEW.REGULAR_WAIT_MEDIAN_DAYS, result.comparison.regular.median),
            ]
        )
    )
    report.lines.append(
        f"worker reviews with install time: {result.worker_review_count:,} "
        f"(paper: {INSTALL_TO_REVIEW.WORKER_REVIEWS_WITH_INSTALL_TIME:,}); "
        f"regular: {result.regular_review_count} (paper: "
        f"{INSTALL_TO_REVIEW.REGULAR_REVIEWS_WITH_INSTALL_TIME})"
    )
    report.metrics = {
        "worker_mean": result.comparison.worker.mean,
        "worker_median": result.comparison.worker.median,
        "regular_mean": result.comparison.regular.mean,
        "regular_median": result.comparison.regular.median,
        "worker_n": float(result.worker_review_count),
        "regular_n": float(result.regular_review_count),
        "worker_fast_fraction": result.worker_fast_fraction,
        "significant": float(result.comparison.significant()),
    }
    return report


def run_fig08_stopped_apps(wb: Workbench) -> ExperimentReport:
    result = compute_stopped_apps(wb.observations)
    report = ExperimentReport("fig08", "Stopped apps (§6.3)")
    stats = result.boxplot_stats()
    report.lines.append(
        render_table(
            ["group", "q1", "median", "q3", "max"],
            [
                ("worker", stats["worker"]["q1"], stats["worker"]["median"], stats["worker"]["q3"], stats["worker"]["max"]),
                ("regular", stats["regular"]["q1"], stats["regular"]["median"], stats["regular"]["q3"], stats["regular"]["max"]),
            ],
        )
    )
    report.lines.append(
        f"workers stop more apps: {result.comparison.worker.median:.0f} vs "
        f"{result.comparison.regular.median:.0f} median; significant: "
        f"{result.comparison.significant()}"
    )
    report.metrics = {
        "worker_median": result.comparison.worker.median,
        "regular_median": result.comparison.regular.median,
        "significant": float(result.comparison.significant()),
    }
    return report


def run_fig09_churn(wb: Workbench) -> ExperimentReport:
    result = compute_churn(wb.observations)
    report = ExperimentReport("fig09", "App churn: daily installs/uninstalls (§6.3)")
    report.lines.append(
        paper_vs_measured_rows(
            [
                ("worker daily installs mean", CHURN.WORKER_DAILY_INSTALLS_MEAN, result.installs.worker.mean),
                ("worker daily installs median", CHURN.WORKER_DAILY_INSTALLS_MEDIAN, result.installs.worker.median),
                ("regular daily installs mean", CHURN.REGULAR_DAILY_INSTALLS_MEAN, result.installs.regular.mean),
                ("worker daily uninstalls mean", CHURN.WORKER_DAILY_UNINSTALLS_MEAN, result.uninstalls.worker.mean),
                ("regular daily uninstalls mean", CHURN.REGULAR_DAILY_UNINSTALLS_MEAN, result.uninstalls.regular.mean),
            ]
        )
    )
    high = result.high_churn_devices()
    report.lines.append(
        f"devices with >10 installs/day: worker={high['worker']}, "
        f"regular={high['regular']} (paper: churn of most regular devices "
        "is <10/day, many worker devices above)"
    )
    report.metrics = {
        "worker_installs_mean": result.installs.worker.mean,
        "regular_installs_mean": result.installs.regular.mean,
        "installs_significant": float(result.installs.significant()),
        "uninstalls_significant": float(result.uninstalls.significant()),
    }
    return report


def run_fig10_daily_use(wb: Workbench) -> ExperimentReport:
    result = compute_daily_use(wb.observations)
    report = ExperimentReport("fig10", "Apps used per day vs installed (§6.3)")
    report.lines.append(
        render_table(
            ["group", "used/day mean", "used/day median"],
            [
                ("worker", result.comparison.worker.mean, result.comparison.worker.median),
                ("regular", result.comparison.regular.mean, result.comparison.regular.median),
            ],
        )
    )
    overlap = result.overlap_fraction()
    report.lines.append(
        f"worker devices inside regular IQR: {overlap:.0%} — the paper's "
        "'substantial overlap' (daily used apps alone cannot distinguish)"
    )
    report.metrics = {
        "worker_mean": result.comparison.worker.mean,
        "regular_mean": result.comparison.regular.mean,
        "overlap_fraction": overlap,
    }
    return report


def run_fig11_permissions(wb: Workbench) -> ExperimentReport:
    result = compute_app_permissions(wb.observations, wb.data.catalog)
    report = ExperimentReport("fig11", "Permissions of exclusive apps (§6.3)")
    max_dangerous = result.max_dangerous()
    report.lines.append(
        render_table(
            ["group", "dangerous mean", "total mean", "dangerous max"],
            [
                ("worker-exclusive", result.dangerous.worker.mean, result.total.worker.mean, max_dangerous["worker"]),
                ("regular-exclusive", result.dangerous.regular.mean, result.total.regular.mean, max_dangerous["regular"]),
            ],
        )
    )
    report.lines.append(
        "Expected pattern: similar profiles overall; worker-exclusive apps "
        "contribute the extreme dangerous-permission tail."
    )
    report.metrics = {
        "worker_dangerous_mean": result.dangerous.worker.mean,
        "regular_dangerous_mean": result.dangerous.regular.mean,
        "worker_dangerous_max": float(max_dangerous["worker"]),
        "regular_dangerous_max": float(max_dangerous["regular"]),
    }
    return report


def run_fig12_malware(wb: Workbench) -> ExperimentReport:
    result = compute_malware(wb.observations, wb.data.vt_client, wb.data.catalog)
    report = ExperimentReport("fig12", "Malware occurrence (§6.4)")
    spread = result.mean_spread()
    report.lines.append(
        paper_vs_measured_rows(
            [
                ("VT report availability", DATASET.HASHES_WITH_VT_REPORT / DATASET.DISTINCT_APK_HASHES, result.hashes_with_report / max(result.hashes_scanned, 1)),
                ("worker devices w/ flagged app", MALWARE.WORKER_DEVICES_WITH_FLAGGED, result.worker_devices_with_flagged),
                ("regular devices w/ flagged app", MALWARE.REGULAR_DEVICES_WITH_FLAGGED, result.regular_devices_with_flagged),
            ]
        )
    )
    report.lines.append(
        f"high-confidence (> {result.high_confidence_threshold} flags) samples: "
        f"{len(result.high_confidence_samples())}; mean device spread "
        f"worker={spread['worker']:.2f} vs regular={spread['regular']:.2f} "
        "(paper: malware appears on more worker devices)"
    )
    report.lines.append(
        f"AV apps: {result.devices_with_av_app} devices installed "
        f"{result.av_apps_installed} AV apps (paper: {MALWARE.DEVICES_WITH_AV} "
        f"devices, {MALWARE.AV_APPS_INSTALLED} apps)"
    )
    report.metrics = {
        "worker_devices_flagged": result.worker_devices_with_flagged,
        "regular_devices_flagged": result.regular_devices_with_flagged,
        "worker_spread": spread["worker"],
        "regular_spread": spread["regular"],
        "devices_with_av": result.devices_with_av_app,
    }
    return report
