"""Span-based tracing: a navigable wall-time tree for pipeline phases.

``with trace("ingest.chunk"):`` opens a span under whatever span is
currently active; spans with the same name under the same parent are
*aggregated* (call count + total wall time), so tracing a per-chunk or
per-day hot path stays O(distinct span names) in memory no matter how
many times it fires.

The tracer renders three views: an indented tree (``render``), the
top-N slowest aggregated spans (``top_slowest``), and a JSON document
(``to_json``) for archival next to the metrics export.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SpanNode", "Tracer", "NullTracer"]


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "calls", "total_seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_seconds = 0.0
        self.children: dict[str, SpanNode] = {}

    @property
    def child_seconds(self) -> float:
        return sum(c.total_seconds for c in self.children.values())

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this span outside any child span."""
        return max(0.0, self.total_seconds - self.child_seconds)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "self_seconds": self.self_seconds,
            "children": [c.to_json() for c in self.children.values()],
        }


class Tracer:
    """Aggregating tracer with a context-manager API."""

    def __init__(self) -> None:
        self.root = SpanNode("")
        self._stack: list[SpanNode] = [self.root]

    @contextmanager
    def trace(self, name: str):
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = SpanNode(name)
        self._stack.append(node)
        started = time.perf_counter()
        try:
            yield node
        finally:
            node.calls += 1
            node.total_seconds += time.perf_counter() - started
            self._stack.pop()

    def reset(self) -> None:
        self.root = SpanNode("")
        self._stack = [self.root]

    # -- navigation ------------------------------------------------------
    def spans(self) -> Iterator[tuple[str, SpanNode]]:
        """Depth-first (dotted-path, node) pairs over the whole tree."""

        def walk(node: SpanNode, prefix: str) -> Iterator[tuple[str, SpanNode]]:
            for child in node.children.values():
                path = f"{prefix}/{child.name}" if prefix else child.name
                yield path, child
                yield from walk(child, path)

        yield from walk(self.root, "")

    def find(self, name: str) -> SpanNode | None:
        """First span anywhere in the tree with this exact name."""
        for _path, node in self.spans():
            if node.name == name:
                return node
        return None

    def top_slowest(self, n: int = 10) -> list[tuple[str, SpanNode]]:
        """The ``n`` aggregated spans with the largest *self* time."""
        ranked = sorted(self.spans(), key=lambda kv: -kv[1].self_seconds)
        return ranked[:n]

    # -- rendering -------------------------------------------------------
    def render(self, min_seconds: float = 0.0) -> str:
        """Indented span tree: name, call count, total and self time."""
        lines = [f"{'span':<52} {'calls':>8} {'total':>10} {'self':>10}"]

        def walk(node: SpanNode, depth: int) -> None:
            for child in node.children.values():
                if child.total_seconds < min_seconds:
                    continue
                label = "  " * depth + child.name
                lines.append(
                    f"{label:<52} {child.calls:>8} "
                    f"{child.total_seconds:>9.3f}s {child.self_seconds:>9.3f}s"
                )
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def render_slowest(self, n: int = 10) -> str:
        lines = [f"{'span (by self time)':<52} {'calls':>8} {'self':>10} {'total':>10}"]
        for path, node in self.top_slowest(n):
            lines.append(
                f"{path:<52} {node.calls:>8} "
                f"{node.self_seconds:>9.3f}s {node.total_seconds:>9.3f}s"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {"spans": [c.to_json() for c in self.root.children.values()]}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Tracer that records nothing — the global default."""

    def trace(self, name: str):  # noqa: ARG002
        return _NULL_SPAN
