"""Tests for the §6 measurement analyses on the shared small study."""

import numpy as np
import pytest

from repro.analysis import (
    app_timeline,
    compare_feature,
    compute_accounts,
    compute_app_permissions,
    compute_churn,
    compute_daily_use,
    compute_engagement,
    compute_install_to_review,
    compute_installed_apps,
    compute_malware,
    compute_stopped_apps,
)
from repro.simulation.events import EventType


class TestCompareFeature:
    def test_structure(self, rng):
        comparison = compare_feature("x", rng.normal(5, 1, 100), rng.normal(0, 1, 100))
        assert comparison.worker.mean > comparison.regular.mean
        assert comparison.significant()
        assert len(comparison.paper_style_rows()) == 4
        assert comparison.effects.magnitude() == "large"
        assert comparison.effects.cohens_d > 3


class TestEngagement:
    def test_points_per_device(self, observations):
        result = compute_engagement(observations)
        assert len(result.points) == len(observations)

    def test_most_devices_over_100_snapshots(self, observations):
        result = compute_engagement(observations)
        assert result.devices_over_100_per_day / len(result.points) >= 0.9

    def test_timeline_event_types_valid(self, observations):
        workers = [o for o in observations if o.is_worker]
        obs = workers[0]
        package = next(iter(obs.device_reviews), None)
        if package is None:
            pytest.skip("worker without reviews")
        timeline = app_timeline(obs, package)
        assert timeline == sorted(timeline)
        assert {t for _, t in timeline} <= {int(e) for e in EventType}

    def test_worker_timeline_reviews_without_use(self, observations):
        """Figure 1's signature: some worker app has reviews and no
        foreground events."""
        found = False
        for obs in observations:
            if not obs.is_worker:
                continue
            for package in obs.device_reviews:
                timeline = app_timeline(obs, package)
                types = {t for _, t in timeline}
                if int(EventType.REVIEW) in types and int(EventType.FOREGROUND) not in types:
                    found = True
                    break
            if found:
                break
        assert found


class TestAccounts:
    def test_worker_gmail_dominates(self, observations):
        result = compute_accounts(observations)
        assert result.gmail.worker.median > result.gmail.regular.median * 3
        assert result.gmail.significant()

    def test_regular_more_account_types(self, observations):
        result = compute_accounts(observations)
        assert result.account_types.regular.mean > result.account_types.worker.mean

    def test_only_reporting_devices_counted(self, observations):
        result = compute_accounts(observations)
        reporting = [o for o in observations if o.reported_account_data and o.reported_accounts]
        assert (
            result.reporting_worker_devices + result.reporting_regular_devices
            == len(reporting)
        )


class TestInstalledApps:
    def test_worker_review_dominance(self, observations):
        result = compute_installed_apps(observations)
        # >5x at the tiny test scale (a single chatty regular reviewer
        # skews a 14-device mean); the fig06 bench asserts >15x at the
        # default cohort scale.
        assert result.installed_and_reviewed.worker.mean > 5 * max(
            result.installed_and_reviewed.regular.mean, 0.1
        )
        assert result.total_reviews.significant()

    def test_installed_counts_similar(self, observations):
        result = compute_installed_apps(observations)
        ratio = result.installed.worker.mean / result.installed.regular.mean
        # Same ballpark, as in the paper.  The hoarder tail makes group
        # means noisy at this tiny cohort size, so the band is wide here;
        # the fig06 bench asserts 0.8-1.6 on the default cohort.
        assert 0.4 <= ratio <= 2.5


class TestInstallToReview:
    def test_workers_faster_and_more(self, observations):
        result = compute_install_to_review(observations)
        assert result.worker_review_count > 50 * max(result.regular_review_count, 1) / 10
        assert result.comparison.worker.median < result.comparison.regular.median
        assert 0.15 <= result.worker_fast_fraction <= 0.6  # paper: 33%

    def test_delays_positive(self, observations):
        result = compute_install_to_review(observations)
        assert all(d > 0 for d in result.worker_delays_days)
        assert all(d > 0 for d in result.regular_delays_days)


class TestStoppedApps:
    def test_workers_stop_more(self, observations):
        result = compute_stopped_apps(observations)
        assert result.comparison.worker.median > result.comparison.regular.median
        assert result.comparison.significant()


class TestChurn:
    def test_worker_churn_higher(self, observations):
        result = compute_churn(observations)
        assert result.installs.worker.mean > result.installs.regular.mean
        assert result.installs.significant()

    def test_high_churn_mostly_workers(self, observations):
        result = compute_churn(observations)
        high = result.high_churn_devices(threshold=10.0)
        assert high["worker"] >= high["regular"]


class TestDailyUse:
    def test_substantial_overlap(self, observations):
        result = compute_daily_use(observations)
        assert result.overlap_fraction() >= 0.1  # the paper's point


class TestPermissions:
    def test_point_groups(self, study, observations):
        result = compute_app_permissions(observations, study.catalog)
        groups = {p.exclusive_to for p in result.points}
        assert groups == {"worker", "regular"}

    def test_worker_exclusive_tail_heavier(self, study, observations):
        result = compute_app_permissions(observations, study.catalog)
        assert result.max_dangerous()["worker"] >= result.max_dangerous()["regular"]


class TestMalware:
    def test_counts_consistent(self, study, observations):
        result = compute_malware(observations, study.vt_client, study.catalog)
        assert result.hashes_with_report <= result.hashes_scanned
        assert (
            result.worker_devices_with_flagged + result.regular_devices_with_flagged
            == result.devices_with_flagged_app
        )

    def test_malware_spreads_wider_on_worker_devices(self, study, observations):
        result = compute_malware(observations, study.vt_client, study.catalog)
        spread = result.mean_spread()
        assert spread["worker"] >= spread["regular"]

    def test_high_confidence_subset(self, study, observations):
        result = compute_malware(observations, study.vt_client, study.catalog)
        for sample in result.high_confidence_samples():
            assert sample.vt_flags > 7


class TestRetention:
    def test_curves_monotone_nonincreasing(self, observations):
        from repro.analysis.retention import compute_retention

        result = compute_retention(observations, horizon_days=5)
        for curve in (result.worker_curve, result.regular_curve):
            fractions = curve.surviving_fraction
            assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))
            assert fractions[0] == pytest.approx(1.0)

    def test_fractions_bounded(self, observations):
        from repro.analysis.retention import compute_retention

        result = compute_retention(observations, horizon_days=5)
        for curve in (result.worker_curve, result.regular_curve):
            assert all(0.0 <= f <= 1.0 for f in curve.surviving_fraction)
            assert curve.n_installs > 0

    def test_comparison_populated(self, observations):
        from repro.analysis.retention import compute_retention

        result = compute_retention(observations, horizon_days=5)
        assert result.lifetime_comparison.worker.n > 10
        assert result.lifetime_comparison.regular.n > 10

    def test_at_unknown_day_raises(self, observations):
        from repro.analysis.retention import compute_retention

        result = compute_retention(observations, horizon_days=3)
        with pytest.raises(KeyError):
            result.worker_curve.at(99)
