"""Snapshot fingerprinting: coalescing installs into unique devices.

Appendix A of the paper: the same physical device can produce multiple
RacketStore installs (shared devices between workers, repeat installs to
collect the install payment twice, reinstalls), and some installs lack
an Android ID.  The coalescing procedure:

1. group snapshots into candidate devices by install ID;
2. candidate pairs whose install intervals *overlap* are different
   devices (one device runs one install at a time);
3. non-overlapping pairs with Android IDs merge iff the IDs match;
4. pairs lacking an Android ID merge when the Jaccard similarity of
   their (app, install-time) sets exceeds 0.5625 or of their registered
   account sets exceeds 0.53 (the thresholds the authors validated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "InstallFingerprint",
    "DeviceCluster",
    "jaccard",
    "coalesce_installs",
    "APP_JACCARD_THRESHOLD",
    "ACCOUNT_JACCARD_THRESHOLD",
]

APP_JACCARD_THRESHOLD = 0.5625
ACCOUNT_JACCARD_THRESHOLD = 0.53


@dataclass(frozen=True)
class InstallFingerprint:
    """Identity evidence for one RacketStore install."""

    install_id: str
    participant_id: str
    android_id: str | None
    first_seen: float
    last_seen: float
    app_installs: frozenset  # of (package, install_time) tuples
    accounts: frozenset      # of account identifiers

    def overlaps(self, other: "InstallFingerprint") -> bool:
        return self.first_seen <= other.last_seen and other.first_seen <= self.last_seen


@dataclass
class DeviceCluster:
    """One unique physical device: the set of installs attributed to it."""

    installs: list[InstallFingerprint] = field(default_factory=list)

    @property
    def install_ids(self) -> list[str]:
        return sorted(f.install_id for f in self.installs)

    @property
    def participant_ids(self) -> set[str]:
        return {f.participant_id for f in self.installs}

    @property
    def android_ids(self) -> set[str]:
        return {f.android_id for f in self.installs if f.android_id}


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b| (0.0 for two empty sets)."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def _same_device(a: InstallFingerprint, b: InstallFingerprint) -> bool:
    """Appendix-A pairwise decision for non-overlapping installs."""
    if a.android_id and b.android_id:
        return a.android_id == b.android_id
    # Missing Android ID on at least one side: fall back to content
    # similarity of the installed-app and registered-account sets.
    if jaccard(a.app_installs, b.app_installs) > APP_JACCARD_THRESHOLD:
        return True
    return jaccard(a.accounts, b.accounts) > ACCOUNT_JACCARD_THRESHOLD


def coalesce_installs(installs) -> list[DeviceCluster]:
    """Cluster install fingerprints into unique devices.

    Implements the Appendix-A procedure over all install pairs with a
    union-find; overlap always wins (an overlapping pair is never merged
    even if a chain of merges would connect them — the interval check is
    applied per pair before the similarity evidence is consulted).
    """
    installs = list(installs)
    uf = _UnionFind(len(installs))
    for i in range(len(installs)):
        for j in range(i + 1, len(installs)):
            a, b = installs[i], installs[j]
            if a.overlaps(b):
                continue  # concurrent installs: physically distinct devices
            if _same_device(a, b):
                uf.union(i, j)

    clusters: dict[int, DeviceCluster] = {}
    for index, fingerprint in enumerate(installs):
        clusters.setdefault(uf.find(index), DeviceCluster()).installs.append(fingerprint)
    return sorted(clusters.values(), key=lambda c: c.install_ids)
