"""Tests for the behaviour engine and the world driver (shared small study)."""

import numpy as np
import pytest

from repro.simulation import SECONDS_PER_DAY, SimulationConfig, run_study
from repro.simulation.world import build_world


class TestStudyStructure:
    def test_cohort_sizes(self, study, small_config):
        workers = study.worker_participants()
        regulars = study.regular_participants()
        assert len(workers) >= small_config.n_worker_devices
        assert len(regulars) >= small_config.n_regular_devices // 2

    def test_eligibility_filter(self, study):
        eligible = study.eligible_participants(min_days=2)
        assert all(p.active_days >= 2 for p in eligible)
        dropouts = [p for p in study.participants if p.is_dropout]
        assert dropouts  # the config plants them
        assert not set(id(p) for p in dropouts) & set(id(p) for p in eligible)

    def test_every_participant_signed_in(self, study):
        assert all(p.app.install_id is not None for p in study.participants)

    def test_server_received_data_for_eligible(self, study):
        for participant in study.eligible_participants(min_days=2):
            assert study.server.snapshot_count(participant.app.install_id) > 0

    def test_reviews_exist_and_crawled(self, study):
        assert study.review_store.total_reviews() > 100
        assert study.review_crawler.collected_total() > 0

    def test_worker_devices_have_more_accounts(self, study):
        worker_gmail = [
            len(p.device.gmail_accounts()) for p in study.worker_participants()
        ]
        regular_gmail = [
            len(p.device.gmail_accounts()) for p in study.regular_participants()
        ]
        assert np.median(worker_gmail) > np.median(regular_gmail) * 2

    def test_promo_installs_only_on_worker_devices(self, study):
        for participant in study.regular_participants():
            assert participant.device.promo_installed() == []

    def test_campaign_board_delivered_work(self, study):
        delivered = sum(c.delivered_installs for c in study.board.campaigns())
        assert delivered > 0

    def test_repeat_installs_coalesced(self, study):
        installs = len(study.server.install_ids())
        devices = len(study.server.unique_devices())
        unique_sim_devices = len({p.device.device_id for p in study.participants})
        assert installs > unique_sim_devices  # repeats exist
        assert devices == unique_sim_devices  # fingerprinting recovers truth

    def test_review_uniqueness_per_account_app(self, study):
        for participant in study.participants[:20]:
            for account in participant.device.gmail_accounts():
                reviews = study.review_store.reviews_by_google_id(account.google_id)
                pairs = [(r.app_package, r.google_id) for r in reviews]
                assert len(pairs) == len(set(pairs))

    def test_apk_hash_oracle_covers_catalog(self, study):
        oracle = study.apk_hash_oracle()
        for app in study.catalog.all_apps():
            assert app.current_apk_hash in oracle


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = SimulationConfig.small().scaled(study_days=3, n_worker_devices=6,
                                                 n_regular_devices=4, n_dropout_devices=2)
        a = run_study(config)
        b = run_study(config)
        assert len(a.participants) == len(b.participants)
        for pa, pb in zip(a.participants, b.participants):
            assert pa.device.installed_packages() == pb.device.installed_packages()
            assert len(pa.device.events) == len(pb.device.events)
        assert a.review_store.total_reviews() == b.review_store.total_reviews()

    def test_different_seed_differs(self):
        base = SimulationConfig.small().scaled(study_days=3, n_worker_devices=6,
                                               n_regular_devices=4, n_dropout_devices=2)
        a = run_study(base)
        b = run_study(base.scaled(seed=base.seed + 1))
        assert a.review_store.total_reviews() != b.review_store.total_reviews()


class TestBuildWorld:
    def test_build_without_running(self):
        data, engine, factory, rng = build_world(SimulationConfig.small())
        assert len(data.catalog) > 0
        assert data.participants == []
        assert len(data.board.campaigns()) == data.config.n_promoted_apps

    def test_evasion_multipliers_reduce_reviews(self):
        config = SimulationConfig.small().scaled(study_days=4)
        baseline = run_study(config)
        evading = run_study(config.scaled(worker_review_volume_multiplier=0.2))

        def worker_reviews(data):
            total = 0
            for p in data.worker_participants():
                for a in p.device.gmail_accounts():
                    total += len(data.review_store.reviews_by_google_id(a.google_id))
            return total

        assert worker_reviews(evading) < worker_reviews(baseline) * 0.65
