"""Shared fixtures for the statan test suite."""

from pathlib import Path

import pytest


@pytest.fixture()
def write_tree(tmp_path):
    """Materialise ``{relative_path: source}`` under a tmp dir and
    return the root; scan labels equal the relative paths."""

    def _write(files: dict[str, str]) -> Path:
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        return tmp_path

    return _write
