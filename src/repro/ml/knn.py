"""k-nearest-neighbours classifier ("KNN" in Tables 1 and 2).

The paper notes "KNN achieved best performance for K = 5", so 5 is the
default.  Distances are Euclidean over internally z-scored features
(without scaling, the count-valued usage features would dominate).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Brute-force kNN with optional distance weighting.

    Parameters
    ----------
    n_neighbors:
        K; the paper's best value is 5.
    weights:
        ``"uniform"`` (majority vote) or ``"distance"`` (1/d weights).
    standardize:
        Whether to z-score features using the training statistics.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        standardize: bool = True,
    ) -> None:
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights scheme {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.standardize = standardize

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        self._encoded = self._encode_labels(y)
        if self.standardize:
            self._mu = X.mean(axis=0)
            sigma = X.std(axis=0)
            sigma[sigma == 0.0] = 1.0
            self._sigma = sigma
        else:
            self._mu = np.zeros(X.shape[1])
            self._sigma = np.ones(X.shape[1])
        self._train = (X - self._mu) / self._sigma
        return self

    def _neighbor_votes(self, X: np.ndarray) -> np.ndarray:
        """Per-query class vote mass from the K nearest training points.

        Fully vectorised: each chunk's votes are scattered in one
        ``bincount`` over flattened (query, class) cells — no per-row
        Python loop.  Within a cell, weights accumulate in neighbour
        order, so results match the naive per-row scatter bit for bit.
        """
        Z = (check_array(X) - self._mu) / self._sigma
        k = min(self.n_neighbors, self._train.shape[0])
        n_classes = len(self.classes_)
        votes = np.zeros((Z.shape[0], n_classes), dtype=np.float64)
        # Chunk queries to bound the distance-matrix memory footprint.
        chunk = max(1, 2_000_000 // max(1, self._train.shape[0]))
        for start in range(0, Z.shape[0], chunk):
            block = Z[start : start + chunk]
            m = block.shape[0]
            d2 = (
                np.sum(block**2, axis=1)[:, None]
                - 2.0 * block @ self._train.T
                + np.sum(self._train**2, axis=1)[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            if self.weights == "distance":
                w = 1.0 / (np.sqrt(np.take_along_axis(d2, nearest, axis=1)) + 1e-12)
            else:
                w = np.ones((m, k), dtype=np.float64)
            cells = np.repeat(np.arange(m), k) * n_classes + self._encoded[nearest].ravel()
            votes[start : start + m] = np.bincount(
                cells, weights=w.ravel(), minlength=m * n_classes
            ).reshape(m, n_classes)
        return votes

    def predict_proba(self, X) -> np.ndarray:
        votes = self._neighbor_votes(X)
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return votes / totals
