"""Tests for the internal dashboard (monitoring + validation)."""

import pytest

from repro.platform.dashboard import Dashboard


@pytest.fixture(scope="module")
def dashboard(study):
    return Dashboard(study.server)


class TestMonitoring:
    def test_health_for_every_install(self, study, dashboard):
        for install_id in study.server.install_ids():
            health = dashboard.install_health(install_id)
            assert health is not None
            assert health.snapshots > 0
            assert health.active_days > 0

    def test_overview_totals_consistent(self, study, dashboard):
        overview = dashboard.overview()
        assert overview["installs"] == len(study.server.install_ids())
        assert overview["healthy_installs"] <= overview["installs"]
        assert 0.0 <= overview["healthy_fraction"] <= 1.0
        assert overview["records_inserted"] > 0

    def test_most_installs_healthy(self, dashboard):
        overview = dashboard.overview()
        assert overview["healthy_fraction"] >= 0.9

    def test_lagging_installs_below_threshold(self, dashboard):
        lagging = dashboard.lagging_installs(min_snapshots_per_day=100.0)
        for health in lagging:
            assert health.snapshots_per_day < 100.0

    def test_unknown_install_returns_none(self, dashboard):
        assert dashboard.install_health("0000000000") is None

    def test_fleet_health_computed_once_and_shared(self, study):
        dashboard = Dashboard(study.server)
        calls = {"n": 0}
        original = Dashboard.install_health

        def counting(self, install_id):
            calls["n"] += 1
            return original(self, install_id)

        Dashboard.install_health = counting
        try:
            dashboard.overview()
            dashboard.lagging_installs()
            dashboard.overview()
        finally:
            Dashboard.install_health = original
        # One pass over the fleet serves every monitoring caller.
        assert calls["n"] == len(study.server.install_ids())

    def test_fleet_health_refresh(self, study):
        dashboard = Dashboard(study.server)
        first = dashboard.fleet_health()
        assert dashboard.fleet_health() is first
        assert dashboard.fleet_health(refresh=True) is not first

    def test_overview_reports_malformed_split(self, dashboard):
        overview = dashboard.overview()
        assert "malformed_chunks" in overview
        assert "malformed_records" in overview

    def test_permission_reporting_flags(self, study, dashboard):
        accounts_reported = usage_reported = 0
        for install_id in study.server.install_ids():
            health = dashboard.install_health(install_id)
            accounts_reported += health.reported_accounts
            usage_reported += health.reported_usage
        # Grant rates are ~80% / ~96%, so both flags vary across installs.
        total = len(study.server.install_ids())
        assert 0 < accounts_reported <= total
        assert 0 < usage_reported <= total


class TestValidation:
    def test_clean_study_validates(self, dashboard):
        issues = dashboard.validate()
        # A healthy simulated deployment produces no validation issues.
        assert issues == []

    def test_orphan_uninstall_detected(self, rng):
        """Plant a corrupt uninstall event in a fresh mini-deployment."""
        from repro.platform.mobile_app import RacketStoreApp
        from repro.platform.server import RacketStoreServer
        from repro.platform.transport import Transport
        from repro.simulation.device import SimDevice

        server = RacketStoreServer()
        device = SimDevice("regular", is_worker=False, rng=rng)
        app = RacketStoreApp(
            device, server.issue_participant_id(), server, Transport(server), rng
        )
        app.sign_in(0.0)
        app.collect_day(0.0)
        server.store["app_changes"].insert(
            {
                "_type": "app_change",
                "install_id": app.install_id,
                "participant_id": app.participant_id,
                "timestamp": 1.0,
                "action": "uninstall",
                "package": "com.never.seen.pkg",
            }
        )
        issues = Dashboard(server).validate()
        assert any(i.check == "uninstall_without_install" for i in issues)
