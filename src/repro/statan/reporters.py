"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from .findings import Finding

__all__ = ["LintResult", "render_text", "render_json", "summary_line"]


class LintResult:
    """What one lint run produced, pre-split against the baseline."""

    def __init__(
        self,
        new: list[Finding],
        baselined: list[Finding],
        stale: list[dict],
        files_checked: int,
        stats: dict | None = None,
        baseline_path: str = "statan-baseline.json",
    ) -> None:
        self.new = new
        self.baselined = baselined
        self.stale = stale
        self.files_checked = files_checked
        #: Index/project statistics from the engine (files indexed,
        #: functions, call-graph edges, schemas, ...), when available.
        self.stats = stats or {}
        self.baseline_path = baseline_path

    @property
    def exit_code(self) -> int:
        # Stale entries fail the gate too: a baseline referencing fixed
        # findings would silently re-admit them if they regressed at a
        # different fingerprint-adjacent spot, and it accretes forever.
        return 1 if self.new or self.stale else 0


def _rule_counts(findings: list[Finding]) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))


def summary_line(result: LintResult) -> str:
    """One-line run summary (also what CI prints into the job log)."""
    by_rule = _rule_counts(result.new)
    summary = (
        f"checked {result.files_checked} files: "
        f"{len(result.new)} new finding(s)"
        + (f" ({by_rule})" if by_rule else "")
        + f", {len(result.baselined)} baselined"
    )
    if result.stale:
        summary += f", {len(result.stale)} stale baseline entr(y/ies)"
    stats = result.stats
    if stats.get("files_indexed"):
        summary += (
            f" | project: {stats['files_indexed']} files indexed, "
            f"{stats.get('functions', 0)} functions, "
            f"{stats.get('call_edges', 0)} call-graph edges, "
            f"{stats.get('schemas', 0)} schemas"
        )
    return summary


def render_text(result: LintResult, verbose_baseline: bool = False) -> str:
    lines: list[str] = []
    for finding in result.new:
        lines.append(finding.format_text())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose_baseline:
        for finding in result.baselined:
            lines.append(f"{finding.format_text()}  (baselined)")
    if lines:
        lines.append("")
    lines.append(summary_line(result))
    if result.stale:
        lines.append(
            "stale baseline entries (the tree no longer produces these "
            "findings):"
        )
        for entry in result.stale:
            lines.append(
                f"    {entry['fingerprint']}  {entry['path']}: "
                f"{entry['rule']}: {entry['snippet']}"
            )
        lines.append(
            f"fix: remove the entries above from {result.baseline_path}, "
            "or rerun with --update-baseline after verifying no finding "
            "was lost"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "stats": result.stats,
        "summary": {
            "new": len(result.new),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale),
        },
        "summary_line": summary_line(result),
        "findings": (
            [dict(f.to_json(), baselined=False) for f in result.new]
            + [dict(f.to_json(), baselined=True) for f in result.baselined]
        ),
        "stale_baseline": result.stale,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
