"""ASCII rendering for experiment reports: tables and paper-vs-measured
rows printed by the benchmark harness and the examples."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value", "paper_vs_measured_rows"]


def format_value(value) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width ASCII table."""
    table = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [separator, line(list(headers)), separator]
    out.extend(line(row) for row in table)
    out.append(separator)
    return "\n".join(out)


def paper_vs_measured_rows(entries: Sequence[tuple[str, float, float]]) -> str:
    """Render (metric, paper value, measured value) triples with the
    measured/paper ratio so drift is visible at a glance."""
    rows = []
    for name, paper, measured in entries:
        ratio = measured / paper if paper else float("nan")
        rows.append((name, paper, measured, ratio))
    return render_table(["metric", "paper", "measured", "ratio"], rows)
