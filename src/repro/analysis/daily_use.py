"""§6.3 apps used per day vs apps installed (Figure 10).

The paper's point: substantial overlap between worker and regular
devices — daily used-app counts alone cannot separate the groups."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from .common import GroupComparison, compare_feature

__all__ = ["DailyUsePoint", "DailyUseResult", "compute_daily_use"]


@dataclass(frozen=True)
class DailyUsePoint:
    install_id: str
    is_worker: bool
    apps_used_per_day: float
    apps_installed: int


@dataclass
class DailyUseResult:
    """Figure 10 scatter data."""

    points: list[DailyUsePoint]
    comparison: GroupComparison

    def overlap_fraction(self) -> float:
        """Fraction of worker devices inside the regular devices' IQR of
        apps-used-per-day — a quantitative 'substantial overlap' check."""
        regular = sorted(
            p.apps_used_per_day for p in self.points if not p.is_worker
        )
        workers = [p.apps_used_per_day for p in self.points if p.is_worker]
        if not regular or not workers:
            return 0.0
        lo = regular[len(regular) // 4]
        hi = regular[(3 * len(regular)) // 4]
        return sum(1 for w in workers if lo <= w <= hi) / len(workers)


def compute_daily_use(observations: list[DeviceObservation]) -> DailyUseResult:
    reporting = [o for o in observations if o.initial is not None and o.fast_runs]
    points = [
        DailyUsePoint(
            install_id=obs.install_id,
            is_worker=obs.is_worker,
            apps_used_per_day=obs.apps_used_per_day,
            apps_installed=obs.n_installed_apps,
        )
        for obs in reporting
    ]
    return DailyUseResult(
        points=points,
        comparison=compare_feature(
            "apps_used_per_day",
            [p.apps_used_per_day for p in points if p.is_worker],
            [p.apps_used_per_day for p in points if not p.is_worker],
        ),
    )
