"""CART decision trees (classification and regression), built from scratch.

These trees are the building blocks for :mod:`repro.ml.forest` (Random
Forest) and :mod:`repro.ml.gradient_boosting` (the XGB-style booster).
The classifier records per-feature *mean decrease in Gini* importances,
which is exactly the importance measure the paper uses for Figures 13
and 14.

Splits are exact: every feature is sorted once per node and all midpoints
between distinct values are evaluated with vectorised prefix sums.  For
the dataset sizes in this reproduction (thousands of rows, tens of
features) this is fast and has no discretisation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_random_state, check_X_y

__all__ = ["TreeNode", "DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class TreeNode:
    """One node of a fitted CART tree.

    Leaves carry ``value`` (class-probability vector or regression mean);
    internal nodes carry a ``feature``/``threshold`` split where samples
    with ``x[feature] <= threshold`` go left.
    """

    value: np.ndarray
    n_samples: int
    impurity: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.node_count() + self.right.node_count()


def _gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.dot(p, p))


def _best_split_classification(
    X: np.ndarray,
    onehot: np.ndarray,
    feature_ids: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Search for the Gini-gain-maximising split among ``feature_ids``.

    ``onehot`` is the one-hot label matrix for the samples at this node —
    encoded once per fit and sliced down the recursion, rather than
    rebuilt at every node.  Returns ``(feature, threshold, gain)``;
    ``feature == -1`` means no valid split exists.  Gain is the
    *unnormalised* impurity decrease ``N * (impurity_parent - weighted
    child impurity)`` so that summing gains over a tree matches the
    classic mean-decrease-in-Gini totals.
    """
    n = onehot.shape[0]
    parent_counts = onehot.sum(axis=0)
    parent_impurity = _gini(parent_counts)

    best_feature, best_threshold, best_gain = -1, 0.0, 0.0
    for feature in feature_ids:
        order = np.argsort(X[:, feature], kind="mergesort")
        values = X[order, feature]
        counts_left = np.cumsum(onehot[order], axis=0)

        # Candidate split positions: between consecutive distinct values,
        # honouring the min_samples_leaf constraint on both sides.
        distinct = values[1:] != values[:-1]
        positions = np.nonzero(distinct)[0]  # split after index i -> left size i+1
        if positions.size == 0:
            continue
        left_sizes = positions + 1
        valid = (left_sizes >= min_samples_leaf) & (n - left_sizes >= min_samples_leaf)
        positions = positions[valid]
        if positions.size == 0:
            continue

        left = counts_left[positions]
        right = parent_counts - left
        n_left = left.sum(axis=1)
        n_right = right.sum(axis=1)
        gini_left = 1.0 - np.sum((left / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right / n_right[:, None]) ** 2, axis=1)
        weighted = (n_left * gini_left + n_right * gini_right) / n
        gains = n * (parent_impurity - weighted)

        i = int(np.argmax(gains))
        if gains[i] > best_gain + 1e-12:
            best_gain = float(gains[i])
            best_feature = int(feature)
            pos = positions[i]
            best_threshold = float((values[pos] + values[pos + 1]) / 2.0)
    return best_feature, best_threshold, best_gain


def _best_split_regression(
    X: np.ndarray,
    y: np.ndarray,
    feature_ids: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Variance-reduction split search for regression trees."""
    n = y.shape[0]
    parent_sse = float(np.sum((y - y.mean()) ** 2))
    best_feature, best_threshold, best_gain = -1, 0.0, 0.0
    for feature in feature_ids:
        order = np.argsort(X[:, feature], kind="mergesort")
        values = X[order, feature]
        y_sorted = y[order]
        csum = np.cumsum(y_sorted)
        csum2 = np.cumsum(y_sorted**2)

        distinct = values[1:] != values[:-1]
        positions = np.nonzero(distinct)[0]
        if positions.size == 0:
            continue
        left_sizes = positions + 1
        valid = (left_sizes >= min_samples_leaf) & (n - left_sizes >= min_samples_leaf)
        positions = positions[valid]
        if positions.size == 0:
            continue

        n_left = positions + 1.0
        n_right = n - n_left
        sum_left = csum[positions]
        sum2_left = csum2[positions]
        sum_right = csum[-1] - sum_left
        sum2_right = csum2[-1] - sum2_left
        sse_left = sum2_left - sum_left**2 / n_left
        sse_right = sum2_right - sum_right**2 / n_right
        gains = parent_sse - (sse_left + sse_right)

        i = int(np.argmax(gains))
        if gains[i] > best_gain + 1e-12:
            best_gain = float(gains[i])
            best_feature = int(feature)
            pos = positions[i]
            best_threshold = float((values[pos] + values[pos + 1]) / 2.0)
    return best_feature, best_threshold, best_gain


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classifier with Gini impurity and exact splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until pure or exhausted.
    min_samples_split:
        Minimum samples required to consider splitting a node.
    min_samples_leaf:
        Minimum samples that must land in each child.
    max_features:
        Number of features sampled per split: ``None`` (all), an int,
        a float fraction, or ``"sqrt"`` / ``"log2"`` (used by forests).
    random_state:
        Seed for per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # -- fitting -----------------------------------------------------------
    def fit(self, X, y, sample_classes: int | None = None) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        self.n_classes_ = sample_classes or len(self.classes_)
        self.n_features_ = X.shape[1]
        self._rng = check_random_state(self.random_state)
        self._importances = np.zeros(self.n_features_, dtype=np.float64)
        self._n_fit_samples = X.shape[0]
        # One-hot encode labels once per fit; the recursion slices this
        # matrix down alongside X instead of rebuilding it at every node.
        onehot = np.zeros((X.shape[0], self.n_classes_), dtype=np.float64)
        onehot[np.arange(X.shape[0]), encoded] = 1.0
        self.root_ = self._grow(X, encoded, onehot, depth=0)
        return self

    def _resolve_max_features(self) -> int:
        m = self.max_features
        if m is None:
            return self.n_features_
        if m == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if m == "log2":
            return max(1, int(np.log2(self.n_features_)))
        if isinstance(m, float):
            return max(1, int(m * self.n_features_))
        return max(1, min(int(m), self.n_features_))

    def _leaf(self, y: np.ndarray) -> TreeNode:
        counts = np.bincount(y, minlength=self.n_classes_).astype(np.float64)
        return TreeNode(value=counts / counts.sum(), n_samples=y.shape[0], impurity=_gini(counts))

    def _grow(self, X: np.ndarray, y: np.ndarray, onehot: np.ndarray, depth: int) -> TreeNode:
        node = self._leaf(y)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.shape[0] < self.min_samples_split
            or node.impurity == 0.0
        ):
            return node

        k = self._resolve_max_features()
        if k < self.n_features_:
            feature_ids = self._rng.choice(self.n_features_, size=k, replace=False)
        else:
            feature_ids = np.arange(self.n_features_)

        feature, threshold, gain = _best_split_classification(
            X, onehot, feature_ids, self.min_samples_leaf
        )
        if feature < 0:
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.gain = gain
        # Mean decrease in Gini: impurity decrease weighted by the fraction
        # of training samples that reach this node.
        self._importances[feature] += gain / self._n_fit_samples
        node.left = self._grow(X[mask], y[mask], onehot[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], onehot[~mask], depth + 1)
        return node

    # -- prediction --------------------------------------------------------
    def _leaf_values(self, X: np.ndarray) -> np.ndarray:
        out = np.empty((X.shape[0], self.n_classes_), dtype=np.float64)
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def predict_proba(self, X) -> np.ndarray:
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return self._leaf_values(X)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean decrease in Gini, normalised to sum to 1 (when nonzero)."""
        total = self._importances.sum()
        if total == 0.0:
            return self._importances.copy()
        return self._importances / total

    def get_depth(self) -> int:
        return self.root_.depth()

    def get_n_nodes(self) -> int:
        return self.root_.node_count()


class DecisionTreeRegressor(BaseEstimator):
    """CART regressor with variance-reduction splits (used in tests and
    as a reference implementation for the boosted trees)."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = check_array(X)
        y = np.asarray(y, dtype=np.float64)
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y length mismatch")
        self.n_features_ = X.shape[1]
        self._rng = check_random_state(self.random_state)
        self.root_ = self._grow(X, y, depth=0)
        return self

    def _resolve_max_features(self) -> int:
        m = self.max_features
        if m is None:
            return self.n_features_
        if m == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if m == "log2":
            return max(1, int(np.log2(self.n_features_)))
        if isinstance(m, float):
            return max(1, int(m * self.n_features_))
        return max(1, min(int(m), self.n_features_))

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        mean = float(y.mean())
        sse = float(np.sum((y - mean) ** 2))
        node = TreeNode(value=np.array([mean]), n_samples=y.shape[0], impurity=sse)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.shape[0] < self.min_samples_split
            or sse <= 1e-12
        ):
            return node

        k = self._resolve_max_features()
        if k < self.n_features_:
            feature_ids = self._rng.choice(self.n_features_, size=k, replace=False)
        else:
            feature_ids = np.arange(self.n_features_)

        feature, threshold, gain = _best_split_regression(
            X, y, feature_ids, self.min_samples_leaf
        )
        if feature < 0:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.gain = gain
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X) -> np.ndarray:
        X = check_array(X)
        out = np.empty(X.shape[0], dtype=np.float64)
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value[0]
        return out
