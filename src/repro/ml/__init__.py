"""From-scratch ML substrate for the RacketStore reproduction.

Implements every algorithm evaluated in the paper's Tables 1 and 2 —
Extreme Gradient Boosting, Random Forest, Logistic Regression,
K-Nearest Neighbors, Learning Vector Quantization, and linear SVM —
plus the supporting machinery: metrics (precision/recall/F1/AUC/FPR),
stratified repeated k-fold cross-validation, and the SMOTE /
over- / under-sampling strategies from §7.2 and §8.2.
"""

from .calibration import CalibratedClassifier, IsotonicCalibrator, PlattCalibrator
from .base import BaseEstimator, ClassifierMixin, check_array, check_random_state, check_X_y, clone
from .forest import RandomForestClassifier
from .inspection import PermutationImportance, permutation_importance
from .gradient_boosting import GradientBoostingClassifier
from .knn import KNeighborsClassifier
from .logistic import LogisticRegression
from .lvq import LVQClassifier
from .metrics import (
    ClassificationReport,
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    false_positive_rate,
    precision_recall_fscore,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from .model_selection import (
    CrossValidationResult,
    StratifiedKFold,
    cross_validate,
    train_test_split,
)
from .preprocessing import MinMaxScaler, SimpleImputer, StandardScaler
from .sampling import class_counts, random_oversample, random_undersample, smote
from .svm import LinearSVC
from .tuning import GridSearchResult, grid_search
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "CalibratedClassifier",
    "IsotonicCalibrator",
    "PlattCalibrator",
    "ClassifierMixin",
    "check_array",
    "check_random_state",
    "check_X_y",
    "clone",
    "RandomForestClassifier",
    "PermutationImportance",
    "permutation_importance",
    "GridSearchResult",
    "grid_search",
    "GradientBoostingClassifier",
    "KNeighborsClassifier",
    "LogisticRegression",
    "LVQClassifier",
    "LinearSVC",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "ClassificationReport",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "false_positive_rate",
    "precision_recall_fscore",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "CrossValidationResult",
    "StratifiedKFold",
    "cross_validate",
    "train_test_split",
    "MinMaxScaler",
    "SimpleImputer",
    "StandardScaler",
    "class_counts",
    "random_oversample",
    "random_undersample",
    "smote",
]
