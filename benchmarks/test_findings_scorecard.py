"""Bench: the full §6-§8 findings scorecard on the paper-scale cohort."""

from repro.experiments.common import ExperimentReport
from repro.experiments.findings import check_findings
from repro.reporting import render_table


def test_findings_scorecard(benchmark, workbench, pipeline_result, emit):
    results = benchmark.pedantic(check_findings, args=(workbench,), rounds=1, iterations=1)
    holding = sum(r.holds for r in results)
    report = ExperimentReport(
        "findings",
        "Paper findings scorecard (§6-§8 qualitative claims)",
        lines=[
            render_table(["id", "section", "status", "measured"], [r.row() for r in results]),
            f"{holding}/{len(results)} findings hold",
        ],
        metrics={"holding": float(holding), "total": float(len(results))},
    )
    emit(report)
    # On the calibrated default cohort every finding must hold.
    assert holding == len(results)
