#!/usr/bin/env python3
"""Prior-work baselines vs RacketStore (§1/§10 motivation).

Burst- and lockstep-based detectors only see the public review stream.
The paper's premise is that organic workers — who hide a trickle of paid
reviews inside personal device use — evade them, while RacketStore's
device-usage features do not.  This example runs both baseline families
and the RacketStore pipeline on the same simulated cohort and compares
per-kind detection rates.

Run:  python examples/baseline_comparison.py
"""

import sys

from repro.core import DetectionPipeline
from repro.core.baselines import (
    BurstDetector,
    LockstepDetector,
    evaluate_baseline_on_devices,
)
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def main() -> int:
    data = run_study(SimulationConfig.small())
    result = DetectionPipeline(n_splits=5).run(data)
    observations = result.observations

    burst = evaluate_baseline_on_devices(
        BurstDetector(window_days=3.0, min_burst_reviews=5),
        data.review_store,
        observations,
    )
    lockstep = evaluate_baseline_on_devices(
        LockstepDetector(min_common_apps=4, min_group_size=3),
        data.review_store,
        observations,
    )

    verdicts = {v.install_id: v.predicted_worker for v in result.verdicts}
    racket = {"organic_worker": [0, 0], "dedicated_worker": [0, 0], "regular": [0, 0]}
    for obs in observations:
        kind = obs.participant.persona.kind
        racket[kind][1] += 1
        racket[kind][0] += int(verdicts[obs.install_id])

    def rate(pair):
        return pair[0] / pair[1] if pair[1] else 0.0

    rows = [
        ("review bursts", f"{burst['recall_organic']:.0%}", f"{burst['recall_dedicated']:.0%}", f"{burst['fpr_regular']:.0%}"),
        ("lockstep co-review", f"{lockstep['recall_organic']:.0%}", f"{lockstep['recall_dedicated']:.0%}", f"{lockstep['fpr_regular']:.0%}"),
        ("RacketStore pipeline", f"{rate(racket['organic_worker']):.0%}", f"{rate(racket['dedicated_worker']):.0%}", f"{rate(racket['regular']):.0%}"),
    ]
    print(render_table(["detector", "organic recall", "dedicated recall", "regular FPR"], rows))
    print(
        "\nThe review-stream baselines catch promotion-dedicated devices "
        "but miss organic workers; the device-usage features close that gap "
        "— the paper's core claim."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
