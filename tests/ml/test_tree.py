"""Tests for the CART trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class TestDecisionTreeClassifier:
    def test_memorizes_training_data(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier().fit(X, y)
        # Unlimited depth on continuous features separates everything.
        assert tree.score(X, y) >= 0.99

    def test_axis_aligned_split_found_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.feature == 0
        assert tree.root_.threshold == pytest.approx(1.5)
        assert (tree.predict([[1.4], [1.6]]) == [0, 1]).all()

    def test_max_depth_limits_tree(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.get_depth() <= 2

    def test_min_samples_leaf_respected(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree.root_)) >= 20

    def test_pure_node_is_leaf(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf

    def test_importances_sum_to_one(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        assert (tree.feature_importances_ >= 0).all()

    def test_irrelevant_feature_gets_no_importance(self, rng):
        signal = rng.normal(0, 1, 300)
        noise = np.zeros(300)  # constant column can never split
        X = np.column_stack([signal, noise])
        y = (signal > 0).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_[1] == 0.0

    def test_predict_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        proba = DecisionTreeClassifier(max_depth=3).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_string_labels_roundtrip(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["benign", "benign", "fraud", "fraud"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) == {"benign", "fraud"}

    def test_feature_count_validated_at_predict(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, X.shape[1] + 1)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.array([[np.nan], [1.0]]), [0, 1])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6))
    def test_deeper_trees_never_fit_worse(self, depth):
        rng = np.random.default_rng(depth)
        X = rng.normal(0, 1, (200, 3))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        shallow = DecisionTreeClassifier(max_depth=depth).fit(X, y).score(X, y)
        deeper = DecisionTreeClassifier(max_depth=depth + 2).fit(X, y).score(X, y)
        assert deeper >= shallow - 1e-12


class TestDecisionTreeRegressor:
    def test_step_function_fit(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X.ravel() >= 10).astype(float) * 5.0
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        pred = model.predict(X)
        np.testing.assert_allclose(pred, y)

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        model = DecisionTreeRegressor().fit(X, np.full(10, 3.14))
        assert model.root_.is_leaf
        assert model.predict([[5.0]])[0] == pytest.approx(3.14)

    def test_deeper_reduces_train_mse(self, rng):
        X = rng.uniform(-3, 3, (300, 1))
        y = np.sin(X.ravel())
        mse = []
        for depth in (1, 3, 6):
            pred = DecisionTreeRegressor(max_depth=depth).fit(X, y).predict(X)
            mse.append(float(np.mean((pred - y) ** 2)))
        assert mse[0] >= mse[1] >= mse[2]
