"""The data-plane hard contract (DESIGN.md §9): dict and columnar
backends — and scalar and batch feature extraction — produce
byte-identical analyses.

Exact equality throughout: feature matrices compare by ``tobytes()``,
labels and instances by ``==``, experiment reports by their rendered
text.  Any deviation, however small, is a contract violation.
"""

import numpy as np
import pytest

from repro.core.app_features import app_feature_matrix, app_feature_vector
from repro.core.datasets import build_app_dataset, build_device_dataset
from repro.core.device_features import device_feature_matrix, device_feature_vector
from repro.core.observations import build_observations
from repro.experiments import Workbench, run_experiment
from repro.simulation import run_study


@pytest.fixture(scope="module")
def dict_study(small_config):
    return run_study(small_config.scaled(store_backend="dict"))


@pytest.fixture(scope="module")
def columnar_study(small_config):
    return run_study(small_config.scaled(store_backend="columnar"))


@pytest.fixture(scope="module")
def dict_observations(dict_study):
    return build_observations(dict_study, dict_study.eligible_participants(min_days=2))


@pytest.fixture(scope="module")
def columnar_observations(columnar_study):
    return build_observations(
        columnar_study, columnar_study.eligible_participants(min_days=2)
    )


def test_store_contents_identical(dict_study, columnar_study):
    names = ("installs", "initial_snapshots", "slow_runs", "fast_runs", "app_changes")
    for name in names:
        dict_docs = dict_study.server.store[name].find()
        columnar_docs = columnar_study.server.store[name].find()
        assert dict_docs == columnar_docs, name


def test_observations_identical(dict_observations, columnar_observations):
    assert len(dict_observations) == len(columnar_observations)
    for d, c in zip(dict_observations, columnar_observations):
        assert d.install_id == c.install_id
        assert (d.initial or {}) == dict(c.initial or {})
        assert [dict(r) for r in c.slow_runs] == d.slow_runs
        assert [dict(r) for r in c.fast_runs] == d.fast_runs
        assert [dict(r) for r in c.app_changes] == d.app_changes
        assert d.google_ids == c.google_ids
        assert d.device_reviews == c.device_reviews


def test_app_feature_matrix_byte_identical(dict_study, dict_observations,
                                           columnar_study, columnar_observations):
    for d_obs, c_obs in zip(dict_observations, columnar_observations):
        packages = sorted(d_obs.observed_packages)
        if not packages:
            continue
        scalar = np.vstack(
            [
                app_feature_vector(d_obs, p, dict_study.catalog, dict_study.vt_client)
                for p in packages
            ]
        )
        batch = app_feature_matrix(
            c_obs, packages, columnar_study.catalog, columnar_study.vt_client
        )
        assert scalar.tobytes() == batch.tobytes(), d_obs.install_id


def test_device_feature_matrix_byte_identical(dict_observations, columnar_observations):
    scores = [None if i % 3 == 0 else i / 7 for i in range(len(dict_observations))]
    scalar = np.vstack(
        [device_feature_vector(o, s) for o, s in zip(dict_observations, scores)]
    )
    batch = device_feature_matrix(columnar_observations, scores)
    assert scalar.tobytes() == batch.tobytes()


def test_datasets_byte_identical(dict_study, dict_observations,
                                 columnar_study, columnar_observations):
    scalar_apps = build_app_dataset(
        dict_study, dict_observations, features="scalar"
    )
    batch_apps = build_app_dataset(
        columnar_study, columnar_observations, features="batch"
    )
    assert scalar_apps.X.tobytes() == batch_apps.X.tobytes()
    assert scalar_apps.y.tobytes() == batch_apps.y.tobytes()
    assert scalar_apps.instances == batch_apps.instances

    suspiciousness = {
        o.install_id: i / 11 for i, o in enumerate(dict_observations) if i % 2
    }
    scalar_devices = build_device_dataset(
        dict_study, dict_observations, suspiciousness, features="scalar"
    )
    batch_devices = build_device_dataset(
        columnar_study, columnar_observations, suspiciousness, features="batch"
    )
    assert scalar_devices.X.tobytes() == batch_devices.X.tobytes()
    assert scalar_devices.y.tobytes() == batch_devices.y.tobytes()


def test_invalid_features_knob_rejected(dict_study, dict_observations):
    with pytest.raises(ValueError, match="features"):
        build_app_dataset(dict_study, dict_observations, features="vectorised")
    with pytest.raises(ValueError, match="features"):
        build_device_dataset(dict_study, dict_observations, features="turbo")


def test_experiment_report_identical(small_config):
    # fig07 (install-to-review) consumes the full observation join; its
    # rendered report must not depend on the store backend.
    reports = []
    for backend in ("dict", "columnar"):
        workbench = Workbench(small_config.scaled(store_backend=backend))
        reports.append(run_experiment("fig07", workbench).render())
    assert reports[0] == reports[1]


# -- interleaved insert/query/ingest workloads -------------------------------
#
# The staged-write data plane defers columnarization and index
# maintenance until a read needs them, so the contract must hold not
# just for settled stores but at every point of an interleaved
# write/read sequence: each query below runs against both backends
# mid-ingest and must return byte-identical documents.

from repro.benchmark import _make_fast_run_docs
from repro.parallel import spawn_seeds
from repro.platform.store import DocumentStore


def _paired_fast_run_collections():
    pair = []
    for backend in ("dict", "columnar"):
        collection = DocumentStore(backend=backend).collection("fast_runs")
        collection.create_index("install_id")
        pair.append(collection)
    return pair


def test_interleaved_batch_ingest_and_queries_identical():
    docs = _make_fast_run_docs(12, 6, 3)
    dict_col, columnar_col = _paired_fast_run_collections()
    queries = [
        {"install_id": "inst00003"},
        {"start": {"$gte": 120.0, "$lt": 600.0}},
        {"screen_on": True, "battery": {"$lt": 0.5}},
        {"foreground": {"$in": ["app1", "app2"]}},
        {"foreground": {"$exists": True}},
        {"install_id": "inst00007", "end": {"$gt": 200.0}},
    ]
    chunk = 9
    for lo in range(0, len(docs), chunk):
        batch = docs[lo : lo + chunk]
        assert dict_col.insert_many(batch) == columnar_col.insert_many(batch)
        assert len(dict_col) == len(columnar_col)
        for query in queries:
            assert dict_col.find(query) == columnar_col.find(query), query
            assert dict_col.count(query) == columnar_col.count(query), query
        assert dict_col.distinct("foreground") == columnar_col.distinct(
            "foreground"
        )
    assert dict_col.find() == columnar_col.find()


def test_single_inserts_interleaved_with_indexed_finds_identical():
    # Regression: single inserts must be visible to the very next
    # indexed find (the incremental index used to invalidate; the
    # staged path must merge before probing), byte-for-byte.
    docs = _make_fast_run_docs(6, 5, 5)
    dict_col, columnar_col = _paired_fast_run_collections()
    for i, doc in enumerate(docs):
        dict_col.insert(doc)
        columnar_col.insert(doc)
        query = {"install_id": doc["install_id"]}
        assert dict_col.find(query) == columnar_col.find(query)
        assert dict_col.find_one(query) == columnar_col.find_one(query)
        if i % 3 == 0:
            ranged = {
                "install_id": doc["install_id"],
                "start": {"$lte": doc["start"]},
            }
            assert dict_col.find(ranged) == columnar_col.find(ranged)
    assert dict_col.find() == columnar_col.find()


@pytest.mark.parametrize("root_seed", [0, 1, 2])
def test_randomized_interleaved_workload_equivalence(root_seed):
    # Property-style replay: a seeded random interleaving of
    # insert/insert_many/find/count/distinct against both backends.
    (seed,) = spawn_seeds(root_seed, 1)
    rng = np.random.default_rng(seed)
    docs = _make_fast_run_docs(10, 8, root_seed)
    dict_col, columnar_col = _paired_fast_run_collections()
    install_ids = sorted({doc["install_id"] for doc in docs})
    i = 0
    while i < len(docs):
        choice = int(rng.integers(6))
        if choice == 0:
            n = int(rng.integers(1, 8))
            batch = docs[i : i + n]
            i += n
            assert dict_col.insert_many(batch) == columnar_col.insert_many(batch)
        elif choice == 1:
            dict_col.insert(docs[i])
            columnar_col.insert(docs[i])
            i += 1
        elif choice == 2:
            query = {"install_id": install_ids[int(rng.integers(len(install_ids)))]}
            assert dict_col.find(query) == columnar_col.find(query), query
        elif choice == 3:
            lo = float(rng.random()) * 900.0
            query = {"start": {"$gte": lo, "$lt": lo + 300.0}}
            assert dict_col.find(query) == columnar_col.find(query), query
        elif choice == 4:
            query = {"battery": {"$gte": float(rng.random())}}
            assert dict_col.count(query) == columnar_col.count(query), query
        else:
            assert dict_col.distinct("foreground") == columnar_col.distinct(
                "foreground"
            )
            assert dict_col.distinct(
                "screen_on", {"usage_permission": True}
            ) == columnar_col.distinct("screen_on", {"usage_permission": True})
    assert dict_col.find() == columnar_col.find()
    assert len(dict_col) == len(columnar_col)
