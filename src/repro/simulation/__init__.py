"""Agent-based simulation of the study cohort: the substitute for the
paper's 803 recruited participant devices.

Personas (regular user / organic worker / dedicated worker) are
calibrated against every statistic the paper reports (see
:mod:`repro.simulation.calibration`); :func:`run_study` builds the
full ecosystem and returns the collected :class:`StudyData`.
"""

from .accounts import AccountFactory, DeviceAccount
from .behavior import BehaviorEngine, PendingReview
from .campaigns import Campaign, CampaignBoard, PromoJob
from .clock import SECONDS_PER_DAY, SimClock, day_index, days, hours, minutes
from .config import DEFAULT_SEED, SimulationConfig
from .device import DEVICE_MODELS, InstalledApp, SimDevice
from .events import DeviceEvent, EventType, ForegroundSession
from .personas import Persona, dedicated_worker, organic_worker, regular_user
from .recruitment import FunnelStage, RecruitmentFunnel, simulate_funnel
from .world import Participant, StudyData, build_world, run_study

__all__ = [
    "AccountFactory",
    "DeviceAccount",
    "BehaviorEngine",
    "PendingReview",
    "Campaign",
    "CampaignBoard",
    "PromoJob",
    "SECONDS_PER_DAY",
    "SimClock",
    "day_index",
    "days",
    "hours",
    "minutes",
    "DEFAULT_SEED",
    "SimulationConfig",
    "DEVICE_MODELS",
    "InstalledApp",
    "SimDevice",
    "DeviceEvent",
    "EventType",
    "ForegroundSession",
    "Persona",
    "dedicated_worker",
    "organic_worker",
    "regular_user",
    "FunnelStage",
    "RecruitmentFunnel",
    "simulate_funnel",
    "Participant",
    "StudyData",
    "build_world",
    "run_study",
]
