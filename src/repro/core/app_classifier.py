"""App classifier (§7.2): detecting promotion-installed apps.

Evaluates the paper's five algorithms with repeated 10-fold CV (n=5),
reports Table 1, computes the Figure 13 Gini importances from a random
forest, and produces a deployable model for the detection pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..ml import (
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    LVQClassifier,
    RandomForestClassifier,
    cross_validate,
)
from ..ml.model_selection import CrossValidationResult
from ..ml.preprocessing import SimpleImputer
from .datasets import AppDataset

__all__ = ["APP_ALGORITHMS", "AppClassifierEvaluation", "AppClassifier", "evaluate_app_algorithms"]


def APP_ALGORITHMS(random_state: int = 0) -> dict[str, object]:
    """The Table 1 algorithm suite (KNN uses K=5 per the paper)."""
    return {
        "XGB": GradientBoostingClassifier(
            n_estimators=150, max_depth=4, learning_rate=0.15, random_state=random_state
        ),
        "RF": RandomForestClassifier(n_estimators=120, random_state=random_state),
        "LR": LogisticRegression(C=1.0),
        "KNN": KNeighborsClassifier(n_neighbors=5),
        "LVQ": LVQClassifier(prototypes_per_class=6, epochs=25, random_state=random_state),
    }


@dataclass
class AppClassifierEvaluation:
    """Table 1 + Figure 13 in object form."""

    results: dict[str, CrossValidationResult]
    feature_importances: dict[str, float]
    n_suspicious: int
    n_regular: int
    sampling: str = "none"

    def table_rows(self) -> list[tuple[str, float, float, float]]:
        """(algorithm, precision, recall, f1) sorted best-F1-first."""
        rows = [
            (name, r.precision, r.recall, r.f1) for name, r in self.results.items()
        ]
        return sorted(rows, key=lambda row: -row[3])

    def best_algorithm(self) -> str:
        return self.table_rows()[0][0]

    def top_features(self, k: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(self.feature_importances.items(), key=lambda kv: -kv[1])
        return ranked[:k]


def evaluate_app_algorithms(
    dataset: AppDataset,
    n_splits: int = 10,
    n_repeats: int = 5,
    resample: str | None = None,
    random_state: int = 0,
    algorithms: dict[str, object] | None = None,
    n_jobs: int | None = None,
) -> AppClassifierEvaluation:
    """Run the paper's CV protocol over the algorithm suite.

    ``n_jobs`` fans the CV folds (and the importance forest's trees) out
    across worker processes without changing any reported number.
    """
    algorithms = algorithms or APP_ALGORITHMS(random_state)
    results: dict[str, CrossValidationResult] = {}
    for name, estimator in algorithms.items():
        with obs.trace(f"ml.cv.app.{name}"):
            results[name] = cross_validate(
                estimator,
                dataset.X,
                dataset.y,
                n_splits=n_splits,
                n_repeats=n_repeats,
                resample=resample,
                random_state=random_state,
                name=name,
                n_jobs=n_jobs,
            )

    # Figure 13: mean decrease in Gini from a forest over the full data.
    with obs.trace("ml.importances.app"):
        forest = RandomForestClassifier(
            n_estimators=150, random_state=random_state, n_jobs=n_jobs
        )
        forest.fit(dataset.X, dataset.y)
    importances = dict(zip(dataset.feature_names, forest.feature_importances_))

    return AppClassifierEvaluation(
        results=results,
        feature_importances=importances,
        n_suspicious=dataset.n_suspicious,
        n_regular=dataset.n_regular,
        sampling=resample or "none",
    )


class AppClassifier:
    """Deployable promotion-usage detector (XGB, the Table 1 winner).

    Wraps imputation + the boosted model; ``predict``/``predict_proba``
    accept raw (possibly NaN) feature vectors in APP_FEATURE_NAMES order.
    """

    def __init__(self, random_state: int = 0) -> None:
        self._imputer = SimpleImputer(strategy="median")
        self._model = GradientBoostingClassifier(
            n_estimators=150, max_depth=4, learning_rate=0.15, random_state=random_state
        )
        self.feature_names: tuple[str, ...] = ()

    def fit(self, dataset: AppDataset) -> "AppClassifier":
        X = self._imputer.fit_transform(dataset.X)
        self._model.fit(X, dataset.y)
        self.feature_names = dataset.feature_names
        return self

    def predict(self, X) -> np.ndarray:
        return self._model.predict(self._imputer.transform(np.atleast_2d(X)))

    def predict_proba(self, X) -> np.ndarray:
        return self._model.predict_proba(self._imputer.transform(np.atleast_2d(X)))

    def flag_fraction(self, X) -> float:
        """Fraction of instances flagged as promotion (the per-device
        'app suspiciousness' of §8.1)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[0] == 0:
            return 0.0
        return float(np.mean(self.predict(X) == 1))
