"""Feature preprocessing helpers: scaling and missing-value imputation.

Several §7.1 features are undefined for some instances (e.g. install-to-
review time when an app was never reviewed from the device); the feature
extractors encode those as NaN and classifiers receive imputed values.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator

__all__ = ["StandardScaler", "MinMaxScaler", "SimpleImputer"]


class StandardScaler(BaseEstimator):
    """Z-score features using training mean/std (constant columns pass through)."""

    def __init__(self) -> None:
        pass

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features to [0, 1] using the training range."""

    def __init__(self) -> None:
        pass

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        return self

    def transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return (X - self.min_) / self.span_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class SimpleImputer(BaseEstimator):
    """Replace NaN with a per-column statistic or constant.

    Strategies: ``"mean"``, ``"median"``, ``"constant"`` (with
    ``fill_value``).  A column that is entirely NaN imputes to
    ``fill_value`` (default 0.0).
    """

    def __init__(self, strategy: str = "median", fill_value: float = 0.0) -> None:
        if strategy not in ("mean", "median", "constant"):
            raise ValueError(f"unknown imputation strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X) -> "SimpleImputer":
        X = np.asarray(X, dtype=np.float64)
        if self.strategy == "constant":
            self.statistics_ = np.full(X.shape[1], self.fill_value)
            return self
        import warnings

        with warnings.catch_warnings():
            # An all-NaN column is legal here — it imputes to fill_value.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            if self.strategy == "mean":
                stats = np.nanmean(X, axis=0)
            else:
                stats = np.nanmedian(X, axis=0)
        stats = np.where(np.isnan(stats), self.fill_value, stats)
        self.statistics_ = stats
        return self

    def transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64).copy()
        nan_rows, nan_cols = np.nonzero(np.isnan(X))
        X[nan_rows, nan_cols] = self.statistics_[nan_cols]
        return X

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
