"""Deterministic executors: serial and process-based fan-out.

The executor contract (DESIGN.md §8) guarantees bit-identical results
at any worker count:

1. **Seeds before fan-out.**  Callers derive every RNG seed a job will
   consume *before* submitting it (see :mod:`repro.parallel.seeding`);
   executors never touch randomness.
2. **Index-ordered collection.**  ``map`` returns results in submission
   order, never completion order.
3. **Metrics round-trip.**  When the parent has a live
   :mod:`repro.obs` registry, worker-side metric writes are snapshotted
   and merged back in submission order (see
   :mod:`repro.parallel.worker`).

``n_jobs`` semantics (shared by every call site): ``None`` defers to the
``REPRO_N_JOBS`` environment variable (absent → serial), ``1`` is
serial, ``>= 2`` uses that many worker processes, and ``<= 0`` means
"all cores".  Process pools that cannot start (no fork/spawn available,
sandboxed environments) degrade gracefully to the serial path — same
results, no crash.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from .. import obs
from .worker import in_worker, run_job

__all__ = [
    "SerialExecutor",
    "ProcessExecutor",
    "get_executor",
    "resolve_n_jobs",
    "parallel_map",
]


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Normalise an ``n_jobs`` argument to a concrete worker count.

    ``None`` reads ``REPRO_N_JOBS`` (unset/empty → 1); ``<= 0`` means
    every available core.  Inside a parallel worker the answer is always
    1, so nested fits never fork grandchildren.
    """
    if in_worker():
        return 1
    if n_jobs is None:
        raw = os.environ.get("REPRO_N_JOBS", "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_N_JOBS={raw!r} is not an integer; use e.g. 4, or <= 0 "
                "for all cores"
            ) from exc
    n_jobs = int(n_jobs)
    if n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


class SerialExecutor:
    """In-process executor: the n_jobs=1 reference implementation."""

    n_jobs = 1

    def map(self, fn: Callable[..., Any], tasks: Iterable[tuple]) -> list[Any]:
        return [fn(*args) for args in tasks]


class ProcessExecutor:
    """``concurrent.futures`` process pool with index-ordered collection.

    Results come back in submission order regardless of completion
    order.  If the pool cannot start or breaks before completing (fork
    unavailable, sandbox restrictions), the full task list is re-run
    serially — jobs are pure functions of their pre-drawn seeds, so the
    fallback returns the same values.
    """

    def __init__(self, n_jobs: int, mp_context=None) -> None:
        if n_jobs < 2:
            raise ValueError("ProcessExecutor needs n_jobs >= 2; use SerialExecutor")
        self.n_jobs = n_jobs
        self._mp_context = mp_context

    def _context(self):
        if self._mp_context is not None:
            return self._mp_context
        # Prefer fork (cheap, inherits loaded numpy pages); fall back to
        # the platform default where fork does not exist.
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def map(self, fn: Callable[..., Any], tasks: Iterable[tuple]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.n_jobs, len(tasks)),
                mp_context=self._context(),
            ) as pool:
                futures = [pool.submit(fn, *args) for args in tasks]
                return [future.result() for future in futures]
        except (BrokenProcessPool, OSError, PermissionError):
            obs.get_logger("parallel").warning(
                "process_pool_unavailable", fallback="serial", tasks=len(tasks)
            )
            return SerialExecutor().map(fn, tasks)


def get_executor(n_jobs: int | None = None) -> SerialExecutor | ProcessExecutor:
    """Executor for a resolved worker count (1 → serial)."""
    resolved = resolve_n_jobs(n_jobs)
    if resolved == 1:
        return SerialExecutor()
    return ProcessExecutor(resolved)


def parallel_map(
    fn: Callable[..., Any],
    tasks: Sequence[tuple],
    n_jobs: int | None = None,
) -> list[Any]:
    """Run ``fn(*args)`` for every task; results in submission order.

    The single entry point the ML and experiment layers use.  Serial
    when ``n_jobs`` resolves to 1 (no wrapper overhead); otherwise jobs
    run in worker processes with metrics capture, and worker registry
    snapshots are merged into the parent registry in submission order.
    ``fn`` and every task argument must be picklable when ``n_jobs > 1``.
    """
    tasks = [tuple(args) for args in tasks]
    executor = get_executor(n_jobs)
    if executor.n_jobs == 1 or len(tasks) < 2:
        return SerialExecutor().map(fn, tasks)
    capture = obs.metrics_enabled()
    pairs = executor.map(run_job, [(fn, args, capture) for args in tasks])
    if capture:
        registry = obs.registry()
        for _result, snapshot in pairs:
            if snapshot is not None:
                registry.merge(snapshot)
    return [result for result, _snapshot in pairs]
