"""Simulation configuration: cohort sizes, durations and scale factors.

The default configuration is a scaled-down cohort that preserves the
paper's per-device and per-app statistics while running in seconds.
``SimulationConfig.paper_scale()`` restores the full 803-device cohort
(580 worker / 223 regular) for long runs.

The scale-sensitive labeling threshold of §7.2 (apps with >= 15,000
reviews count as popular) is carried here as ``popular_review_threshold``
because the synthetic catalog's absolute review volumes are scaled too.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.plan import FaultPlan

__all__ = ["SimulationConfig", "DEFAULT_SEED"]

DEFAULT_SEED = 20211102  # IMC '21 started November 2, 2021.


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for one end-to-end study simulation."""

    seed: int = DEFAULT_SEED

    # Cohort composition.  The paper's classifier cohort is 178 worker +
    # 88 regular devices with >= 2 days of snapshots; extra devices model
    # dropouts that report too little data and get filtered out (§7.2).
    n_worker_devices: int = 178
    n_regular_devices: int = 88
    n_dropout_devices: int = 24
    #: Fraction of worker devices run by *organic* workers who blend
    #: promotion into personal use (§8.2 finds 123/178 ≈ 69% organic).
    organic_worker_fraction: float = 123 / 178

    # Study timeline.
    study_days: int = 10
    #: Days of device history generated before RacketStore is installed
    #: (install times, past reviews); affects install-to-review joins.
    history_days: int = 720

    # Catalog composition.  The popular pool is large with Zipf-weighted
    # installation so a long tail of popular-but-niche apps exists —
    # required for the §7.2 "never installed on a worker device" label
    # to select a non-empty regular app set, as it does against the real
    # multi-million-app Play catalog.
    n_popular_apps: int = 2000
    zipf_exponent: float = 1.2
    n_promoted_apps: int = 170
    n_third_party_apps: int = 30
    n_antivirus_apps: int = 25

    # Snapshot cadences (§3).
    fast_period_s: float = 5.0
    slow_period_s: float = 120.0

    # Buffer thresholds (§3): fast file 100 KB, slow file 8 KB.
    fast_buffer_bytes: int = 100 * 1024
    slow_buffer_bytes: int = 8 * 1024

    #: Per-chunk loss probability of the device->server channel (§3
    #: "resilient communications"; the buffer retries until the hash
    #: acknowledgement matches).
    transport_loss_probability: float = 0.02

    # Runtime-permission grant rates (§3: participants may deny either
    # permission; the defaults reproduce the paper's partial-reporting
    # cohort sizes, e.g. only 145 regular + 390 worker devices reported
    # account data for Fig 5).
    grant_usage_stats_prob: float = 0.96
    grant_get_accounts_prob: float = 0.80

    # Labeling rules (§7.2), review threshold scaled with the catalog.
    min_worker_devices_for_suspicious: int = 5
    popular_review_threshold: int = 15_000

    # VirusTotal report availability (§6.4: 12431/18079).
    vt_availability: float = 12_431 / 18_079

    # Evasion study knobs (§9): multipliers applied to worker behaviour.
    worker_review_delay_multiplier: float = 1.0
    worker_accounts_multiplier: float = 1.0
    worker_review_volume_multiplier: float = 1.0

    #: Document-store backend for the server: "columnar" (typed
    #: ColumnFrame storage, DESIGN.md §9) or "dict"; ``None`` defers to
    #: ``$REPRO_STORE_BACKEND`` (default columnar).  Both backends
    #: produce byte-identical analyses — this knob exists for the
    #: equivalence tests and the data-plane benchmark.
    store_backend: str | None = None

    #: Optional seeded fault-injection plan
    #: (:class:`repro.faults.FaultPlan`).  ``None`` — the default — keeps
    #: the paper-calibrated legacy channel (loss only, drawn from the
    #: behaviour rng).  A plan reroutes the upload path through
    #: ``FaultyTransport``/``FaultableServer`` with dedicated seeded
    #: fault streams; the chaos harness asserts the study digest is
    #: byte-identical either way.
    fault_plan: "FaultPlan | None" = None

    def scaled(self, **overrides) -> "SimulationConfig":
        """Copy with overrides (frozen-dataclass convenience)."""
        return replace(self, **overrides)

    @classmethod
    def small(cls) -> "SimulationConfig":
        """Tiny cohort for unit tests (sub-second)."""
        return cls(
            n_worker_devices=24,
            n_regular_devices=14,
            n_dropout_devices=4,
            study_days=6,
            n_popular_apps=500,
            n_promoted_apps=40,
            n_third_party_apps=8,
            n_antivirus_apps=6,
        )

    @classmethod
    def paper_scale(cls) -> "SimulationConfig":
        """Full 803-device cohort (slow; for the headline benchmarks)."""
        return cls(
            n_worker_devices=580,
            n_regular_devices=223,
            n_dropout_devices=140,
            n_popular_apps=4000,
            n_promoted_apps=420,
            n_third_party_apps=60,
            n_antivirus_apps=40,
        )

    @property
    def total_devices(self) -> int:
        return self.n_worker_devices + self.n_regular_devices + self.n_dropout_devices
