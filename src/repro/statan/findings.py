"""Finding model shared by the statan engine, reporters and baseline.

A :class:`Finding` is one rule violation at one source location.  Its
``fingerprint`` identifies the violation *independently of line
numbers* — it hashes the rule id, the file path, the stripped source
line and an occurrence ordinal — so a committed baseline survives
unrelated edits above the grandfathered line.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Finding",
    "assign_fingerprints",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str       # POSIX-style path relative to the scan root
    line: int       # 1-based
    col: int        # 0-based, as reported by ast
    message: str
    snippet: str = ""       # stripped source line the finding anchors to
    fingerprint: str = ""   # filled in by assign_fingerprints()

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def format_text(self) -> str:
        location = f"{self.path}:{self.line}:{self.col + 1}"
        return f"{location}: {self.rule} [{self.severity}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def _fingerprint(rule: str, path: str, snippet: str, ordinal: int) -> str:
    payload = f"{rule}|{path}|{snippet}|{ordinal}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def assign_fingerprints(findings: list[Finding]) -> list[Finding]:
    """Return findings with stable fingerprints filled in.

    Identical (rule, path, snippet) triples — e.g. the same guard
    repeated in two methods of one file — are disambiguated by an
    ordinal assigned in line order, so each occurrence baselines
    independently.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    counts: dict[tuple[str, str, str], int] = {}
    stamped = []
    for finding in ordered:
        key = (finding.rule, finding.path, finding.snippet)
        ordinal = counts.get(key, 0)
        counts[key] = ordinal + 1
        stamped.append(
            replace(
                finding,
                fingerprint=_fingerprint(
                    finding.rule, finding.path, finding.snippet, ordinal
                ),
            )
        )
    return stamped
