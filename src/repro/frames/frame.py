"""Struct-of-arrays record container.

A :class:`ColumnFrame` holds N records as per-field columns instead of
N dicts.  Values are kept as python objects in per-column lists (the
source of truth, so a reconstructed row is exactly what was appended —
same objects for nested values, bit-identical scalars) and materialize
on demand into cached numpy arrays for vectorized query masks and batch
feature extraction.  Appends invalidate the array caches; reads are
amortized O(1) per column.

Frames come in two modes:

* **typed** — constructed with a :class:`~repro.frames.schema.RecordSchema`;
  every record must carry exactly the schema's fields.  Numeric fields
  materialize as ``float64``/``int64``/``bool_`` columns.
* **generic** — no schema; columns are discovered from the documents
  (in first-seen order, which is deterministic: it follows document
  insertion order, never set iteration) and key *absence* is tracked
  per cell so ``$exists`` can distinguish a missing key from an
  explicit ``None``.

:class:`FrameRow` is a zero-copy read-only mapping view of one row,
usable anywhere a document dict is read (``row["field"]``,
``row.get(...)``, ``{**row}``).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

import numpy as np

from .schema import RecordSchema

__all__ = ["ColumnFrame", "FrameRow", "SchemaMismatchError"]

#: Cell marker for "this document did not carry the key" (generic mode).
_ABSENT = object()

_NUMPY_DTYPES = {"float": np.float64, "int": np.int64, "bool": np.bool_}


class SchemaMismatchError(ValueError):
    """A document does not carry exactly the schema's fields."""


class FrameRow(Mapping):
    """Read-only mapping view of one frame row (no dict materialized)."""

    __slots__ = ("_frame", "_index")

    def __init__(self, frame: "ColumnFrame", index: int) -> None:
        self._frame = frame
        self._index = index

    def __getitem__(self, key: str) -> Any:
        return self._frame.cell(key, self._index)

    def __iter__(self) -> Iterator[str]:
        return self._frame.row_keys(self._index)

    def __len__(self) -> int:
        return sum(1 for _ in self._frame.row_keys(self._index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrameRow({dict(self)!r})"


class ColumnFrame:
    """Columnar storage for homogeneous (typed) or ad-hoc (generic) records."""

    def __init__(self, schema: RecordSchema | None = None) -> None:
        self.schema = schema
        self._length = 0
        self._columns: dict[str, list] = {}
        self._array_cache: dict[str, np.ndarray] = {}
        self._present_cache: dict[str, np.ndarray] = {}
        if schema is not None:
            for field in schema.fields:
                self._columns[field.name] = []
            self._field_names = frozenset(schema.field_names)
        else:
            self._field_names = frozenset()

    # -- writes ---------------------------------------------------------
    def append(self, document: Mapping) -> None:
        if self.schema is not None:
            if document.keys() != self._field_names:
                raise SchemaMismatchError(
                    f"document keys {sorted(document.keys())} do not match "
                    f"schema {self.schema.name!r} fields"
                )
            for name, column in self._columns.items():
                column.append(document[name])
        else:
            for key in document:
                if key not in self._columns:
                    # Backfill: rows appended before this key was first
                    # seen did not carry it.
                    self._columns[key] = [_ABSENT] * self._length
            for name, column in self._columns.items():
                column.append(document.get(name, _ABSENT))
        self._length += 1
        if self._array_cache:
            self._array_cache.clear()
        if self._present_cache:
            self._present_cache.clear()

    def extend(self, documents) -> int:
        count = 0
        for document in documents:
            self.append(document)
            count += 1
        return count

    # -- basic reads ----------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def values(self, name: str) -> list:
        """The raw value list backing one column (do not mutate)."""
        return self._columns[name]

    def cell(self, name: str, index: int) -> Any:
        """One cell; raises ``KeyError`` for an absent key (like a dict)."""
        column = self._columns.get(name)
        if column is None:
            raise KeyError(name)
        value = column[index]
        if value is _ABSENT:
            raise KeyError(name)
        return value

    def cell_or_none(self, name: str, index: int) -> Any:
        """One cell; absent keys and unknown columns read as ``None``
        (the ``dict.get`` view every query operator except ``$exists``
        sees)."""
        column = self._columns.get(name)
        if column is None:
            return None
        value = column[index]
        return None if value is _ABSENT else value

    def row_keys(self, index: int) -> Iterator[str]:
        for name, column in self._columns.items():
            if column[index] is not _ABSENT:
                yield name

    def row(self, index: int) -> dict:
        """Materialize one row as a dict (schema/first-seen key order)."""
        return {
            name: column[index]
            for name, column in self._columns.items()
            if column[index] is not _ABSENT
        }

    def view(self, index: int) -> FrameRow:
        return FrameRow(self, index)

    # -- numpy materialization -----------------------------------------
    def column(self, name: str) -> np.ndarray:
        """The column as a numpy array (cached until the next append).

        Typed non-nullable ``float``/``int``/``bool`` fields come back
        with their native dtype; everything else is an ``object`` array
        in which absent cells read as ``None`` (mirroring ``dict.get``).
        An unknown column reads as all-``None``.
        """
        cached = self._array_cache.get(name)
        if cached is not None:
            return cached
        values = self._columns.get(name)
        if values is None:
            array = np.full(self._length, None, dtype=object)
        else:
            dtype = self._native_dtype(name)
            if dtype is not None:
                array = np.asarray(values, dtype=dtype)
            else:
                array = np.empty(self._length, dtype=object)
                for i, value in enumerate(values):
                    array[i] = None if value is _ABSENT else value
        self._array_cache[name] = array
        return array

    def present(self, name: str) -> np.ndarray:
        """Boolean mask of rows whose document carried ``name`` at all."""
        cached = self._present_cache.get(name)
        if cached is not None:
            return cached
        values = self._columns.get(name)
        if values is None:
            mask = np.zeros(self._length, dtype=bool)
        elif self.schema is not None:
            mask = np.ones(self._length, dtype=bool)
        else:
            mask = np.fromiter(
                (value is not _ABSENT for value in values), np.bool_, self._length
            )
        self._present_cache[name] = mask
        return mask

    def cells(self, name: str) -> Iterator[Any]:
        """Iterate effective cell values (absent/unknown keys -> ``None``)."""
        values = self._columns.get(name)
        if values is None:
            return iter([None] * self._length)
        return (None if value is _ABSENT else value for value in values)

    def _native_dtype(self, name: str):
        if self.schema is None or name not in self.schema:
            return None
        field = self.schema.field(name)
        if field.nullable:
            return None
        return _NUMPY_DTYPES.get(field.kind)

    def native_kind(self, name: str) -> str | None:
        """The schema kind when the column materializes with a native
        numpy dtype (``float``/``int``/``bool``); ``None`` otherwise."""
        if self.schema is None or name not in self.schema:
            return None
        field = self.schema.field(name)
        if field.nullable:
            return "str" if field.kind == "str" else None
        return field.kind if field.kind != "object" else None
