"""Per-table/figure experiment runners and the shared workbench."""

from .common import ExperimentReport, Workbench, shared_workbench
from .findings import FINDINGS, Finding, FindingResult, check_findings
from .registry import EXPERIMENTS, run_all, run_experiment, run_many
from .report_writer import generate_experiments_md

__all__ = [
    "ExperimentReport",
    "FINDINGS",
    "Finding",
    "FindingResult",
    "check_findings",
    "Workbench",
    "shared_workbench",
    "EXPERIMENTS",
    "run_all",
    "run_experiment",
    "run_many",
    "generate_experiments_md",
]
