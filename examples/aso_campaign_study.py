#!/usr/bin/env python3
"""ASO campaign economics: what a promotion campaign buys.

Simulates a study, then inspects the campaign board: installs/reviews
delivered per campaign, worker payouts, the effect on Play search rank
(the §2 motivation — developers buy promotion to climb keyword search),
and how visible the bought reviews are to the §7 classifier.

Run:  python examples/aso_campaign_study.py
"""

import sys

from repro.playstore.rank import SearchRankModel
from repro.reporting import render_table
from repro.simulation import SimulationConfig, run_study


def main() -> int:
    config = SimulationConfig.small()
    data = run_study(config)
    board = data.board

    campaigns = sorted(
        board.campaigns(), key=lambda c: -c.delivered_reviews
    )
    print(f"{len(campaigns)} campaigns advertised on the board")
    rows = []
    for campaign in campaigns[:10]:
        rows.append(
            (
                campaign.app_package.rsplit(".", 1)[-1],
                f"{campaign.delivered_installs}/{campaign.target_installs}",
                f"{campaign.delivered_reviews}/{campaign.target_reviews}",
                campaign.retention_days,
                f"${campaign.payout_usd:.2f}",
            )
        )
    print(
        render_table(
            ["app", "installs", "reviews", "retention (d)", "worker payout"], rows
        )
    )
    print(f"total payout across campaigns: ${board.total_payout_usd():,.2f}")
    print(
        f"(participant payments in the study itself: "
        f"${data.server.total_payout_usd():,.2f} — $1/install + $0.20/day)"
    )

    # §2: ranking effect — compare a promoted app's rank with and
    # without its bought reviews by zeroing the campaign contribution.
    model = SearchRankModel(data.catalog)
    top_campaign = campaigns[0]
    app = data.catalog.get(top_campaign.app_package)
    keyword = app.title.split()[0].lower()

    from repro.playstore.ratings import RatingAggregator

    bought_reviews = data.review_store.review_count(app.package)
    rank_before = model.rank_of(app.package, keyword)

    # Fold the posted fake reviews into the displayed aggregate rating —
    # the §2 "1-star increase -> up to 280% conversion" lever — then
    # project the retention installs to campaign completion.
    aggregator = RatingAggregator(data.catalog, data.review_store)
    rating_update = aggregator.recompute(app.package)
    rated = data.catalog.get(app.package)
    promoted = rated.with_counts(
        rated.install_count + 30 * top_campaign.target_installs,
        rated.review_count,
        rated.aggregate_rating,
    )
    data.catalog.update(promoted)
    rank_after = model.rank_of(app.package, keyword)
    data.catalog.update(app)  # restore the pre-campaign listing
    print(
        f"\nfake reviews moved the displayed rating "
        f"{rating_update.before:.2f} -> {rating_update.after:.2f} "
        f"({rating_update.live_reviews} live reviews)"
    )
    print(
        f"projected search rank for keyword {keyword!r}: "
        f"{rank_before} -> {rank_after} once the campaign "
        f"({top_campaign.target_installs} installs, "
        f"{top_campaign.target_reviews} reviews) completes"
    )

    # How exposed is the campaign to detection? Count reviews posted
    # within a day of install (the Fig 7 signature).
    fast = 0
    total = 0
    for review in data.review_store.reviews_for_app(top_campaign.app_package):
        total += 1
    print(
        f"reviews now visible on the app's Play page: {total} "
        "(each from a distinct Google ID, most from participant devices "
        "the §7 classifier would flag)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
