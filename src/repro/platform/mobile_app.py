"""The RacketStore mobile app: sign-in, collectors, and daily reporting.

Mirrors §3's component structure:

* **sign-in interface** — validates the 6-digit participant ID issued at
  recruitment and mints the 10-digit random install ID;
* **initial data collector** — device info plus the installed-app list;
* **snapshot collectors** — fast (5 s: foreground app, screen, battery,
  install/uninstall deltas) and slow (2 min: accounts, save mode,
  stopped apps), emitted as run-length-encoded runs over the windows
  in which the collector was scheduled by Android;
* **data buffer** — accumulate/compress/upload with hash-verified
  delivery (see :mod:`repro.platform.buffer`).

Participants may deny either runtime permission (§3): denying
``PACKAGE_USAGE_STATS`` blanks the foreground field, denying
``GET_ACCOUNTS`` blanks the account list — this produces the partially
reporting devices the paper repeatedly notes (e.g. only 145 regular and
390 worker devices reported account data for Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.clock import SECONDS_PER_DAY, hours
from ..simulation.device import SimDevice
from ..simulation.events import EventType
from .buffer import DataBuffer
from .models import (
    AppChangeEvent,
    FastSnapshotRun,
    InitialSnapshot,
    InstalledAppInfo,
    SlowSnapshotRun,
)

__all__ = ["SignInError", "RacketStoreApp"]


class SignInError(ValueError):
    """Raised when a participant enters an unknown 6-digit code."""


@dataclass(frozen=True)
class _Permissions:
    usage_stats: bool  # PACKAGE_USAGE_STATS
    get_accounts: bool  # GET_ACCOUNTS


class RacketStoreApp:
    """One install of the RacketStore app on one device."""

    FAST_PERIOD_S = 5.0
    SLOW_PERIOD_S = 120.0

    def __init__(
        self,
        device: SimDevice,
        participant_id: str,
        server,
        transport,
        rng: np.random.Generator,
        grant_usage_stats: bool = True,
        grant_get_accounts: bool = True,
        fast_buffer_bytes: int = 100 * 1024,
        slow_buffer_bytes: int = 8 * 1024,
    ) -> None:
        self.device = device
        self.participant_id = participant_id
        self._server = server
        self._transport = transport
        self._rng = rng
        self.permissions = _Permissions(grant_usage_stats, grant_get_accounts)
        self.buffer = DataBuffer(fast_buffer_bytes, slow_buffer_bytes)
        self.install_id: str | None = None
        self.installed_at: float | None = None
        self.uninstalled_at: float | None = None
        #: Median daily "collector uptime" outside foreground sessions:
        #: Android throttles background alarms, so idle coverage varies
        #: per device — this is what spreads Figure 4's snapshot counts.
        self._idle_hours_median = float(np.clip(rng.lognormal(np.log(2.2), 0.9), 0.1, 14.0))

    # -- lifecycle -----------------------------------------------------------
    def sign_in(self, timestamp: float) -> str:
        """Validate the participant code with the server and mint the
        install ID.  No data is collected before this succeeds (§3)."""
        if not self._server.is_valid_participant(self.participant_id):
            raise SignInError(f"unknown participant id {self.participant_id!r}")
        self.install_id = f"{self._rng.integers(10**9, 10**10 - 1):010d}"
        self.installed_at = float(timestamp)
        self._server.register_install(
            participant_id=self.participant_id,
            install_id=self.install_id,
            android_id=self.device.android_id,
            timestamp=timestamp,
        )
        self._send_initial_snapshot(timestamp)
        return self.install_id

    def uninstall(self, timestamp: float) -> None:
        self.buffer.seal_all()
        self.buffer.flush(self._transport)
        self.uninstalled_at = float(timestamp)

    @property
    def active(self) -> bool:
        return self.install_id is not None and self.uninstalled_at is None

    # -- initial collector ------------------------------------------------------
    def _send_initial_snapshot(self, timestamp: float) -> None:
        apps = []
        for rec in sorted(self.device.installed.values(), key=lambda r: r.package):
            granted_dangerous = sum(
                1
                for p in rec.granted_permissions
                if p.split(".")[-1] in _DANGEROUS_SUFFIXES
            )
            # Denied permissions are always dangerous ones (normal
            # permissions are granted automatically at install).
            n_dangerous = granted_dangerous + rec.n_denied
            apps.append(
                InstalledAppInfo(
                    package=rec.package,
                    install_time=rec.install_time,
                    last_update_time=rec.last_update_time,
                    apk_hash=rec.apk_hash,
                    n_granted=rec.n_granted,
                    n_denied=rec.n_denied,
                    n_normal_permissions=rec.n_granted - granted_dangerous,
                    n_dangerous_permissions=n_dangerous,
                    stopped=rec.stopped,
                    preinstalled=rec.preinstalled,
                )
            )
        apps = tuple(apps)
        snapshot = InitialSnapshot(
            install_id=self.install_id,
            participant_id=self.participant_id,
            android_id=self.device.android_id,
            api_level=self.device.api_level,
            model=self.device.model,
            manufacturer=self.device.manufacturer,
            timestamp=timestamp,
            installed_apps=apps,
        )
        self.buffer.append("slow", snapshot)
        self.buffer.seal_all()
        self.buffer.flush(self._transport)

    # -- daily collection ---------------------------------------------------------
    def collect_day(self, day_start: float) -> None:
        """Run both collectors over one study day and upload."""
        if not self.active:
            raise RuntimeError("collect_day on an inactive install")
        day_end = day_start + SECONDS_PER_DAY
        windows = self._coverage_windows(day_start, day_end)
        self._emit_fast_runs(windows, day_start, day_end)
        self._emit_slow_runs(windows)
        self._emit_app_changes(day_start, day_end)
        self.buffer.seal_all()
        self.buffer.flush(self._transport)

    def _coverage_windows(self, day_start: float, day_end: float) -> list[tuple[float, float, str | None]]:
        """(start, end, foreground) intervals the collectors were awake.

        Foreground sessions always produce coverage (the device is in
        use); idle coverage is drawn from the per-device uptime budget.
        """
        sessions = [
            s
            for s in self.device.sessions
            if s.start < day_end and s.end > day_start
        ]
        windows: list[tuple[float, float, str | None]] = [
            (max(s.start, day_start), min(s.end, day_end), s.package) for s in sessions
        ]
        idle_budget = hours(
            float(np.clip(self._rng.lognormal(np.log(self._idle_hours_median), 0.5), 0.05, 15.0))
        )
        # Spread the idle budget over 1-3 screen-off windows.
        n_windows = int(self._rng.integers(1, 4))
        for _ in range(n_windows):
            duration = idle_budget / n_windows
            start = float(self._rng.uniform(day_start, max(day_start, day_end - duration)))
            windows.append((start, min(start + duration, day_end), None))
        # Full-tuple key: ties on start must not fall back to list
        # construction order, or a future refactor that builds windows
        # from an unordered source would silently reorder snapshots.
        windows.sort(key=lambda w: (w[0], w[1], w[2] or ""))
        return windows

    def _emit_fast_runs(self, windows, day_start: float, day_end: float) -> None:
        battery = self.device.battery_level
        for start, end, foreground in windows:
            if end <= start:
                continue
            battery = max(0.05, battery - (end - start) / hours(30))
            self.buffer.append(
                "fast",
                FastSnapshotRun(
                    install_id=self.install_id,
                    participant_id=self.participant_id,
                    start=start,
                    end=end,
                    period=self.FAST_PERIOD_S,
                    foreground=foreground if self.permissions.usage_stats else None,
                    screen_on=foreground is not None,
                    battery=round(battery, 3),
                    usage_permission=self.permissions.usage_stats,
                ),
            )
        # Overnight recharge.
        self.device.battery_level = float(self._rng.uniform(0.6, 1.0))

    def _emit_slow_runs(self, windows) -> None:
        if self.permissions.get_accounts:
            accounts = tuple(
                (a.service, a.identifier) for a in self.device.accounts
            )
        else:
            accounts = ()
        stopped = tuple(self.device.stopped_packages())
        for start, end, _foreground in windows:
            if end <= start:
                continue
            self.buffer.append(
                "slow",
                SlowSnapshotRun(
                    install_id=self.install_id,
                    participant_id=self.participant_id,
                    android_id=self.device.android_id,
                    start=start,
                    end=end,
                    period=self.SLOW_PERIOD_S,
                    accounts=accounts,
                    save_mode=self.device.save_mode,
                    stopped_apps=stopped,
                    accounts_permission=self.permissions.get_accounts,
                ),
            )

    def _emit_app_changes(self, day_start: float, day_end: float) -> None:
        for event in self.device.events:
            if not day_start <= event.timestamp < day_end:
                continue
            if event.event_type is EventType.INSTALL:
                record = self.device.installed.get(event.package)
                self.buffer.append(
                    "fast",
                    AppChangeEvent(
                        install_id=self.install_id,
                        participant_id=self.participant_id,
                        timestamp=event.timestamp,
                        action="install",
                        package=event.package,
                        install_time=record.install_time if record else event.timestamp,
                        apk_hash=record.apk_hash if record else None,
                        n_granted=record.n_granted if record else 0,
                        n_denied=record.n_denied if record else 0,
                    ),
                )
            elif event.event_type is EventType.UNINSTALL:
                self.buffer.append(
                    "fast",
                    AppChangeEvent(
                        install_id=self.install_id,
                        participant_id=self.participant_id,
                        timestamp=event.timestamp,
                        action="uninstall",
                        package=event.package,
                    ),
                )


_DANGEROUS_SUFFIXES = frozenset(
    {
        "READ_CALENDAR", "WRITE_CALENDAR", "CAMERA", "READ_CONTACTS",
        "WRITE_CONTACTS", "GET_ACCOUNTS", "ACCESS_FINE_LOCATION",
        "ACCESS_COARSE_LOCATION", "RECORD_AUDIO", "READ_PHONE_STATE",
        "CALL_PHONE", "READ_CALL_LOG", "WRITE_CALL_LOG", "ADD_VOICEMAIL",
        "USE_SIP", "PROCESS_OUTGOING_CALLS", "BODY_SENSORS", "SEND_SMS",
        "RECEIVE_SMS", "READ_SMS", "RECEIVE_WAP_PUSH", "RECEIVE_MMS",
        "READ_EXTERNAL_STORAGE", "WRITE_EXTERNAL_STORAGE",
    }
)
