"""Tests for snapshot models, the backend server, and the mobile app."""

import numpy as np
import pytest

from repro.platform.models import (
    PII_REGISTRY,
    AppChangeEvent,
    FastSnapshotRun,
    InitialSnapshot,
    InstalledAppInfo,
    SlowSnapshotRun,
    record_from_dict,
    record_to_dict,
)
from repro.platform.server import RacketStoreServer
from repro.platform.transport import Transport
from repro.platform.mobile_app import RacketStoreApp, SignInError
from repro.simulation.device import SimDevice
from repro.simulation.clock import SECONDS_PER_DAY


class TestModels:
    def test_fast_run_snapshot_count(self):
        run = FastSnapshotRun("i", "p", start=0.0, end=60.0, period=5.0,
                              foreground="a", screen_on=True, battery=0.5)
        assert run.n_snapshots == 13  # samples at 0,5,...,60

    def test_slow_run_snapshot_count(self):
        run = SlowSnapshotRun("i", "p", None, start=0.0, end=600.0, period=120.0,
                              accounts=(), save_mode=False, stopped_apps=())
        assert run.n_snapshots == 6

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            FastSnapshotRun("i", "p", start=10.0, end=5.0, period=5.0,
                            foreground=None, screen_on=False, battery=0.5).n_snapshots

    def test_app_change_action_validated(self):
        with pytest.raises(ValueError):
            AppChangeEvent("i", "p", 0.0, "sideload", "pkg")

    def test_roundtrip_all_record_types(self):
        records = [
            FastSnapshotRun("i", "p", 0.0, 10.0, 5.0, "app", True, 0.7),
            SlowSnapshotRun("i", "p", "aid", 0.0, 240.0, 120.0,
                            (("com.google", "x@gmail.com"),), True, ("stopped.app",)),
            AppChangeEvent("i", "p", 5.0, "install", "pkg", 1.0, "hash", 3, 1),
            InitialSnapshot("i", "p", "aid", 28, "SM-A105F", "Samsung", 0.0,
                            (InstalledAppInfo("pkg", -10.0, -10.0, "h", 3, 1, 2, 2, True, False),)),
        ]
        for record in records:
            assert record_from_dict(record_to_dict(record)) == record

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"_type": "mystery"})

    def test_pii_registry_matches_table3(self):
        assert len(PII_REGISTRY) == 6
        assert {e.pii for e in PII_REGISTRY} == {
            "Accounts", "Email", "IP address", "Device ID", "Payment Info",
        }
        not_stored = [e for e in PII_REGISTRY if e.deletion == "Not stored"]
        assert {e.pii for e in not_stored} == {"IP address", "Payment Info"}


@pytest.fixture()
def server():
    return RacketStoreServer()


@pytest.fixture()
def device(rng):
    return SimDevice("regular", is_worker=False, rng=rng)


def make_app(server, device, rng, **kwargs):
    pid = server.issue_participant_id()
    return RacketStoreApp(
        device=device,
        participant_id=pid,
        server=server,
        transport=Transport(server),
        rng=rng,
        **kwargs,
    )


class TestSignIn:
    def test_valid_code_registers_install(self, server, device, rng):
        app = make_app(server, device, rng)
        install_id = app.sign_in(0.0)
        assert len(install_id) == 10
        assert install_id in server.install_ids()

    def test_invalid_code_rejected_and_nothing_collected(self, server, device, rng):
        app = RacketStoreApp(device, "999999", server, Transport(server), rng)
        with pytest.raises(SignInError):
            app.sign_in(0.0)
        assert server.install_ids() == []
        assert server.store.total_documents() == 0

    def test_initial_snapshot_uploaded_at_signin(self, server, device, rng):
        app = make_app(server, device, rng)
        app.sign_in(0.0)
        initial = server.initial_snapshot(app.install_id)
        assert initial is not None
        assert initial["manufacturer"] == device.manufacturer


class TestCollection:
    def test_collect_day_uploads_runs(self, server, device, rng, blobs):
        app = make_app(server, device, rng)
        app.sign_in(0.0)
        device.open_app  # device has no apps yet; still collects idle runs
        app.collect_day(0.0)
        assert len(server.fast_runs(app.install_id)) >= 1
        assert len(server.slow_runs(app.install_id)) >= 1
        assert server.snapshot_count(app.install_id) > 0

    def test_usage_permission_denied_blanks_foreground(self, server, rng):
        device = SimDevice("regular", is_worker=False, rng=rng)
        app = make_app(server, device, rng, grant_usage_stats=False)
        app.sign_in(0.0)
        app.collect_day(0.0)
        for run in server.fast_runs(app.install_id):
            assert run["foreground"] is None
            assert run["usage_permission"] is False

    def test_accounts_permission_denied_blanks_accounts(self, server, rng):
        from repro.simulation.accounts import DeviceAccount

        device = SimDevice("regular", is_worker=False, rng=rng)
        device.register_account(DeviceAccount("com.google", "a@gmail.com", "1" * 21))
        app = make_app(server, device, rng, grant_get_accounts=False)
        app.sign_in(0.0)
        app.collect_day(0.0)
        for run in server.slow_runs(app.install_id):
            assert run["accounts"] == []
            assert run["accounts_permission"] is False

    def test_collect_after_uninstall_fails(self, server, device, rng):
        app = make_app(server, device, rng)
        app.sign_in(0.0)
        app.uninstall(SECONDS_PER_DAY)
        with pytest.raises(RuntimeError):
            app.collect_day(SECONDS_PER_DAY)

    def test_observation_interval_spans_collection(self, server, device, rng):
        app = make_app(server, device, rng)
        app.sign_in(0.0)
        app.collect_day(0.0)
        first, last = server.observation_interval(app.install_id)
        assert first <= last <= SECONDS_PER_DAY


class TestServerQueries:
    def test_register_install_requires_known_participant(self, server):
        with pytest.raises(PermissionError):
            server.register_install("000000", "1234567890", None, 0.0)

    def test_malformed_chunk_counted_and_acked(self, server):
        ack = server.receive_chunk("fast", b"this is not gzip")
        assert isinstance(ack, str) and len(ack) == 64
        assert server.stats.malformed_chunks == 1

    def test_payments(self, server, device, rng):
        app = make_app(server, device, rng)
        app.sign_in(0.0)
        for day in range(3):
            app.collect_day(day * SECONDS_PER_DAY)
        payout = server.total_payout_usd()
        # $1 install + $0.20/day for 2-3 observed days.
        assert 1.2 <= payout <= 1.8
