"""Bench: Figure 10 apps used/day vs installed (the overlap finding)."""

from repro.analysis import compute_daily_use
from repro.experiments import run_experiment


def test_fig10_daily_use(benchmark, workbench, emit):
    benchmark(compute_daily_use, workbench.observations)
    report = emit(run_experiment("fig10", workbench))
    # The paper's point is *overlap*: daily used-app counts cannot
    # separate the cohorts on their own.
    assert report.metrics["overlap_fraction"] >= 0.15
    ratio = report.metrics["worker_mean"] / report.metrics["regular_mean"]
    assert 0.4 <= ratio <= 2.0
