"""VirusTotal report client (research-license style, hash lookups only).

The paper submitted 18,079 distinct apk hashes and found reports for
12,431 of them (~69%); the remainder were unknown to VT.  The client
models that availability gap, caches reports, and exposes the flag-count
queries §6.4 and feature (10) of §7.1 rely on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .engines import EnginePanel, ScanResult

__all__ = ["VirusTotalClient", "ClientStats"]


@dataclass
class ClientStats:
    lookups: int = 0
    hits: int = 0
    unknown_hashes: int = 0
    cached: int = 0


class VirusTotalClient:
    """Hash-report lookups against the simulated engine panel.

    Parameters
    ----------
    panel:
        The engine panel producing verdicts.
    availability:
        Probability a hash has a VT report at all (paper: 12,431/18,079
        ≈ 0.688).  Availability is deterministic per hash.
    malware_oracle:
        Callable ``apk_hash -> bool`` giving ground truth for the panel;
        the simulation wires this to the catalog's malware labels.
    """

    def __init__(
        self,
        panel: EnginePanel,
        malware_oracle,
        availability: float = 12_431 / 18_079,
    ) -> None:
        self._panel = panel
        self._oracle = malware_oracle
        self.availability = availability
        self._cache: dict[str, ScanResult | None] = {}
        self.stats = ClientStats()

    def _has_report(self, apk_hash: str) -> bool:
        digest = hashlib.sha256(f"vt-availability|{apk_hash}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < self.availability

    def report(self, apk_hash: str) -> ScanResult | None:
        """Fetch the report for a hash, or None when VT has never seen it."""
        if apk_hash in self._cache:
            self.stats.cached += 1
            return self._cache[apk_hash]
        self.stats.lookups += 1
        if not self._has_report(apk_hash):
            self.stats.unknown_hashes += 1
            self._cache[apk_hash] = None
            return None
        result = self._panel.scan(apk_hash, bool(self._oracle(apk_hash)))
        self.stats.hits += 1
        self._cache[apk_hash] = result
        return result

    def positives(self, apk_hash: str) -> int:
        """Flag count for a hash; 0 when no report exists (the value the
        §7.1 feature extractor uses)."""
        result = self.report(apk_hash)
        return result.positives if result else 0

    def flagged_hashes(self, hashes, min_flags: int = 1) -> dict[str, int]:
        """Filter a hash collection to those with >= min_flags detections."""
        out: dict[str, int] = {}
        for apk_hash in hashes:
            count = self.positives(apk_hash)
            if count >= min_flags:
                out[apk_hash] = count
        return out
