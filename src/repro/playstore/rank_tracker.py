"""Rank tracking: daily keyword-rank time series during campaigns.

§2 motivates ASO with the search-rank payoff ("developers need to
achieve top-5 rank in keyword searches").  The tracker records an app's
rank for a keyword day by day as installs/reviews/rating evolve, and
flags promotion-indicative *rank jumps* — the aggregate-level signal
download-fraud studies (Dou et al., §10) key on, complementing
RacketStore's device-level detection.
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import Catalog
from .rank import SearchRankModel

__all__ = ["RankSample", "RankJump", "RankTracker"]


@dataclass(frozen=True)
class RankSample:
    """One (day, rank) observation for one (app, keyword) pair."""

    day: int
    rank: int
    install_count: int
    review_count: int
    rating: float


@dataclass(frozen=True)
class RankJump:
    """A promotion-indicative rank improvement between two samples."""

    package: str
    keyword: str
    from_day: int
    to_day: int
    from_rank: int
    to_rank: int

    @property
    def places_gained(self) -> int:
        return self.from_rank - self.to_rank


class RankTracker:
    """Daily rank recorder over the live catalog state."""

    def __init__(self, catalog: Catalog, model: SearchRankModel | None = None) -> None:
        self._catalog = catalog
        self._model = model or SearchRankModel(catalog)
        self._series: dict[tuple[str, str], list[RankSample]] = {}

    def track(self, package: str, keyword: str) -> None:
        """Start (idempotently) tracking an (app, keyword) pair."""
        self._series.setdefault((package, keyword), [])

    def tracked(self) -> list[tuple[str, str]]:
        return sorted(self._series)

    def record_day(
        self, day: int, boosts: dict[str, tuple[int, int]] | None = None
    ) -> None:
        """Sample the rank of every tracked pair for one day.

        ``boosts`` overlays per-package (delivered installs, delivered
        reviews) on the static catalog counts — how the phase-2 commit
        advances ranks from the day's ASO deliveries without mutating
        the catalog (DESIGN.md §12).  Ranks are computed in one batch
        pass per keyword (:meth:`SearchRankModel.ranks_for`).
        """
        pairs = [
            (package, keyword)
            for (package, keyword) in self._series
            if package in self._catalog
        ]
        ranks = self._model.ranks_for(pairs, boosts=boosts)
        boosts = boosts or {}
        for package, keyword in pairs:
            app = self._catalog.get(package)
            extra_installs, extra_reviews = boosts.get(package, (0, 0))
            self._series[(package, keyword)].append(
                RankSample(
                    day=day,
                    rank=ranks[(package, keyword)],
                    install_count=app.install_count + extra_installs,
                    review_count=app.review_count + extra_reviews,
                    rating=app.aggregate_rating,
                )
            )

    def series(self, package: str, keyword: str) -> list[RankSample]:
        return list(self._series.get((package, keyword), ()))

    def best_rank(self, package: str, keyword: str) -> int | None:
        series = self.series(package, keyword)
        return min((s.rank for s in series), default=None)

    def detect_jumps(self, min_places: int = 10, window_days: int = 3) -> list[RankJump]:
        """Rank improvements of >= ``min_places`` within ``window_days``
        — the burst-like aggregate signal a store-side monitor would
        flag for closer (device-level) inspection."""
        jumps: list[RankJump] = []
        for (package, keyword), series in self._series.items():
            for i, start in enumerate(series):
                for later in series[i + 1:]:
                    if later.day - start.day > window_days:
                        break
                    if start.rank - later.rank >= min_places:
                        jumps.append(
                            RankJump(
                                package=package,
                                keyword=keyword,
                                from_day=start.day,
                                to_day=later.day,
                                from_rank=start.rank,
                                to_rank=later.rank,
                            )
                        )
                        break
        return sorted(jumps, key=lambda j: (j.from_day, j.package))
