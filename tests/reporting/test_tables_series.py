"""Tests for table rendering and figure-data export."""

import csv

import pytest

from repro.reporting import format_value, paper_vs_measured_rows, render_table


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(123.456) == "123.5"
        assert format_value(12345.6) == "12,346"

    def test_nan_dash(self):
        assert format_value(float("nan")) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_trailing_zeros_stripped(self):
        assert format_value(2.0) == "2"


class TestRenderTable:
    def test_alignment_and_borders(self):
        text = render_table(["a", "bb"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row the same width

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text

    def test_paper_vs_measured_ratio(self):
        text = paper_vs_measured_rows([("metric", 10.0, 12.0)])
        assert "1.2" in text
        assert "metric" in text


class TestSeriesExport:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        from repro.core import DetectionPipeline
        from repro.experiments import Workbench
        from repro.reporting import export_figure_data
        from repro.simulation import SimulationConfig

        workbench = Workbench(SimulationConfig.small(), DetectionPipeline(n_splits=5))
        out = tmp_path_factory.mktemp("figures")
        written = export_figure_data(workbench, out)
        return out, written

    def test_all_figures_written(self, exported):
        out, written = exported
        assert set(written) == {
            "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig12", "fig15",
        }
        assert all(count > 0 for count in written.values())

    def test_csv_parseable_with_expected_columns(self, exported):
        out, _ = exported
        with (out / "fig07_install_to_review.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert {"group", "delay_days"} == set(rows[0])
        assert {row["group"] for row in rows} == {"worker", "regular"}
        assert all(float(row["delay_days"]) > 0 for row in rows)

    def test_fig15_only_workers(self, exported):
        out, _ = exported
        with (out / "fig15_suspiciousness.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        for row in rows:
            assert 0.0 <= float(row["app_suspiciousness"]) <= 1.0
