"""Google Play Store substrate: catalog, permissions, search rank,
reviews and the two crawlers (review crawler, Google-ID crawler)."""

from .catalog import CATEGORIES, PREINSTALLED_PACKAGES, App, Catalog
from .google_id import GmailDirectory, GoogleIdCrawler
from .permissions import (
    DANGEROUS_PERMISSIONS,
    NORMAL_PERMISSIONS,
    RACKETSTORE_INSTALL_PERMISSIONS,
    RACKETSTORE_RUNTIME_PERMISSIONS,
    PermissionProfile,
    sample_permission_profile,
)
from .rank import RankedApp, RankWeights, SearchRankModel
from .rank_tracker import RankJump, RankSample, RankTracker
from .ratings import RatingAggregator, RatingUpdate
from .reviews import CrawlStats, Review, ReviewCrawler, ReviewStore

__all__ = [
    "CATEGORIES",
    "PREINSTALLED_PACKAGES",
    "App",
    "Catalog",
    "GmailDirectory",
    "GoogleIdCrawler",
    "DANGEROUS_PERMISSIONS",
    "NORMAL_PERMISSIONS",
    "RACKETSTORE_INSTALL_PERMISSIONS",
    "RACKETSTORE_RUNTIME_PERMISSIONS",
    "PermissionProfile",
    "sample_permission_profile",
    "RankedApp",
    "RankJump",
    "RankSample",
    "RankTracker",
    "RankWeights",
    "RatingAggregator",
    "RatingUpdate",
    "SearchRankModel",
    "CrawlStats",
    "Review",
    "ReviewCrawler",
    "ReviewStore",
]
