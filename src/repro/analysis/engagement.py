"""§6.1 participant engagement (Figure 4) and Figure 1 timelines."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from ..simulation.events import EventType
from .common import GroupComparison, compare_feature

__all__ = ["EngagementPoint", "EngagementResult", "compute_engagement", "app_timeline"]


@dataclass(frozen=True)
class EngagementPoint:
    """One dot of the Figure 4 scatterplot."""

    install_id: str
    is_worker: bool
    snapshots_per_day: float
    active_days: int


@dataclass
class EngagementResult:
    """Figure 4: snapshots/day vs active days, plus the §6.1 summaries."""

    points: list[EngagementPoint]
    comparison: GroupComparison
    devices_over_100_per_day: int

    def worker_points(self) -> list[EngagementPoint]:
        return [p for p in self.points if p.is_worker]

    def regular_points(self) -> list[EngagementPoint]:
        return [p for p in self.points if not p.is_worker]


def compute_engagement(observations: list[DeviceObservation]) -> EngagementResult:
    """Snapshots-per-day engagement over all observed devices."""
    points = [
        EngagementPoint(
            install_id=obs.install_id,
            is_worker=obs.is_worker,
            snapshots_per_day=obs.snapshots_per_day,
            active_days=obs.active_days,
        )
        for obs in observations
    ]
    worker = [p.snapshots_per_day for p in points if p.is_worker]
    regular = [p.snapshots_per_day for p in points if not p.is_worker]
    return EngagementResult(
        points=points,
        comparison=compare_feature("snapshots_per_day", worker, regular),
        devices_over_100_per_day=sum(1 for p in points if p.snapshots_per_day >= 100),
    )


def app_timeline(obs: DeviceObservation, package: str) -> list[tuple[float, int]]:
    """Figure-1-style (timestamp, event-type) series for one app on one
    device, reconstructed from *collected* data: install/uninstall from
    app-change events, foreground from fast runs, reviews from the
    device-account review join."""
    events: list[tuple[float, int]] = []
    for change in obs.app_changes:
        if change["package"] != package:
            continue
        event_type = (
            EventType.INSTALL if change["action"] == "install" else EventType.UNINSTALL
        )
        events.append((change["timestamp"], int(event_type)))
    if package in obs.initial_packages:
        install_time = obs.install_times.get(package)
        if install_time is not None:
            events.append((install_time, int(EventType.INSTALL)))
    for run in obs.fast_runs:
        if run["foreground"] == package:
            events.append((run["start"], int(EventType.FOREGROUND)))
    for review in obs.reviews_for_app(package):
        events.append((review.timestamp, int(EventType.REVIEW)))
    return sorted(events)
