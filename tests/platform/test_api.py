"""Tests for the HTTP-style web-app API."""

import base64
import gzip
import json

import pytest

from repro.platform.api import ApiRequest, RacketStoreApi
from repro.platform.buffer import chunk_hash
from repro.platform.models import FastSnapshotRun, record_to_dict
from repro.platform.server import RacketStoreServer


@pytest.fixture()
def server():
    return RacketStoreServer()


@pytest.fixture()
def api(server):
    return RacketStoreApi(server)


def chunk_for(install_id: str, participant_id: str) -> bytes:
    record = FastSnapshotRun(
        install_id=install_id,
        participant_id=participant_id,
        start=0.0,
        end=60.0,
        period=5.0,
        foreground="com.app",
        screen_on=True,
        battery=0.8,
    )
    line = json.dumps(record_to_dict(record))
    return gzip.compress((line + "\n").encode())


class TestRouting:
    def test_unknown_route_404(self, api):
        assert api.handle(ApiRequest("GET", "/nope")).status == 404

    def test_wrong_method_405(self, api):
        assert api.handle(ApiRequest("GET", "/signin")).status == 405

    def test_path_parameters_extracted(self, api):
        response = api.handle(ApiRequest("GET", "/dashboard/installs/12345"))
        assert response.status == 404  # unknown install, but routed

    def test_handler_crash_is_500(self, api, monkeypatch):
        monkeypatch.setattr(
            api._dashboard, "overview", lambda: (_ for _ in ()).throw(RuntimeError())
        )
        assert api.handle(ApiRequest("GET", "/dashboard/overview")).status == 500


class TestSignin:
    def test_valid_code_registers(self, server, api):
        code = server.issue_participant_id()
        response = api.handle(
            ApiRequest(
                "POST",
                "/signin",
                {"participant_id": code, "install_id": "1234567890"},
            )
        )
        assert response.ok
        assert "1234567890" in server.install_ids()

    def test_invalid_code_403_and_nothing_stored(self, server, api):
        response = api.handle(
            ApiRequest(
                "POST",
                "/signin",
                {"participant_id": "000000", "install_id": "1234567890"},
            )
        )
        assert response.status == 403
        assert server.install_ids() == []

    def test_missing_fields_400(self, api):
        response = api.handle(ApiRequest("POST", "/signin", {"participant_id": "x"}))
        assert response.status == 400
        assert "install_id" in response.body["error"]


class TestUpload:
    def test_chunk_acknowledged_with_hash(self, server, api):
        code = server.issue_participant_id()
        api.handle(ApiRequest("POST", "/signin", {"participant_id": code, "install_id": "1111111111"}))
        data = chunk_for("1111111111", code)
        response = api.handle(
            ApiRequest(
                "POST",
                "/snapshots/fast",
                {"chunk_b64": base64.b64encode(data).decode()},
            )
        )
        assert response.ok
        assert response.body["sha256"] == chunk_hash(data)
        assert len(server.fast_runs("1111111111")) == 1

    def test_unknown_kind_rejected(self, api):
        response = api.handle(
            ApiRequest("POST", "/snapshots/medium", {"chunk_b64": "aGk="})
        )
        assert response.status == 400

    def test_bad_base64_rejected(self, api):
        response = api.handle(
            ApiRequest("POST", "/snapshots/fast", {"chunk_b64": "!!!not-b64!!!"})
        )
        assert response.status == 400

    def test_corrupt_gzip_still_acked(self, server, api):
        """Garbage payloads get an honest hash ack (the buffer will see a
        mismatch against its own hash) and are counted as malformed."""
        response = api.handle(
            ApiRequest(
                "POST",
                "/snapshots/fast",
                {"chunk_b64": base64.b64encode(b"junk").decode()},
            )
        )
        assert response.ok
        assert server.stats.malformed_chunks == 1


class TestDashboardRoutes:
    def test_overview_route(self, api):
        response = api.handle(ApiRequest("GET", "/dashboard/overview"))
        assert response.ok
        assert "installs" in response.body

    def test_validation_route(self, api):
        response = api.handle(ApiRequest("GET", "/dashboard/validation"))
        assert response.ok
        assert response.body["issues"] == []

    def test_stats_route_counts_countries(self, api):
        api.handle(ApiRequest("GET", "/stats", ip_country="PK"))
        api.handle(ApiRequest("GET", "/stats", ip_country="PK"))
        response = api.handle(ApiRequest("GET", "/stats", ip_country="IN"))
        counts = response.body["requests_by_country"]
        assert counts["PK"] == 2 and counts["IN"] == 1

    def test_install_health_route(self, server, api, rng):
        from repro.platform.mobile_app import RacketStoreApp
        from repro.platform.transport import Transport
        from repro.simulation.device import SimDevice

        device = SimDevice("regular", is_worker=False, rng=rng)
        app = RacketStoreApp(
            device, server.issue_participant_id(), server, Transport(server), rng
        )
        app.sign_in(0.0)
        app.collect_day(0.0)
        response = api.handle(
            ApiRequest("GET", f"/dashboard/installs/{app.install_id}")
        )
        assert response.ok
        assert response.body["snapshots_per_day"] > 0
