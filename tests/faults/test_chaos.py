"""The chaos harness itself: ladder shape, gate checks, artifact."""

import json

from repro.faults.chaos import escalating_plans, run_chaos
from repro.simulation import SimulationConfig


class TestEscalatingPlans:
    def test_ladder_starts_clean_and_escalates(self):
        plans = escalating_plans()
        names = [name for name, _plan in plans]
        assert names[0] == "clean"
        assert len(plans) >= 4
        assert not plans[0][1].any_enabled
        for _name, plan in plans[1:]:
            assert plan.any_enabled
        # The top rung exercises every server-side site.
        _, mayhem = plans[-1]
        assert mayhem.receive_crash.enabled
        assert mayhem.store_reject.enabled
        assert mayhem.overload.enabled
        assert mayhem.ack_loss.enabled


class TestRunChaos:
    def test_micro_chaos_passes_and_writes_artifact(self, tmp_path):
        out = tmp_path / "CHAOS.json"
        config = SimulationConfig(
            n_worker_devices=4,
            n_regular_devices=3,
            n_dropout_devices=1,
            study_days=3,
            n_popular_apps=120,
            n_promoted_apps=12,
            n_third_party_apps=4,
            n_antivirus_apps=3,
        )
        code = run_chaos(config, n_jobs=2, out=str(out))
        assert code == 0
        report = json.loads(out.read_text())
        assert report["passed"] is True
        assert report["failures"] == []
        plans = [name for name, _ in escalating_plans()]
        assert {run["plan"] for run in report["runs"]} == set(plans)
        reference = report["runs"][0]
        assert reference["plan"] == "clean"
        for run in report["runs"]:
            assert run["digest"] == reference["digest"]
            assert run["records_inserted"] == reference["records_inserted"]
            assert run["pending_chunks"] == 0
            assert run["dead_letters_pending"] == 0
            assert run["redelivery_backlog"] == 0
        # The hostile rungs really injected something.
        mayhem_runs = [r for r in report["runs"] if r["plan"] == "mayhem"]
        assert mayhem_runs and all(
            sum(r["fault_counts"].values()) > 0 for r in mayhem_runs
        )
