"""§6.3 installed and reviewed apps (Figure 6).

Three panels: apps installed, apps installed *and* reviewed from device
accounts, and total reviews posted from all registered accounts.  The
paper's signature finding: installed-app counts barely differ (ANOVA
p = 0.301, not significant) while review counts differ dramatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.observations import DeviceObservation
from .common import GroupComparison, compare_feature

__all__ = ["InstalledAppsResult", "compute_installed_apps"]


@dataclass
class InstalledAppsResult:
    """The three panels of Figure 6."""

    installed: GroupComparison
    installed_and_reviewed: GroupComparison
    total_reviews: GroupComparison
    worker_devices_over_1000_reviews: int
    regular_max_total_reviews: float
    reporting_worker_devices: int
    reporting_regular_devices: int

    def installed_anova_not_significant(self, alpha: float = 0.05) -> bool:
        """The paper's expected pattern: distribution tests reject but
        ANOVA on installed-app counts does not."""
        return not self.installed.tests.anova.significant(alpha)


def compute_installed_apps(observations: list[DeviceObservation]) -> InstalledAppsResult:
    reporting = [o for o in observations if o.initial is not None]
    workers = [o for o in reporting if o.is_worker]
    regulars = [o for o in reporting if not o.is_worker]

    total_reviews = compare_feature(
        "total_reviews_from_accounts",
        [o.total_account_reviews for o in workers],
        [o.total_account_reviews for o in regulars],
    )
    return InstalledAppsResult(
        installed=compare_feature(
            "installed_apps",
            [o.n_installed_apps for o in workers],
            [o.n_installed_apps for o in regulars],
        ),
        installed_and_reviewed=compare_feature(
            "installed_and_reviewed",
            [o.n_installed_and_reviewed for o in workers],
            [o.n_installed_and_reviewed for o in regulars],
        ),
        total_reviews=total_reviews,
        worker_devices_over_1000_reviews=sum(
            1 for o in workers if o.total_account_reviews > 1000
        ),
        regular_max_total_reviews=max(
            (o.total_account_reviews for o in regulars), default=0
        ),
        reporting_worker_devices=len(workers),
        reporting_regular_devices=len(regulars),
    )
