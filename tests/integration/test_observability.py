"""End-to-end observability: metrics agree with ground truth, the span
tree covers every pipeline phase, and instrumentation never perturbs a
seeded run."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.pipeline import DetectionPipeline
from repro.experiments import EXPERIMENTS, Workbench, run_experiment
from repro.simulation import SimulationConfig

# The experiments whose rendered output we compare across enabled /
# disabled runs: one measurement, one review join, and the full
# classifier pipeline (table1 forces DetectionPipeline.run).
_COMPARED = ("fig00", "fig07", "table1")


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


def _run(experiment_ids) -> dict[str, str]:
    workbench = Workbench(
        SimulationConfig.small(), pipeline=DetectionPipeline(n_splits=4)
    )
    return {
        eid: run_experiment(eid, workbench).render() for eid in experiment_ids
    }


class TestInstrumentedStudy:
    @pytest.fixture(scope="class")
    def instrumented(self):
        obs.reset()
        registry = obs.configure()
        workbench = Workbench(
            SimulationConfig.small(), pipeline=DetectionPipeline(n_splits=4)
        )
        renders = {
            eid: run_experiment(eid, workbench).render() for eid in EXPERIMENTS
        }
        tracer = obs.tracer()
        yield workbench, registry, tracer, renders
        obs.reset()

    def test_ingest_metrics_match_server_stats(self, instrumented):
        workbench, registry, _tracer, _renders = instrumented
        stats = workbench.data.server.stats
        assert stats.records_inserted > 0
        assert registry.value("ingest_records_inserted_total") == stats.records_inserted
        assert registry.value("ingest_chunks_received_total") == stats.chunks_received
        assert registry.value("ingest_bytes_received_total") == stats.bytes_received

    def test_crawl_metrics_match_crawler_stats(self, instrumented):
        workbench, registry, _tracer, _renders = instrumented
        crawler = workbench.data.review_crawler
        assert registry.value("crawl_rounds_total") == crawler.stats.crawl_rounds
        assert (
            registry.value("crawl_reviews_collected_total")
            == crawler.stats.reviews_collected
        )

    def test_simulation_phases_traced(self, instrumented):
        _wb, _registry, tracer, _renders = instrumented
        for name in ("simulate", "simulate.days", "ingest.chunk", "crawl.round",
                     "pipeline", "pipeline.app_eval", "pipeline.device_eval"):
            node = tracer.find(name)
            assert node is not None, f"span {name} missing"
            assert node.calls >= 1

    def test_every_experiment_id_in_span_tree(self, instrumented):
        _wb, _registry, tracer, _renders = instrumented
        span_names = {node.name for _path, node in tracer.spans()}
        for eid in EXPERIMENTS:
            assert f"experiment.{eid}" in span_names

    def test_per_model_fit_histograms_populated(self, instrumented):
        _wb, registry, _tracer, _renders = instrumented
        fit_series = registry.series("ml_fit_seconds")
        models = {dict(h.labels)["model"] for h in fit_series}
        assert {"XGB", "RF", "KNN", "LVQ"} <= models
        assert all(h.count > 0 for h in fit_series)

    def test_sim_events_counted_per_persona(self, instrumented):
        _wb, registry, _tracer, _renders = instrumented
        series = registry.series("sim_events_total")
        personas = {dict(c.labels)["persona"] for c in series}
        assert "regular" in personas
        assert personas & {"organic_worker", "dedicated_worker"}
        assert all(c.value > 0 for c in series)

    def test_prometheus_export_includes_ingest_family(self, instrumented):
        _wb, registry, _tracer, _renders = instrumented
        text = registry.render_prometheus()
        samples = obs.parse_prometheus(text)
        assert samples["ingest_records_inserted_total"] > 0
        assert any(k.startswith("ml_fit_seconds_bucket") for k in samples)

    def test_seeded_output_identical_with_obs_disabled(self, instrumented):
        _wb, _registry, _tracer, renders = instrumented
        obs.reset()
        plain = _run(_COMPARED)
        for eid in _COMPARED:
            assert renders[eid] == plain[eid], f"{eid} output changed under obs"


class TestMalformedSplit:
    def test_transport_vs_schema_counted_separately(self):
        import gzip

        from repro.platform.server import RacketStoreServer

        server = RacketStoreServer()
        server.receive_chunk("fast", b"not gzip at all")
        assert server.stats.malformed_chunks == 1
        assert server.stats.malformed_records == 0

        server.receive_chunk("fast", gzip.compress(b'{"broken json\n'))
        assert server.stats.malformed_chunks == 1
        assert server.stats.malformed_records == 1
        assert server.stats.malformed_total == 2


class TestProfileCli:
    def test_profile_prints_span_tree_and_writes_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["--scale", "small", "profile", "--metrics-out", str(out)]) == 0
        printed = capsys.readouterr().out
        for phase in ("simulate", "ingest.chunk", "crawl.round", "experiment.table1"):
            assert phase in printed
        assert "top 12 slowest spans" in printed

        doc = json.loads(out.read_text())
        assert doc["counters"]["ingest_records_inserted_total"] > 0
        assert any(k.startswith("ml_fit_seconds") for k in doc["histograms"])
        # The CLI restored the no-op default on the way out.
        assert not obs.enabled()

    def test_simulate_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "sim_metrics.json"
        assert main(["--scale", "small", "simulate", "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["counters"]["ingest_chunks_received_total"] > 0
        assert not obs.enabled()
