"""Ablation: prior-work baselines vs RacketStore (§1, §10).

Burst and lockstep detectors only see the public review stream; the
paper's claim is that organic workers evade them while RacketStore's
device-telemetry features do not.  This bench measures device-level
recall by worker kind for both baselines and the pipeline.
"""

from repro.core.baselines import (
    BurstDetector,
    LockstepDetector,
    evaluate_baseline_on_devices,
)
from repro.experiments.common import ExperimentReport
from repro.reporting import render_table


def test_ablation_baselines(benchmark, workbench, pipeline_result, emit):
    store = workbench.data.review_store
    observations = pipeline_result.observations

    burst = evaluate_baseline_on_devices(
        BurstDetector(window_days=3.0, min_burst_reviews=5), store, observations
    )
    lockstep = evaluate_baseline_on_devices(
        LockstepDetector(min_common_apps=4, time_window_days=7.0, min_group_size=3),
        store,
        observations,
    )

    # RacketStore pipeline recall, split the same way.
    verdict_by_id = {v.install_id: v for v in pipeline_result.verdicts}
    detected = {"organic_worker": 0, "dedicated_worker": 0, "regular": 0}
    totals = {"organic_worker": 0, "dedicated_worker": 0, "regular": 0}
    for obs in observations:
        kind = obs.participant.persona.kind
        totals[kind] += 1
        detected[kind] += int(verdict_by_id[obs.install_id].predicted_worker)
    racket = {
        "recall_organic": detected["organic_worker"] / max(totals["organic_worker"], 1),
        "recall_dedicated": detected["dedicated_worker"] / max(totals["dedicated_worker"], 1),
        "fpr_regular": detected["regular"] / max(totals["regular"], 1),
    }

    benchmark.pedantic(
        evaluate_baseline_on_devices,
        args=(BurstDetector(), store, observations),
        rounds=1,
        iterations=1,
    )

    rows = [
        ("review bursts", burst["recall_organic"], burst["recall_dedicated"], burst["fpr_regular"]),
        ("lockstep co-review", lockstep["recall_organic"], lockstep["recall_dedicated"], lockstep["fpr_regular"]),
        ("RacketStore pipeline", racket["recall_organic"], racket["recall_dedicated"], racket["fpr_regular"]),
    ]
    report = ExperimentReport(
        "ablation_baselines",
        "Prior-work baselines vs RacketStore on organic/dedicated workers",
        lines=[
            render_table(
                ["detector", "organic recall", "dedicated recall", "regular FPR"], rows
            ),
            "Paper §1: organic workers 'successfully evade state-of-the-art "
            "detection methods' based on lockstep/burst signals.",
        ],
        metrics={
            "burst_organic": burst["recall_organic"],
            "burst_dedicated": burst["recall_dedicated"],
            "lockstep_organic": lockstep["recall_organic"],
            "racket_organic": racket["recall_organic"],
            "racket_dedicated": racket["recall_dedicated"],
        },
    )
    emit(report)
    # RacketStore must beat both baselines on organic workers — that is
    # the paper's reason to exist.
    assert report.metrics["racket_organic"] > report.metrics["burst_organic"]
    assert report.metrics["racket_organic"] > report.metrics["lockstep_organic"]
    assert report.metrics["racket_organic"] >= 0.85
