"""DET004: interprocedural determinism taint over the call graph."""

from repro.statan.engine import analyze_tree


def rules_fired(root, rule):
    findings, _ = analyze_tree([root])
    return [f for f in findings if f.rule == rule]


TWO_HOP = {
    "simulation/helpers.py": (
        "import numpy as np\n"
        "\n"
        "def jitter(values):\n"
        "    return values + np.random.normal()\n"
        "\n"
        "def middle(values):\n"
        "    return jitter(values)\n"
    ),
    "simulation/world.py": (
        "from .helpers import middle\n"
        "\n"
        "def run_world(values):\n"
        "    return middle(values)\n"
    ),
}


class TestDet004:
    def test_two_hop_unseeded_rng_is_flagged(self, write_tree):
        root = write_tree(TWO_HOP)
        findings = rules_fired(root, "DET004")
        paths = {(f.path, f.line) for f in findings}
        # run_world's call to middle and middle's call to jitter; jitter
        # itself is the DET001 site, not a DET004 one.
        assert ("simulation/world.py", 4) in paths
        assert ("simulation/helpers.py", 7) in paths

    def test_message_carries_the_witness_chain(self, write_tree):
        root = write_tree(TWO_HOP)
        by_path = {f.path: f for f in rules_fired(root, "DET004")}
        message = by_path["simulation/world.py"].message
        assert "simulation.world.run_world" in message
        assert "simulation.helpers.middle" in message
        assert "simulation.helpers.jitter" in message
        assert "DET001" in message

    def test_sink_function_not_double_reported(self, write_tree):
        root = write_tree(TWO_HOP)
        findings, _ = analyze_tree([root])
        det001 = [(f.path, f.line) for f in findings if f.rule == "DET001"]
        det004 = [(f.path, f.line) for f in findings if f.rule == "DET004"]
        assert det001 == [("simulation/helpers.py", 4)]
        assert ("simulation/helpers.py", 4) not in det004

    def test_suppressed_sink_does_not_taint(self, write_tree):
        files = dict(TWO_HOP)
        files["simulation/helpers.py"] = files["simulation/helpers.py"].replace(
            "np.random.normal()",
            "np.random.normal()  # statan: disable=DET001",
        )
        root = write_tree(files)
        assert rules_fired(root, "DET004") == []

    def test_non_entry_package_callers_are_not_flagged(self, write_tree):
        root = write_tree({
            "tools/helpers.py": (
                "import numpy as np\n"
                "\n"
                "def jitter():\n"
                "    return np.random.normal()\n"
                "\n"
                "def entry():\n"
                "    return jitter()\n"
            ),
        })
        assert rules_fired(root, "DET004") == []

    def test_clean_entry_package_is_silent(self, write_tree):
        root = write_tree({
            "simulation/world.py": (
                "import numpy as np\n"
                "\n"
                "def step(rng):\n"
                "    return rng.normal()\n"
                "\n"
                "def run(rng):\n"
                "    return step(rng)\n"
            ),
        })
        assert rules_fired(root, "DET004") == []
